"""Shared helpers for the experiment benches.

Importable utilities live here rather than in ``conftest.py`` so that
bench modules can name their imports explicitly (``from _bench_utils
import write_result``).  ``tests/`` and ``benchmarks/`` both land on
``sys.path`` under pytest's rootdir import mode, and two modules both
called ``conftest`` shadow each other — helper code must carry a unique
module name.  Fixtures stay in ``benchmarks/conftest.py``.
"""

from __future__ import annotations

import os

from repro import SynthesisConfig
from repro.io.report import save_csv

#: Island counts on the x-axis of Figures 2 and 3.
ISLAND_COUNTS = [1, 2, 3, 4, 5, 6, 7, 26]

#: Synthesis config used by the benches: full algorithm, bounded
#: intermediate-island sweep to keep the wall-clock sane.
BENCH_CONFIG = SynthesisConfig(max_intermediate=2)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name: str, table: str, rows=None, columns=None) -> str:
    """Persist a bench's table (and optional CSV) under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as f:
        f.write(table)
    if rows:
        save_csv(rows, os.path.join(RESULTS_DIR, name + ".csv"), columns)
    return path
