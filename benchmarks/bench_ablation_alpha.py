"""Ablation — the Definition 1 weight parameter alpha.

"The value of the weight parameter alpha can be set experimentally or
obtained as an input from the user, depending on the importance of
performance and power consumption objectives."  The paper does not plot
this sweep; we add it as the natural first ablation: alpha -> 1 clusters
purely by bandwidth (power-biased), alpha -> 0 purely by latency
tightness (performance-biased).
"""

from __future__ import annotations

from _bench_utils import write_result
from repro import SynthesisConfig, synthesize
from repro.io.report import format_table
from repro.soc.benchmarks import mobile_soc_26
from repro.soc.partitioning import logical_partitioning

ALPHAS = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]


def test_alpha_sweep(benchmark):
    spec = logical_partitioning(mobile_soc_26(), 6)

    def sweep():
        rows = []
        for alpha in ALPHAS:
            cfg = SynthesisConfig(alpha=alpha, max_intermediate=1)
            space = synthesize(spec, config=cfg)
            p_best = space.best_by_power()
            l_best = space.best_by_latency()
            rows.append(
                {
                    "alpha": alpha,
                    "best_power_mw": p_best.power_mw,
                    "latency_at_best_power": p_best.avg_latency_cycles,
                    "best_latency_cycles": l_best.avg_latency_cycles,
                    "design_points": len(space),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(rows, title="Ablation: VCG weight alpha (d26, 6 logical VIs)")
    print("\n" + table)
    write_result("ablation_alpha", table, rows)

    # Every alpha yields a feasible space; the spread quantifies how
    # much the clustering objective matters on this benchmark.
    assert all(r["design_points"] >= 1 for r in rows)
    powers = [r["best_power_mw"] for r in rows]
    assert max(powers) / min(powers) < 1.5, "alpha should tune, not break, the design"
