"""Ablation — NoC link data width.

Section 4, step 1: "without loss of generality, we fix the data width
of the NoC links to a user-defined value.  Please note that it could be
varied in a range and more design points could be explored."  This
bench explores that range: wider links lower the island frequencies
(bandwidth = width x frequency), which relaxes the switch-size bound
and shrinks clock power, at the cost of wider wires and bigger
crossbars per bit.
"""

from __future__ import annotations

import dataclasses

from _bench_utils import write_result
from repro import NocLibrary, SynthesisConfig, synthesize
from repro.core.frequency import plan_all_islands
from repro.io.report import format_table
from repro.soc.benchmarks import mobile_soc_26
from repro.soc.partitioning import logical_partitioning

WIDTHS = [16, 32, 64, 128]


def _library_for_width(width: int) -> NocLibrary:
    """Scale width-dependent constants off the 32-bit calibration."""
    scale = width / 32.0
    base = NocLibrary()
    return dataclasses.replace(
        base,
        data_width_bits=width,
        # Wires and crossbar datapath grow with width.
        link_ebit_per_mm_pj=base.link_ebit_per_mm_pj,  # per-bit: unchanged
        switch_area_mm2_per_crosspoint=base.switch_area_mm2_per_crosspoint * scale,
        switch_idle_mw_per_mhz_per_port=base.switch_idle_mw_per_mhz_per_port * scale,
        link_leak_mw_per_mm=base.link_leak_mw_per_mm * scale,
    )


def test_data_width_sweep(benchmark):
    spec = logical_partitioning(mobile_soc_26(), 6)

    def sweep():
        rows = []
        for width in WIDTHS:
            lib = _library_for_width(width)
            plans = plan_all_islands(spec, lib)
            space = synthesize(spec, lib, SynthesisConfig(max_intermediate=1))
            best = space.best_by_power()
            rows.append(
                {
                    "width_bits": width,
                    "max_island_freq_mhz": max(p.freq_mhz for p in plans.values()),
                    "best_power_mw": best.power_mw,
                    "avg_latency_cycles": best.avg_latency_cycles,
                    "noc_area_mm2": best.soc_power.noc_area_mm2,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(rows, title="Ablation: link data width (d26, 6 logical VIs)")
    print("\n" + table)
    write_result("ablation_datawidth", table, rows)

    # Wider links always reduce the required island frequencies.
    freqs = [r["max_island_freq_mhz"] for r in rows]
    assert freqs == sorted(freqs, reverse=True)
    # All widths feasible on this SoC.
    assert all(r["best_power_mw"] > 0 for r in rows)
