"""Ablation — the intermediate (never-gated) NoC island.

Section 3.2: the method "can explore solutions where a separate NoC VI
can be created ... our method will use the intermediate island, only if
the resources are available".  Its value shows when direct inter-island
links would blow the switch-size budget: indirect switches concentrate
the cross traffic.  This bench compares synthesis with the intermediate
island forbidden vs allowed, at increasing island counts where the
cross-island link pressure grows.
"""

from __future__ import annotations

from _bench_utils import write_result
from repro import InfeasibleError, SynthesisConfig, synthesize
from repro.io.report import format_table
from repro.soc.benchmarks import mobile_soc_26
from repro.soc.generator import hub_soc
from repro.soc.partitioning import logical_partitioning


def _synth_row(spec, label_prefix, row):
    for allow, label in ((False, "direct_only"), (True, "with_mid")):
        cfg = SynthesisConfig(allow_intermediate=allow, max_intermediate=3)
        try:
            space = synthesize(spec, config=cfg)
            best = space.best_by_power()
            row["%s_mw" % label] = round(best.power_mw, 2)
            row["%s_points" % label] = len(space)
            if allow:
                row["mid_switches_used"] = best.num_intermediate_used
        except InfeasibleError:
            row["%s_mw" % label] = "infeasible"
            row["%s_points" % label] = 0
    return row


def test_intermediate_island_ablation(benchmark):
    spec26 = mobile_soc_26()

    def sweep():
        rows = []
        for n in (4, 6, 12, 26):
            part = logical_partitioning(spec26, n)
            rows.append(_synth_row(part, "d26", {"design": "d26@%d" % n}))
        # The hub-and-spoke stress case: one fast memory island talking
        # to 24 single-core islands.  Direct links exceed max_sw_size;
        # only the intermediate island makes the design feasible
        # (Section 4's motivation, in its sharpest form).
        rows.append(_synth_row(hub_soc(), "hub", {"design": "hub24"}))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        rows, title="Ablation: intermediate NoC island forbidden vs allowed"
    )
    print("\n" + table)
    write_result("ablation_intermediate", table, rows)

    for row in rows:
        # Allowing the intermediate island can only enlarge the design
        # space, so the best power is never worse.
        assert row["with_mid_points"] >= row["direct_only_points"]
        if row["direct_only_points"]:
            assert row["with_mid_mw"] <= row["direct_only_mw"] + 1e-9
    # d26 never needs indirect switches (its islands are port-rich)...
    d26_rows = [r for r in rows if r["design"].startswith("d26")]
    assert all(r["direct_only_points"] > 0 for r in d26_rows)
    # ...but the hub design is infeasible without them.
    hub_row = rows[-1]
    assert hub_row["direct_only_points"] == 0
    assert hub_row["with_mid_points"] > 0
    assert hub_row["mid_switches_used"] > 0
