"""Ablation — FM min-cut partitioner vs greedy agglomeration.

DESIGN.md decision 6.1: core-to-switch clustering uses recursive
bisection with Fiduccia–Mattheyses refinement (the 2009-era standard);
a greedy agglomerative variant ships as the comparison point.  This
bench quantifies the choice twice: on raw cut weight over random
graphs, and end-to-end on synthesized NoC power.
"""

from __future__ import annotations

import random

from _bench_utils import write_result
from repro import SynthesisConfig, synthesize
from repro.core.partition import build_adjacency, cut_weight, partition_graph
from repro.io.report import format_table
from repro.soc.benchmarks import mobile_soc_26
from repro.soc.partitioning import logical_partitioning


def _random_clustered_graph(n, clusters, seed):
    rng = random.Random(seed)
    nodes = ["n%d" % i for i in range(n)]
    weights = {}
    for i, u in enumerate(nodes):
        for j in range(i + 1, n):
            v = nodes[j]
            same = (i % clusters) == (j % clusters)
            w = rng.uniform(5.0, 10.0) if same else rng.uniform(0.0, 0.5)
            weights[(u, v)] = w
    return nodes, weights


def test_partitioner_cut_quality(benchmark):
    def sweep():
        rows = []
        for n, k in ((16, 4), (24, 4), (32, 8)):
            fm_cuts, greedy_cuts = [], []
            for seed in range(5):
                nodes, weights = _random_clustered_graph(n, k, seed)
                adj = build_adjacency(nodes, weights)
                fm = partition_graph(nodes, weights, k, seed=seed, method="fm")
                gr = partition_graph(nodes, weights, k, seed=seed, method="greedy")
                fm_cuts.append(cut_weight(adj, fm))
                greedy_cuts.append(cut_weight(adj, gr))
            rows.append(
                {
                    "nodes": n,
                    "parts": k,
                    "fm_cut": sum(fm_cuts) / len(fm_cuts),
                    "greedy_cut": sum(greedy_cuts) / len(greedy_cuts),
                    "fm_wins_ratio": sum(greedy_cuts) / max(sum(fm_cuts), 1e-9),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(rows, title="Ablation: FM vs greedy partitioner, cut weight")
    print("\n" + table)
    write_result("ablation_partitioner_cut", table, rows)
    # FM should match or beat greedy on average for every size.
    for r in rows:
        assert r["fm_cut"] <= r["greedy_cut"] * 1.05


def test_partitioner_end_to_end_power(benchmark):
    spec = logical_partitioning(mobile_soc_26(), 6)

    def run():
        rows = []
        for method in ("fm", "greedy"):
            cfg = SynthesisConfig(partition_method=method, max_intermediate=1)
            best = synthesize(spec, config=cfg).best_by_power()
            rows.append(
                {
                    "method": method,
                    "noc_power_mw": best.power_mw,
                    "avg_latency_cycles": best.avg_latency_cycles,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(rows, title="Ablation: partitioner choice, end-to-end (d26)")
    print("\n" + table)
    write_result("ablation_partitioner_e2e", table, rows)
    fm = next(r for r in rows if r["method"] == "fm")
    greedy = next(r for r in rows if r["method"] == "greedy")
    assert fm["noc_power_mw"] <= greedy["noc_power_mw"] * 1.10
