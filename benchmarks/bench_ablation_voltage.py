"""Ablation — per-island voltage scaling (extension, after [19]).

The paper reports power at the library's nominal voltage corner.  Since
each island already runs at its own clock, letting it also drop to the
lowest voltage corner that closes timing (V^2 dynamic, ~V^3 leakage)
compounds the communication-based partitioning win of Figure 2.  This
bench quantifies that compounding across the island-count sweep.
"""

from __future__ import annotations

from _bench_utils import ISLAND_COUNTS, write_result
from repro.io.report import format_table, percent
from repro.power.voltage import voltage_aware_noc_power


def test_voltage_scaling_ablation(benchmark, island_sweep):
    def sweep():
        rows = []
        for n in ISLAND_COUNTS:
            point = island_sweep[(n, "communication")]
            vp = voltage_aware_noc_power(point.topology)
            corners = sorted(
                {c.vdd for c in vp.corners.values()}
            )
            rows.append(
                {
                    "islands": n,
                    "nominal_mw": vp.nominal.dynamic_mw,
                    "scaled_mw": vp.dynamic_mw,
                    "dyn_savings": percent(vp.dynamic_savings_fraction),
                    "vdd_levels": "/".join("%.1f" % v for v in corners),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        rows,
        title="Extension: per-island voltage scaling on top of the "
        "communication-based sweep (d26)",
    )
    print("\n" + table)
    write_result("ablation_voltage", table, rows)

    # Voltage scaling always helps, and multi-island designs (whose
    # slow islands reach lower corners) save at least as much relative
    # dynamic power as the single-voltage-domain reference.
    for r in rows:
        assert r["scaled_mw"] < r["nominal_mw"]
    single = rows[0]
    multi = [r for r in rows if r["islands"] in (4, 5, 6, 7)]
    single_frac = 1 - single["scaled_mw"] / single["nominal_mw"]
    for r in multi:
        frac = 1 - r["scaled_mw"] / r["nominal_mw"]
        assert frac >= single_frac - 1e-9, (
            "multi-island voltage scaling should not save less than the "
            "single-island corner drop"
        )
