"""Control-plane bench: closed-loop recovery on the paper benchmarks.

Pins the serving-system story of the reconfiguration controller on
d26 (and the restore path end to end):

* every live single-link scenario on the k=1 protected design is
  detected, failed over, and restored within the modeled latencies —
  zero routability violations, zero lost flows, and a deadlock-free
  installed routing at every stage;
* the recovery-time distribution is tight (all failovers within the
  detection + install budget of the latency model) and recorded under
  ``benchmarks/results/`` alongside ``BENCH_synthesis.json``'s
  ``control_plane`` section;
* the full recovery timeline + telemetry stream is byte-identical
  across reruns with a fresh controller;
* FIT-rate availability: the spare plan the controller leans on takes
  the expected flow availability to 1.0 under single-link faults.
"""

from __future__ import annotations

import json

import pytest

from repro import synthesize
from repro.control import ControlLatencyModel, ReconfigurationController
from repro.io.json_io import control_summary
from repro.io.report import format_table
from repro.resilience import (
    FaultEvent,
    FitRates,
    analyze_model,
    enumerate_scenarios,
    protect_design_point,
    route_affected,
)
from repro.runtime import make_policy, markov_trace, simulate_trace
from repro.soc.benchmarks import load_benchmark
from repro.soc.partitioning import logical_partitioning
from repro.soc.usecases import use_cases_for

from _bench_utils import BENCH_CONFIG, write_result

pytestmark = pytest.mark.control

ISLANDS = 6


@pytest.fixture(scope="module")
def d26_setup():
    spec = logical_partitioning(load_benchmark("d26_media"), ISLANDS)
    spec = spec.with_vi_assignment(spec.vi_assignment, name="d26_media")
    best = synthesize(spec, config=BENCH_CONFIG).best_by_power()
    prot = protect_design_point(best, k=1)
    trace = markov_trace(use_cases_for(spec), n_segments=48, seed=11)
    return best, prot, trace


def _live_scenarios(topology):
    return [
        sc
        for sc in enumerate_scenarios(topology, "single_link")
        if any(route_affected(sc, topology, r) for r in topology.routes.values())
    ]


def _replay(prot, trace, scenario, controller):
    event = FaultEvent(
        scenario=scenario,
        start_ms=0.25 * trace.total_ms,
        end_ms=0.6 * trace.total_ms,
    )
    return simulate_trace(
        prot.topology,
        trace,
        make_policy("break_even"),
        fault_events=[event],
        spare_plan=prot.plan,
        controller=controller,
    )


def test_every_live_fault_recovers_d26(d26_setup):
    """The acceptance pin: detect -> fail over -> restore, every time."""
    _, prot, trace = d26_setup
    lat = ControlLatencyModel()
    controller = ReconfigurationController(
        prot.topology, spare_plan=prot.plan, latency=lat
    )
    live = _live_scenarios(prot.topology)
    assert live
    recoveries = []
    for sc in live:
        report = _replay(prot, trace, sc, controller)
        assert report.routable, sc.name
        assert report.controlled
        assert report.recoveries_deadlock_free, sc.name
        (rec,) = report.recoveries
        # Full k=1 coverage: no flow is ever lost, and the failover
        # fits the modeled detection + install budget.
        assert rec.lost_flows == 0, sc.name
        assert rec.failover_ms <= lat.recovery_ms(sc, rec.recovered_flows) + 1e-9
        assert rec.repaired and rec.restored_ms > rec.repaired_ms
        recoveries.append(rec)
    ordered = sorted(r.failover_ms for r in recoveries)
    rows = [
        {
            "benchmark": "d26_media",
            "live_scenarios": len(live),
            "recovery_p50_ms": round(ordered[len(ordered) // 2], 6),
            "recovery_max_ms": round(ordered[-1], 6),
            "migrated_flows_max": max(r.recovered_flows for r in recoveries),
            "lost_flows": sum(r.lost_flows for r in recoveries),
        }
    ]
    table = format_table(
        rows,
        title="closed-loop single-link recovery on d26_media @ %d islands"
        % ISLANDS,
    )
    print()
    print(table, end="")
    write_result("control_recovery", table, rows)


def test_recovery_timeline_is_byte_identical(d26_setup):
    _, prot, trace = d26_setup
    sc = _live_scenarios(prot.topology)[0]
    dumps = []
    for _ in range(2):
        controller = ReconfigurationController(
            prot.topology, spare_plan=prot.plan
        )
        report = _replay(prot, trace, sc, controller)
        dumps.append(json.dumps(control_summary(report), sort_keys=True))
    assert dumps[0] == dumps[1]


def test_fit_availability_reaches_one(d26_setup):
    """What the loop defends, in numbers: protection closes the
    single-link unavailability entirely."""
    best, prot, _ = d26_setup
    rates = FitRates()
    base = analyze_model(best.topology, "single_link", rates=rates)
    rep = analyze_model(
        prot.topology, "single_link", plan=prot.plan, rates=rates
    )
    a_base = base.expected_availability(rates.repair_hours)
    a_prot = rep.expected_availability(rates.repair_hours)
    assert a_base < 1.0
    assert a_prot == pytest.approx(1.0)
    rows = [
        {
            "benchmark": "d26_media",
            "unprotected_availability": round(a_base, 9),
            "protected_availability": round(a_prot, 9),
            "unprotected_downtime_min_year": round(
                base.downtime_minutes_per_year(rates.repair_hours), 4
            ),
            "protected_downtime_min_year": round(
                rep.downtime_minutes_per_year(rates.repair_hours), 4
            ),
        }
    ]
    table = format_table(rows, title="FIT-weighted expected availability")
    print()
    print(table, end="")
    write_result("control_availability", table, rows)
