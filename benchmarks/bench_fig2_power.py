"""Figure 2 — NoC dynamic power vs voltage-island count.

Paper (Section 5, Figure 2): on the 26-core mobile SoC, sweeping the
island count for two core-to-island assignments shows

* *logical partitioning* pays a power overhead over the 1-island
  reference ("there are more high bandwidth flows that have to go
  across islands");
* *communication-based partitioning* consumes **less** than the
  reference ("the NoC can run at a slower frequency in some of the
  islands" and "most of the high bandwidth flows are inside an
  island");
* the 26-island extreme is the most expensive point on the chart.

This bench regenerates the two series and asserts those relations.
"""

from __future__ import annotations

from _bench_utils import ISLAND_COUNTS, write_result
from repro.io.report import format_table


def _rows(island_sweep):
    rows = []
    for n in ISLAND_COUNTS:
        log = island_sweep[(n, "logical")]
        com = island_sweep[(n, "communication")]
        rows.append(
            {
                "islands": n,
                "logical_mw": log.power_mw,
                "communication_mw": com.power_mw,
                "logical_converters": log.topology.num_converters(),
                "communication_converters": com.topology.num_converters(),
            }
        )
    return rows


def test_fig2_power_vs_island_count(benchmark, island_sweep):
    rows = benchmark.pedantic(_rows, args=(island_sweep,), rounds=1, iterations=1)
    table = format_table(
        rows,
        title="Figure 2: island count vs NoC dynamic power (mW), d26_media",
    )
    print("\n" + table)
    write_result("fig2_power", table, rows)

    ref = rows[0]["logical_mw"]
    assert rows[0]["logical_mw"] == rows[0]["communication_mw"]
    # Paper shape: communication-based below the reference...
    for r in rows[1:-1]:
        assert r["communication_mw"] < ref
    # ...logical partitioning above it for most island counts...
    overheads = [r["logical_mw"] - ref for r in rows[1:-1]]
    assert max(overheads) > 0
    # ...and the 26-island point is the global maximum of both series.
    last = rows[-1]
    assert last["islands"] == 26
    for r in rows[:-1]:
        assert last["logical_mw"] >= r["logical_mw"]
        assert last["communication_mw"] >= r["communication_mw"]
