"""Figure 3 — average zero-load latency vs voltage-island count.

Paper (Section 5, Figure 3): "When packets cross the islands, a 4
cycle delay is incurred on the voltage-frequency converters.  Thus,
with increasing number of islands, the latencies increase."  The
26-island point roughly doubles the 1-island reference.
"""

from __future__ import annotations

from _bench_utils import ISLAND_COUNTS, write_result
from repro.io.report import format_table


def _rows(island_sweep):
    rows = []
    for n in ISLAND_COUNTS:
        log = island_sweep[(n, "logical")]
        com = island_sweep[(n, "communication")]
        rows.append(
            {
                "islands": n,
                "logical_cycles": log.avg_latency_cycles,
                "communication_cycles": com.avg_latency_cycles,
                "logical_max": log.latency.max_cycles,
                "communication_max": com.latency.max_cycles,
            }
        )
    return rows


def test_fig3_latency_vs_island_count(benchmark, island_sweep):
    rows = benchmark.pedantic(_rows, args=(island_sweep,), rounds=1, iterations=1)
    table = format_table(
        rows,
        title="Figure 3: island count vs average zero-load latency (cycles), d26_media",
    )
    print("\n" + table)
    write_result("fig3_latency", table, rows)

    # Latency rises from the reference to the 26-island extreme.
    for series in ("logical_cycles", "communication_cycles"):
        first, last = rows[0][series], rows[-1][series]
        assert last > first
        # 26-island point is the maximum of the series.
        assert last == max(r[series] for r in rows)
    # The multi-island points sit between reference and extreme with a
    # broadly increasing trend (allowing small local dips, as in the
    # paper's own figure).
    log_series = [r["logical_cycles"] for r in rows]
    assert log_series[-1] >= 6.0  # every flow pays >= one 4-cycle crossing
    # Communication-based keeps more flows on-island: never slower than
    # logical by more than one cycle at the same island count.
    for r in rows:
        assert r["communication_cycles"] <= r["logical_cycles"] + 1.0
