"""Figure 4 — synthesized topology for the 6-VI logical partitioning.

The paper's Figure 4 is a drawing of the topology synthesized for the
26-core SoC with 6 logical islands.  This bench regenerates that design
point, exports it as Graphviz DOT (plus a structural summary table) and
asserts the structural properties visible in the paper's figure:
switches confined to islands, converters exactly on the island
crossings, every core hanging off a same-island switch.
"""

from __future__ import annotations

from _bench_utils import write_result
from repro.arch.routing import hop_histogram
from repro.arch.validate import audit_shutdown_safety
from repro.io.dot import topology_to_dot
from repro.io.report import format_table


def _summarize(point):
    topo = point.topology
    rows = []
    for isl in sorted({s.island for s in topo.switches.values()}):
        switches = topo.island_switches(isl)
        rows.append(
            {
                "island": "mid" if isl == -1 else isl,
                "switches": len(switches),
                "max_size": max(s.size for s in switches),
                "freq_mhz": switches[0].freq_mhz,
                "cores": len(topo.spec.cores_in_island(isl)) if isl >= 0 else 0,
            }
        )
    return rows


def test_fig4_topology_6vi_logical(benchmark, island_sweep):
    point = island_sweep[(6, "logical")]
    rows = benchmark.pedantic(_summarize, args=(point,), rounds=1, iterations=1)
    topo = point.topology

    table = format_table(
        rows, title="Figure 4: topology, 6-VI logical partitioning (%s)" % point.label()
    )
    table += "\nlinks: %d (%d cross-island with converters)\n" % (
        len(topo.sw_links()) + 2 * len(topo.nis),
        topo.num_converters(),
    )
    table += "hop histogram (switches per route): %s\n" % hop_histogram(topo)
    print("\n" + table)
    path = write_result("fig4_topology", table, rows)

    dot = topology_to_dot(topo)
    with open(path.replace(".txt", ".dot"), "w") as f:
        f.write(dot)

    # Structural assertions matching the paper's figure:
    assert audit_shutdown_safety(topo) == []
    for core in topo.spec.core_names:
        assert topo.switch_of_core(core).island == topo.spec.island_of(core)
    for link in topo.sw_links():
        assert link.converter == (link.src_island != link.dst_island)
    assert len({s.island for s in topo.switches.values()} - {-1}) == 6
