"""Figure 5 — floorplan of the synthesized design.

The paper's Figure 5 shows the placed SoC: contiguous island regions,
cores inside their islands, NoC switches inserted among the cores they
serve.  This bench regenerates the floorplan for the same design point
as Figure 4, renders it (ASCII for the log, SVG on disk) and asserts
the geometric invariants the figure depicts.
"""

from __future__ import annotations

from _bench_utils import write_result
from repro.floorplan.wires import assign_wire_lengths
from repro.io.floorplan_art import floorplan_to_ascii, floorplan_to_svg
from repro.io.report import format_table


def _floorplan_rows(point):
    fp = point.floorplan
    rows = []
    for isl, rect in sorted(fp.island_rects.items()):
        rows.append(
            {
                "island": "mid" if isl == -1 else isl,
                "x_mm": rect.x,
                "y_mm": rect.y,
                "w_mm": rect.w,
                "h_mm": rect.h,
                "area_mm2": rect.area,
            }
        )
    return rows


def test_fig5_floorplan_example(benchmark, island_sweep):
    point = island_sweep[(6, "logical")]
    rows = benchmark.pedantic(_floorplan_rows, args=(point,), rounds=1, iterations=1)
    fp = point.floorplan

    table = format_table(
        rows,
        title="Figure 5: floorplan, 6-VI logical partitioning (die %.2f x %.2f mm)"
        % (fp.chip.w, fp.chip.h),
    )
    wires = point.wires
    table += (
        "\nwire length: %.1f mm total (%.1f NI, %.1f intra-island, %.1f cross-island)\n"
        % (
            wires.total_length_mm,
            wires.ni_length_mm,
            wires.intra_island_length_mm,
            wires.cross_island_length_mm,
        )
    )
    table += floorplan_to_ascii(fp, point.topology)
    print("\n" + table)
    path = write_result("fig5_floorplan", table, rows)
    with open(path.replace(".txt", ".svg"), "w") as f:
        f.write(floorplan_to_svg(fp, point.topology))

    # Geometric invariants of the paper's figure:
    spec = point.topology.spec
    for core in spec.core_names:
        isl = spec.island_of(core)
        assert fp.island_rects[isl].contains_rect(fp.core_rects[core], tol=1e-6)
    for sid, sw in point.topology.switches.items():
        assert fp.island_rects[sw.island].contains(fp.switch_pos[sid])
    # Island regions tile the die without overlap.
    regions = sorted(fp.island_rects.items())
    for i, (_, a) in enumerate(regions):
        for _, b in regions[i + 1:]:
            assert not a.overlaps(b, tol=1e-9)
    # Wire budget: no timing violations in the chosen design point.
    assert point.wires.clean
