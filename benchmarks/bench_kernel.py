"""Routing-kernel micro-bench: scalar loop vs batched vector kernel.

Algorithm 1 spends its time in the per-flow path searches; the
``vector`` kernel replaces most of them with a provable direct-open
dominance shortcut and batches what remains over flat arrays (see
``repro.core.paths``).  This bench times both kernels on the same
generated-SoC scaling sweep the perf harness uses, prints the
per-size wall-clock and the counter evidence (shortcut answers vs
full Dijkstra runs), and asserts the design points are byte-identical
— speed that changes results is a bug, not a feature.

The worker-pool counterpart lives in
``scripts/run_benchmarks.py::run_worker_scaling`` (it needs process
control, which a pytest bench should not fork under the hood).
"""

from __future__ import annotations

import dataclasses
import time

from _bench_utils import write_result
from repro import SynthesisConfig, synthesize
from repro.io.report import format_table
from repro.perf import PerfRecorder, recording
from repro.soc.generator import GeneratorConfig, generate_soc
from repro.soc.partitioning import communication_partitioning

FAST = SynthesisConfig(max_intermediate=1)
SIZES = (10, 20, 30, 40)


def _scaling_spec(n_cores: int):
    spec = generate_soc(
        GeneratorConfig(
            name="scale%d" % n_cores, num_cores=n_cores, num_groups=4, seed=7
        )
    )
    return communication_partitioning(spec, 4)


def _signature(space):
    return [
        (p.label(), p.power_mw, p.avg_latency_cycles) for p in space.points
    ]


def test_kernel_scaling_comparison(benchmark):
    specs = [(n, _scaling_spec(n)) for n in SIZES]

    def run(kernel):
        cfg = dataclasses.replace(FAST, kernel=kernel)
        rec = PerfRecorder()
        rows = []
        sigs = {}
        with recording(rec):
            for n, part in specs:
                t0 = time.perf_counter()
                space = synthesize(part, config=cfg)
                dt = time.perf_counter() - t0
                sigs[n] = _signature(space)
                rows.append({"cores": n, "seconds": dt})
        return rows, sigs, rec

    def sweep():
        scalar_rows, scalar_sigs, scalar_rec = run("scalar")
        vector_rows, vector_sigs, vector_rec = run("vector")
        assert scalar_sigs == vector_sigs, "kernels disagree on design points"
        rows = []
        for s, v in zip(scalar_rows, vector_rows):
            rows.append(
                {
                    "cores": s["cores"],
                    "scalar_s": round(s["seconds"], 4),
                    "vector_s": round(v["seconds"], 4),
                    "speedup": round(s["seconds"] / max(v["seconds"], 1e-9), 2),
                }
            )
        counters = {
            "scalar_dijkstra_pops": scalar_rec.counters.get("dijkstra_pops", 0),
            "scalar_edge_evals": scalar_rec.counters.get("edge_evals", 0),
            "vector_shortcuts": vector_rec.counters.get(
                "direct_open_shortcuts", 0
            ),
            "vector_dijkstra_pops": vector_rec.counters.get("dijkstra_pops", 0),
            "vector_edge_evals": vector_rec.counters.get("edge_evals", 0),
            "vector_frontier_pops": vector_rec.counters.get("vector_pops", 0),
        }
        return rows, counters

    rows, counters = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        rows, title="Routing kernel wall-clock: scalar vs vector (identical points)"
    )
    lines = ["%-22s %d" % (k, v) for k, v in sorted(counters.items())]
    table += "\ncounters:\n" + "\n".join("  " + ln for ln in lines) + "\n"
    print("\n" + table)
    write_result("kernel_scaling", table, rows)
