"""Leakage-savings study — why the 3% overhead is worth paying.

Section 5: "In many SoCs, the shutdown of cores can lead to large
reduction in leakage power, leading to even 25% or more reduction in
overall system power.  Thus, compared to the power savings achieved,
the penalty incurred in the NoC design is negligible."

This bench runs the mobile SoC's use-case scenario set against both
the VI-aware topology and the VI-oblivious baseline, under the static
(design-time-guarantee) gating policy, and tabulates per-use-case and
time-weighted savings.
"""

from __future__ import annotations

from _bench_utils import BENCH_CONFIG, write_result
from repro import synthesize
from repro.baseline.flat import synthesize_vi_oblivious
from repro.baseline.checker import compare_shutdown_capability
from repro.io.report import format_table, percent
from repro.power.leakage import weighted_savings_fraction
from repro.soc.benchmarks import mobile_soc_26
from repro.soc.partitioning import logical_partitioning
from repro.soc.usecases import use_cases_for


def _run():
    spec = logical_partitioning(mobile_soc_26(), 6)
    spec = spec.with_vi_assignment(spec.vi_assignment, name="d26_media")
    cases = use_cases_for(spec)
    aware = synthesize(spec, config=BENCH_CONFIG).best_by_power()
    oblivious = synthesize_vi_oblivious(spec, config=BENCH_CONFIG)
    reports = compare_shutdown_capability(
        aware.topology, oblivious.topology, cases
    )
    return cases, reports


def test_leakage_savings_vs_baseline(benchmark):
    cases, reports = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for case in cases:
        row = {"use_case": case.name, "time_share": percent(case.time_fraction)}
        for label in ("vi_aware", "vi_oblivious"):
            rep = reports[label].shutdown_reports[case.name]
            row["%s_gated" % label] = len(rep.gated_islands)
            row["%s_savings" % label] = percent(rep.savings_fraction)
        rows.append(row)
    w_aware = weighted_savings_fraction(
        list(reports["vi_aware"].shutdown_reports.values()), cases
    )
    w_obl = weighted_savings_fraction(
        list(reports["vi_oblivious"].shutdown_reports.values()), cases
    )
    table = format_table(
        rows, title="Island shutdown savings by use case (static gating policy)"
    )
    table += "\naudit violations: vi_aware=%d, vi_oblivious=%d\n" % (
        len(reports["vi_aware"].violations),
        len(reports["vi_oblivious"].violations),
    )
    table += "time-weighted total-power savings: vi_aware=%s, vi_oblivious=%s\n" % (
        percent(w_aware),
        percent(w_obl),
    )
    table += "(paper: shutdown worth 25%+ of overall system power)\n"
    print("\n" + table)
    write_result("leakage_savings", table, rows)

    # The paper's qualitative claims:
    assert reports["vi_aware"].is_shutdown_safe
    assert not reports["vi_oblivious"].is_shutdown_safe
    assert w_aware > 0.20, "VI-aware weighted savings %.1f%%" % (100 * w_aware)
    assert w_aware > 2.0 * w_obl, "VI-aware must decisively beat the baseline"
