"""Overhead table — the paper's headline cost numbers.

Section 5: "For the different SoC benchmarks, we found that the
topologies synthesized to support multiple VIs incur a 3% overhead on
the total system's dynamic power.  We found that the area overhead is
also negligible, with less than 0.5% increase in the total SoC area."

This bench sweeps the whole built-in benchmark suite, synthesizes each
design VI-aware (logical partitioning at a representative island count)
and VI-oblivious (single island reference), and tabulates the SoC-level
dynamic-power and area overheads.
"""

from __future__ import annotations

from _bench_utils import BENCH_CONFIG, write_result
from repro import synthesize
from repro.io.report import format_table, percent
from repro.power.soc_power import area_overhead_fraction, dynamic_overhead_fraction
from repro.soc.benchmarks import benchmark_suite
from repro.soc.partitioning import logical_partitioning

#: Representative island count per benchmark (≈ its functional groups).
ISLANDS = {"d12_auto": 4, "d16_net": 4, "d20_tele": 5, "d26_media": 6, "d38_media": 6}


def _sweep_suite():
    rows = []
    for spec in benchmark_suite():
        n = ISLANDS.get(spec.name, 4)
        reference = synthesize(spec.single_island(), config=BENCH_CONFIG).best_by_power()
        vi_aware = synthesize(
            logical_partitioning(spec, n), config=BENCH_CONFIG
        ).best_by_power()
        dyn = dynamic_overhead_fraction(vi_aware.soc_power, reference.soc_power)
        area = area_overhead_fraction(vi_aware.soc_power, reference.soc_power)
        rows.append(
            {
                "benchmark": spec.name,
                "islands": n,
                "ref_noc_mw": reference.power_mw,
                "vi_noc_mw": vi_aware.power_mw,
                "soc_dyn_overhead": percent(dyn),
                "soc_area_overhead": percent(area),
                "_dyn": dyn,
                "_area": area,
            }
        )
    return rows


def test_overhead_table_across_suite(benchmark):
    rows = benchmark.pedantic(_sweep_suite, rounds=1, iterations=1)
    cols = [
        "benchmark",
        "islands",
        "ref_noc_mw",
        "vi_noc_mw",
        "soc_dyn_overhead",
        "soc_area_overhead",
    ]
    avg_dyn = sum(r["_dyn"] for r in rows) / len(rows)
    avg_area = sum(r["_area"] for r in rows) / len(rows)
    table = format_table(
        rows,
        columns=cols,
        title="Overhead of VI-shutdown support across the benchmark suite",
    )
    table += "\naverage SoC dynamic power overhead: %s (paper: ~3%%)\n" % percent(avg_dyn)
    table += "average SoC area overhead: %s (paper: <0.5%%)\n" % percent(avg_area)
    print("\n" + table)
    write_result("overhead_table", table, rows, cols)

    # Paper claims are averages across the suite.
    assert avg_dyn < 0.05, "average dynamic overhead should be a few percent"
    assert avg_area < 0.005, "average area overhead should be sub-percent"
    # And no single benchmark explodes.
    for r in rows:
        assert r["_dyn"] < 0.10
        assert r["_area"] < 0.01
