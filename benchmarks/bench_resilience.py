"""Resilience bench: coverage-vs-overhead of spare-path protection.

Pins the headline claim of the resilience subsystem on d26 and d38:

* the unprotected best-power synthesis does **not** survive every
  single inter-switch link failure (some flows have only one path);
* k=1 spare protection reaches **100% flow coverage** under every
  single link failure — zero uncovered flows — at a measured power /
  wire / link overhead (recorded under ``benchmarks/results/`` and in
  ``BENCH_synthesis.json``'s ``resilience`` section);
* k=2 protection extends coverage to double link failures (fully on
  d26; d38's densest switches run out of ports for a third disjoint
  route on a few flows, pinned as a strict improvement instead);
* the whole analysis is deterministic — two protection runs serialize
  byte-identically — and every degraded routing stays deadlock-free
  and VI-safe, so protection never costs the shutdown guarantee.
"""

from __future__ import annotations

import json

import pytest

from repro import SynthesisConfig, synthesize
from repro.arch.routing import is_deadlock_free
from repro.arch.topology import INTERMEDIATE_ISLAND
from repro.arch.validate import validate_topology
from repro.io.json_io import spare_plan_summary
from repro.io.report import format_table, percent
from repro.resilience import (
    analyze_model,
    degraded_routes,
    enumerate_scenarios,
    protect_design_point,
)
from repro.soc.benchmarks import load_benchmark
from repro.soc.partitioning import logical_partitioning

from _bench_utils import BENCH_CONFIG, write_result

pytestmark = pytest.mark.resilience

ISLANDS = 6


def _best_point(name: str):
    spec = logical_partitioning(load_benchmark(name), ISLANDS)
    spec = spec.with_vi_assignment(spec.vi_assignment, name=name)
    return synthesize(spec, config=BENCH_CONFIG).best_by_power()


@pytest.fixture(scope="module")
def d26_best_point():
    return _best_point("d26_media")


@pytest.fixture(scope="module")
def d38_best_point():
    return _best_point("d38_media")


def _coverage_rows(label, best, prot, base_report, prot_report):
    overhead = prot.power_overhead_mw
    return [
        {
            "benchmark": label,
            "design": "unprotected",
            "scenarios": base_report.num_scenarios,
            "coverage": percent(base_report.coverage),
            "worst_scenario": percent(base_report.worst_scenario_coverage),
            "uncovered_flows": len(base_report.uncovered_flows),
            "spare_links": 0,
            "power_mw": round(best.power_mw, 2),
            "overhead": "-",
            "wire_mm": round(best.wires.total_length_mm, 1),
        },
        {
            "benchmark": label,
            "design": "k=%d protected" % prot.plan.k,
            "scenarios": prot_report.num_scenarios,
            "coverage": percent(prot_report.coverage),
            "worst_scenario": percent(prot_report.worst_scenario_coverage),
            "uncovered_flows": len(prot_report.uncovered_flows),
            "spare_links": prot.plan.links_opened,
            "power_mw": round(prot.noc_power.fig2_dynamic_mw, 2),
            "overhead": percent(overhead / best.power_mw),
            "wire_mm": round(prot.wires.total_length_mm, 1),
        },
    ]


def test_k1_single_link_coverage_d26(d26_best_point):
    """The acceptance pin: 100% coverage at measured overhead on d26."""
    best = d26_best_point
    base_report = analyze_model(best.topology, "single_link")
    prot = protect_design_point(best, k=1)
    prot_report = analyze_model(prot.topology, "single_link", plan=prot.plan)
    rows = _coverage_rows("d26_media", best, prot, base_report, prot_report)
    table = format_table(
        rows, title="single-link fault coverage on d26_media @ %d islands" % ISLANDS
    )
    print()
    print(table, end="")
    write_result("resilience_coverage", table, rows)

    # Unprotected synthesis is not failure-proof...
    assert base_report.coverage < 1.0
    assert base_report.uncovered_flows
    # ...k=1 protection is, with zero uncovered flows.
    assert prot_report.full_coverage and prot_report.coverage == 1.0
    assert not prot_report.uncovered_flows
    assert not prot.plan.unprotected
    # The protection is real hardware with a real, bounded bill.
    assert prot.plan.links_opened > 0
    overhead = prot.power_overhead_mw
    assert 0.0 < overhead < 0.5 * best.power_mw

    # Deterministic end to end: two runs serialize byte-identically.
    again = protect_design_point(best, k=1)
    dump = lambda p: json.dumps(spare_plan_summary(p.plan), sort_keys=True)
    assert dump(prot) == dump(again)


def test_k1_protection_keeps_every_guarantee_d26(d26_best_point):
    """Protection must not cost validity, VI-safety or deadlock freedom."""
    best = d26_best_point
    prot = protect_design_point(best, k=1)
    validate_topology(prot.topology)
    spec = prot.topology.spec
    for key, routes in prot.plan.backups.items():
        allowed = {
            spec.island_of(key[0]),
            spec.island_of(key[1]),
            INTERMEDIATE_ISLAND,
        }
        for backup in routes:
            for comp in backup.components[1:-1]:
                assert prot.topology.switches[comp].island in allowed
    for sc in enumerate_scenarios(prot.topology, "single_link"):
        routes = degraded_routes(prot.topology, prot.plan, sc)
        assert is_deadlock_free(prot.topology, routes=routes), sc.name


def test_k1_single_link_coverage_d38(d38_best_point):
    """The larger benchmark protects fully at k=1 too."""
    best = d38_best_point
    base_report = analyze_model(best.topology, "single_link")
    prot = protect_design_point(best, k=1)
    prot_report = analyze_model(prot.topology, "single_link", plan=prot.plan)
    rows = _coverage_rows("d38_media", best, prot, base_report, prot_report)
    table = format_table(
        rows, title="single-link fault coverage on d38_media @ %d islands" % ISLANDS
    )
    print()
    print(table, end="")
    write_result("resilience_coverage_d38", table, rows)
    assert base_report.coverage < 1.0
    assert prot_report.full_coverage
    assert not prot.plan.unprotected


def test_k2_double_link_coverage(d26_best_point, d38_best_point):
    """k backups buy k-failure coverage where ports allow.

    On d26, k=2 pairwise-disjoint backups cover every double link
    failure completely.  On d38 a few flows max out their switches'
    ports before a third disjoint route exists, so the pin there is a
    strict improvement over the unprotected double-failure coverage.
    """
    rows = []
    for label, best in (("d26_media", d26_best_point), ("d38_media", d38_best_point)):
        base = analyze_model(best.topology, "double_link")
        prot = protect_design_point(best, k=2)
        rep = analyze_model(prot.topology, "double_link", plan=prot.plan)
        rows.append(
            {
                "benchmark": label,
                "scenarios": rep.num_scenarios,
                "unprotected": percent(base.coverage),
                "k2_protected": percent(rep.coverage),
                "k2_unprotected_flows": len(prot.plan.unprotected),
                "spare_links": prot.plan.links_opened,
            }
        )
        assert rep.coverage > base.coverage
        if label == "d26_media":
            assert rep.full_coverage
            assert not prot.plan.unprotected
    table = format_table(rows, title="double-link coverage with k=2 backups")
    print()
    print(table, end="")
    write_result("resilience_double_link", table, rows)
