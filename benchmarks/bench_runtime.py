"""Synthesis runtime scaling.

Section 5: "The exploration of the design points for all the benchmark
took only a few hours on a 2 GHz Linux machine.  To be noted that the
synthesis process is only run once at design time and therefore the
computational time required by the algorithm is negligible."

Absolute runtimes obviously differ (their C++ on 2009 hardware vs our
Python); what this bench establishes is (a) the asymptotic behaviour —
the quoted O(V^2 E^2 ln V) worst case is nowhere near reached on
realistic sparse graphs — and (b) micro-costs of the two hot kernels
(min-cut partitioning, path allocation).
"""

from __future__ import annotations

import time

from _bench_utils import write_result
from repro import SynthesisConfig, synthesize
from repro.core.partition import partition_graph
from repro.core.vcg import build_global_vcg
from repro.io.report import format_table
from repro.soc.generator import GeneratorConfig, generate_soc
from repro.soc.partitioning import communication_partitioning

FAST = SynthesisConfig(max_intermediate=1)


def test_runtime_scaling_with_core_count(benchmark):
    def sweep():
        rows = []
        for n_cores in (10, 20, 30, 40):
            spec = generate_soc(
                GeneratorConfig(
                    name="scale%d" % n_cores,
                    num_cores=n_cores,
                    num_groups=4,
                    seed=7,
                )
            )
            part = communication_partitioning(spec, 4)
            t0 = time.perf_counter()
            space = synthesize(part, config=FAST)
            dt = time.perf_counter() - t0
            rows.append(
                {
                    "cores": n_cores,
                    "flows": len(spec.flows),
                    "design_points": len(space),
                    "seconds": dt,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        rows, title="Synthesis wall-clock vs core count (4 islands, full sweep)"
    )
    print("\n" + table)
    write_result("runtime_scaling", table, rows)

    assert all(r["design_points"] >= 1 for r in rows)
    # Laptop-scale: the whole sweep stays in seconds, not hours.
    assert sum(r["seconds"] for r in rows) < 120.0


def test_partitioner_microbench(benchmark):
    spec = generate_soc(GeneratorConfig(name="micro", num_cores=32, num_groups=4, seed=3))
    vcg = build_global_vcg(spec)
    nodes = list(vcg.nodes)
    weights = vcg.symmetric_weights()

    result = benchmark(lambda: partition_graph(nodes, weights, 6, seed=0))
    assert len(result) == 6
