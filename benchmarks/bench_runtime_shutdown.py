"""Runtime shutdown bench: trace-driven policy comparison on d26.

The dynamic counterpart of ``bench_leakage_savings.py``: instead of
time-fraction-weighted averages, a seeded-Markov day-in-the-life trace
is replayed through per-island power-state machines under all four
gating policies, on both the VI-aware topology and the VI-oblivious
baseline (the latter under a certifiable controller with its
third-party-crossed islands pinned awake).

Pinned invariants:

* the break-even oracle is never worse than ``never`` or
  ``always_off`` on the same trace (it is the per-interval optimum of
  the simulator's own economics);
* the VI-aware topology reports **zero** routability violations — the
  paper's synthesis guarantee, verified dynamically;
* the VI-aware topology recovers at least as much trace energy as the
  certified VI-oblivious baseline;
* the causal ``ewma_predictor`` lands between ``never`` and the
  clairvoyant oracle (its oracle gap is the price of causality);
* trace-driven co-synthesis (``TraceEnergyObjective`` inside
  Algorithm 1) never selects a worse-in-trace-energy point than
  static-power selection — and on d26 @ 4 islands it selects a
  strictly different, strictly better one.
"""

from __future__ import annotations

import pytest

from repro import SynthesisConfig, mobile_soc_26, synthesize
from repro.baseline.flat import synthesize_vi_oblivious
from repro.io.report import format_table
from repro.power.leakage import statically_pinned_islands
from repro.runtime import (
    certified_policy_comparison,
    compare_policies,
    markov_trace,
    policy_comparison_rows,
)
from repro.soc.partitioning import logical_partitioning
from repro.soc.usecases import use_cases_for

from _bench_utils import BENCH_CONFIG, write_result

TRACE_SEED = 11
TRACE_SEGMENTS = 192
MEAN_DWELL_MS = 40.0


@pytest.fixture(scope="module")
def d26_spec():
    spec = logical_partitioning(mobile_soc_26(), 6)
    return spec.with_vi_assignment(spec.vi_assignment, name="d26_media")


@pytest.fixture(scope="module")
def d26_trace(d26_spec):
    return markov_trace(
        use_cases_for(d26_spec),
        n_segments=TRACE_SEGMENTS,
        seed=TRACE_SEED,
        mean_dwell_ms=MEAN_DWELL_MS,
    )


@pytest.fixture(scope="module")
def aware_reports(d26_spec, d26_trace):
    aware = synthesize(d26_spec, config=BENCH_CONFIG).best_by_power()
    return compare_policies(aware.topology, d26_trace)


@pytest.fixture(scope="module")
def oblivious_reports(d26_spec, d26_trace):
    oblivious = synthesize_vi_oblivious(d26_spec, config=SynthesisConfig(seed=0))
    return certified_policy_comparison(oblivious.topology, d26_trace)


def test_runtime_policy_comparison(aware_reports, oblivious_reports, d26_trace):
    """The headline table: four policies on both topologies."""
    rows = []
    for label, reports in (
        ("vi_aware", aware_reports),
        ("vi_oblivious_certified", oblivious_reports),
    ):
        for row in policy_comparison_rows(list(reports.values())):
            rows.append(dict({"topology": label}, **row))
    table = format_table(
        rows,
        title="runtime shutdown on d26_media, trace %s (%d segments)"
        % (d26_trace.name, len(d26_trace.segments)),
    )
    print()
    print(table, end="")
    write_result("runtime_shutdown", table, rows)

    be = aware_reports["break_even"]
    assert be.total_mj <= aware_reports["never"].total_mj + 1e-9
    assert be.total_mj <= aware_reports["always_off"].total_mj + 1e-9
    obe = oblivious_reports["break_even"]
    assert obe.total_mj <= oblivious_reports["never"].total_mj + 1e-9
    assert obe.total_mj <= oblivious_reports["always_off"].total_mj + 1e-9


def test_vi_aware_routable_under_every_policy(aware_reports):
    """The synthesis guarantee, dynamically: no flow crosses a gated island."""
    for name, report in aware_reports.items():
        assert report.routable, "%s: %d violations" % (name, len(report.violations))


def test_vi_aware_beats_certified_baseline(aware_reports, oblivious_reports):
    """VI-aware recovers more trace energy than a certifiable oblivious NoC."""
    aware_sav = aware_reports["break_even"].savings_vs(aware_reports["never"])
    obl_sav = oblivious_reports["break_even"].savings_vs(oblivious_reports["never"])
    assert aware_sav >= obl_sav - 1e-9
    assert aware_sav > 0.0


def test_uncurated_mode_breaks_oblivious_routability(d26_spec, d26_trace):
    """A mode outside the curated set exposes the baseline's unsafety.

    Activate only the endpoints of a flow that the oblivious router
    sent through a third island; an uncertified always-off controller
    gates that island and the flow loses its path.  The VI-aware
    topology stays routable on the same trace by construction.
    """
    from repro import make_use_case
    from repro.runtime import AlwaysOff, scripted_trace, simulate_trace

    oblivious = synthesize_vi_oblivious(d26_spec, config=SynthesisConfig(seed=0))
    topo = oblivious.topology
    spec = d26_spec
    crossing = None
    for key in sorted(topo.routes):
        extra = topo.islands_touched(key) - {
            spec.island_of(key[0]),
            spec.island_of(key[1]),
            -1,
        }
        if extra:
            crossing = (key, sorted(extra))
            break
    assert crossing is not None, "oblivious baseline crossed no third island"
    (src, dst), extra = crossing
    lone = make_use_case("uncurated_pair", [src, dst], 1.0)
    trace = scripted_trace([lone], [("uncurated_pair", 100.0)], name="uncurated")
    report = simulate_trace(topo, trace, AlwaysOff())
    assert not report.routable
    assert {v.island for v in report.violations} <= set(extra)

    aware = synthesize(d26_spec, config=BENCH_CONFIG).best_by_power()
    aware_report = simulate_trace(aware.topology, trace, AlwaysOff())
    assert aware_report.routable


def test_certified_controller_pins_oblivious_islands(d26_spec):
    """The certified comparison actually pins the statically unsafe islands."""
    oblivious = synthesize_vi_oblivious(d26_spec, config=SynthesisConfig(seed=0))
    pinned = statically_pinned_islands(oblivious.topology)
    assert pinned, "expected third-party routes on the oblivious baseline"


def test_ewma_predictor_gap_vs_oracle(aware_reports):
    """The causal EWMA predictor approaches (never beats) the oracle.

    The oracle gap is the headline number of the causal-policy
    follow-up: how much of the clairvoyant savings a history-based
    controller actually captures on this trace.
    """
    never = aware_reports["never"].total_mj
    ewma = aware_reports["ewma_predictor"].total_mj
    oracle = aware_reports["break_even"].total_mj
    assert oracle <= ewma + 1e-9, "clairvoyant oracle beaten by a causal policy"
    assert ewma <= never + 1e-9, "EWMA predictor lost energy vs never gating"
    gap = ewma - oracle
    rows = [
        {
            "policy": name,
            "energy_mj": round(aware_reports[name].total_mj, 4),
            "oracle_gap_mj": round(aware_reports[name].total_mj - oracle, 4),
        }
        for name in ("never", "ewma_predictor", "break_even")
    ]
    table = format_table(
        rows, title="ewma oracle gap on d26_media: %.2f mJ" % gap
    )
    print()
    print(table, end="")
    write_result("runtime_ewma_gap", table, rows)


@pytest.fixture(scope="module")
def d26_4isl_spec():
    spec = logical_partitioning(mobile_soc_26(), 4)
    return spec.with_vi_assignment(spec.vi_assignment, name="d26_media")


def test_trace_cosynthesis_beats_static_selection(d26_4isl_spec):
    """Co-synthesis picks a different, lower-trace-energy point on d26@4.

    With :class:`TraceEnergyObjective` inside the synthesis loop the
    chosen topology trades ~5 mW of static power for gating
    opportunity and wins on the actual mode sequence — the
    co-synthesis acceptance demo (also recorded in
    ``BENCH_synthesis.json``'s runtime section).
    """
    import dataclasses

    from repro import TraceEnergyObjective
    from repro.runtime import make_policy, simulate_trace

    spec = d26_4isl_spec
    trace = markov_trace(
        use_cases_for(spec),
        n_segments=96,
        seed=11,
        mean_dwell_ms=MEAN_DWELL_MS,
    )
    cfg = SynthesisConfig(max_intermediate=1)
    static_best = synthesize(spec, config=cfg).best_by_power()
    objective = TraceEnergyObjective(trace=trace)
    co_space = synthesize(
        spec, config=dataclasses.replace(cfg, objective=objective)
    )
    co_best = co_space.best()
    # Every surviving point carries its co-synthesis score.
    assert all(p.objective_result is not None for p in co_space.points)

    policy = make_policy("break_even")

    def trace_mj(point):
        return simulate_trace(
            point.topology, trace, policy, check_routability=False
        ).total_mj

    static_mj, co_mj = trace_mj(static_best), trace_mj(co_best)
    assert co_mj <= static_mj + 1e-9
    assert co_best.label() != static_best.label(), (
        "expected the trace objective to diverge from static selection "
        "on d26 @ 4 islands"
    )
    assert co_mj < static_mj
    assert co_best.power_mw > static_best.power_mw  # the trade, explicitly
