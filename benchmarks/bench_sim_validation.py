"""Validation — flit-level simulator vs the analytic zero-load model.

The paper quotes analytically computed zero-load latencies.  We verify
our implementation of that model against an independent discrete-event
simulation of the same topologies (and, as an extension beyond the
paper, measure how contention inflates latency as injection load
rises toward the spec rates).
"""

from __future__ import annotations

from _bench_utils import write_result
from repro.io.report import format_table
from repro.sim.flit_sim import FlitSimConfig, simulate

LOADS = [0.05, 0.25, 0.5, 1.0]


def test_simulator_agrees_at_zero_load(benchmark, island_sweep):
    point = island_sweep[(6, "logical")]

    def run():
        return simulate(
            point.topology,
            FlitSimConfig(single_packet=True, warmup_ns=0.0, sim_time_ns=1000.0),
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    err = report.worst_relative_error()
    table = (
        "Zero-load validation (single-packet mode), d26 6-VI logical\n"
        "packets: %d, worst |sim - analytic| / analytic: %.2e\n" % (
            report.packets_delivered, err)
    )
    print("\n" + table)
    write_result("sim_validation_zeroload", table)
    assert report.packets_delivered == len(point.topology.routes)
    assert err < 1e-9, "simulator must reproduce the analytic model exactly"


def test_contention_study_beyond_paper(benchmark, island_sweep):
    point = island_sweep[(6, "logical")]

    def sweep():
        rows = []
        for load in LOADS:
            rep = simulate(
                point.topology,
                FlitSimConfig(
                    load_factor=load,
                    sim_time_ns=120_000.0,
                    warmup_ns=12_000.0,
                    arrival_process="poisson",
                    seed=11,
                ),
            )
            rows.append(
                {
                    "load_factor": load,
                    "packets": rep.packets_delivered,
                    "mean_latency_ns": rep.mean_latency_ns,
                    "worst_flow_inflation": rep.worst_relative_error(),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        rows,
        title="Extension: latency vs injection load (Poisson arrivals, d26 6-VI)",
    )
    print("\n" + table)
    write_result("sim_contention", table, rows)

    means = [r["mean_latency_ns"] for r in rows]
    # Latency grows monotonically-ish with load; full load clearly
    # exceeds the near-zero-load point.
    assert means[-1] > means[0]
    assert all(r["packets"] > 0 for r in rows)
