"""Shared fixtures for the experiment benches.

Every bench regenerates one artifact of the paper (a figure's data
series or a text-table claim), prints it as an aligned table and writes
it under ``benchmarks/results/`` so the numbers survive pytest's output
capture.  Heavy sweeps are computed once per session and shared (the
Figure 2 and Figure 3 benches read the same island-count sweep, exactly
like the paper plots two views of one experiment).

Importable helpers (``write_result``, ``BENCH_CONFIG``, ...) live in
:mod:`_bench_utils`; only fixtures and collection hooks belong here.
All benches are marked ``slow`` so the tier-1 run (``pytest -m "not
slow"`` via ``pytest.ini``) stays fast; run them with
``pytest benchmarks -m slow``.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro import DesignPoint, synthesize
from repro.soc.benchmarks import mobile_soc_26
from repro.soc.partitioning import communication_partitioning, logical_partitioning

from _bench_utils import BENCH_CONFIG, ISLAND_COUNTS


_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(items):
    """Mark every bench test ``slow`` (they re-run paper experiments).

    The hook fires for the whole session, so restrict it to items that
    actually live under ``benchmarks/``.
    """
    for item in items:
        if str(item.path).startswith(_BENCH_DIR + os.sep):
            item.add_marker(pytest.mark.slow)


SweepKey = Tuple[int, str]


@pytest.fixture(scope="session")
def island_sweep() -> Dict[SweepKey, DesignPoint]:
    """Best-power design points for the Figure 2/3 sweep.

    Keys are ``(island_count, strategy)`` with strategy in
    ``{"logical", "communication"}``.
    """
    spec = mobile_soc_26()
    results: Dict[SweepKey, DesignPoint] = {}
    for n in ISLAND_COUNTS:
        for strategy, fn in (
            ("logical", logical_partitioning),
            ("communication", communication_partitioning),
        ):
            part = fn(spec, n)
            space = synthesize(part, config=BENCH_CONFIG)
            results[(n, strategy)] = space.best_by_power()
    return results


@pytest.fixture(scope="session")
def d26_reference() -> DesignPoint:
    """The single-island reference design point of the 26-core SoC."""
    spec = mobile_soc_26().single_island()
    return synthesize(spec, config=BENCH_CONFIG).best_by_power()
