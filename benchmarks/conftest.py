"""Shared infrastructure for the experiment benches.

Every bench regenerates one artifact of the paper (a figure's data
series or a text-table claim), prints it as an aligned table and writes
it under ``benchmarks/results/`` so the numbers survive pytest's output
capture.  Heavy sweeps are computed once per session and shared (the
Figure 2 and Figure 3 benches read the same island-count sweep, exactly
like the paper plots two views of one experiment).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

import pytest

from repro import DesignPoint, SynthesisConfig, synthesize
from repro.io.report import format_table, save_csv
from repro.soc.benchmarks import mobile_soc_26
from repro.soc.partitioning import communication_partitioning, logical_partitioning

#: Island counts on the x-axis of Figures 2 and 3.
ISLAND_COUNTS = [1, 2, 3, 4, 5, 6, 7, 26]

#: Synthesis config used by the benches: full algorithm, bounded
#: intermediate-island sweep to keep the wall-clock sane.
BENCH_CONFIG = SynthesisConfig(max_intermediate=2)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name: str, table: str, rows=None, columns=None) -> str:
    """Persist a bench's table (and optional CSV) under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as f:
        f.write(table)
    if rows:
        save_csv(rows, os.path.join(RESULTS_DIR, name + ".csv"), columns)
    return path


SweepKey = Tuple[int, str]


@pytest.fixture(scope="session")
def island_sweep() -> Dict[SweepKey, DesignPoint]:
    """Best-power design points for the Figure 2/3 sweep.

    Keys are ``(island_count, strategy)`` with strategy in
    ``{"logical", "communication"}``.
    """
    spec = mobile_soc_26()
    results: Dict[SweepKey, DesignPoint] = {}
    for n in ISLAND_COUNTS:
        for strategy, fn in (
            ("logical", logical_partitioning),
            ("communication", communication_partitioning),
        ):
            part = fn(spec, n)
            space = synthesize(part, config=BENCH_CONFIG)
            results[(n, strategy)] = space.best_by_power()
    return results


@pytest.fixture(scope="session")
def d26_reference() -> DesignPoint:
    """The single-island reference design point of the 26-core SoC."""
    spec = mobile_soc_26().single_island()
    return synthesize(spec, config=BENCH_CONFIG).best_by_power()
