"""Closed-loop fault recovery: detect, fail over, restore — live.

The resilience example (``fault_tolerant_soc.py``) shows the *planning*
side: spare routes exist and coverage is complete.  This example shows
the *runtime* side (``repro.control``, see docs/control_plane.md): an
in-simulation reconfiguration controller that only learns about a fault
through a modeled telemetry channel, decides per affected flow (spare /
recomputed reroute / lost), installs the new routing with a modeled
install delay, and restores primaries once the component is repaired —
re-auditing deadlock freedom at every installation.

1. synthesize d26 @ 6 islands, protect with k=1 spare routes;
2. inject a single-link failure into a Markov trace and let the
   controller run the failed -> detected -> rerouted -> repaired ->
   restored staged repair;
3. print the per-fault recovery timeline and the telemetry stream;
4. annotate the same scenarios with FIT rates and report the expected
   availability the control loop defends.

Run:  PYTHONPATH=src python examples/control_plane.py
"""

from repro import (
    FaultEvent,
    SynthesisConfig,
    analyze_model,
    mobile_soc_26,
    protect_design_point,
    synthesize,
)
from repro.control import ControlLatencyModel, ReconfigurationController, recovery_rows
from repro.io.report import format_table
from repro.resilience import FitRates, enumerate_scenarios, route_affected
from repro.runtime import make_policy, markov_trace, simulate_trace
from repro.soc.partitioning import logical_partitioning
from repro.soc.usecases import use_cases_for


def main() -> None:
    spec = logical_partitioning(mobile_soc_26(), 6)
    spec = spec.with_vi_assignment(spec.vi_assignment, name="d26_media")
    best = synthesize(spec, config=SynthesisConfig(seed=0)).best_by_power()
    prot = protect_design_point(best, k=1)
    topology = prot.topology

    # A fault that actually hits a primary route, injected mid-trace.
    trace = markov_trace(use_cases_for(spec), n_segments=64, seed=11)
    scenario = next(
        sc
        for sc in enumerate_scenarios(topology, "single_link")
        if any(route_affected(sc, topology, r) for r in topology.routes.values())
    )
    event = FaultEvent(
        scenario=scenario,
        start_ms=0.25 * trace.total_ms,
        end_ms=0.6 * trace.total_ms,
    )

    controller = ReconfigurationController(
        topology, spare_plan=prot.plan, latency=ControlLatencyModel()
    )
    report = simulate_trace(
        topology,
        trace,
        make_policy("break_even"),
        fault_events=[event],
        spare_plan=prot.plan,
        controller=controller,
    )

    print(
        format_table(
            recovery_rows(report.recoveries),
            title="staged recovery of %s (%.0f ms trace)"
            % (scenario.name, trace.total_ms),
        )
    )
    for ev in report.telemetry:
        print(ev.describe())
    print(
        "\nworst recovery %.4f ms, lost traffic %.3f Mbit, "
        "degraded-mode energy %+.6f mJ, deadlock-free installs: %s"
        % (
            report.worst_recovery_ms,
            report.lost_traffic_mbits,
            report.fault_delta_mj,
            report.recoveries_deadlock_free,
        )
    )

    # What the loop is defending, in availability terms.
    rates = FitRates()
    base = analyze_model(best.topology, "single_link", rates=rates)
    rep = analyze_model(topology, "single_link", plan=prot.plan, rates=rates)
    print(
        "expected availability: %.9f unprotected -> %.9f protected "
        "(%.4f -> %.4f min/year downtime)"
        % (
            base.expected_availability(rates.repair_hours),
            rep.expected_availability(rates.repair_hours),
            base.downtime_minutes_per_year(rates.repair_hours),
            rep.downtime_minutes_per_year(rates.repair_hours),
        )
    )


if __name__ == "__main__":
    main()
