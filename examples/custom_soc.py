"""Bring your own SoC: specs from scratch and the intermediate island.

Part 1 builds a small automotive-style SoC directly with the public
API (CoreSpec / TrafficFlow / build_spec), islands it by hand, and
synthesizes it.

Part 2 shows the intermediate NoC island earning its keep: a
hub-and-spoke design whose hub island is too fast (and hence too
port-limited) for direct links to every satellite island.  Direct-only
synthesis fails; allowing indirect switches in the never-gated
intermediate island makes it feasible — Section 4's motivation,
executable.

Run:  python examples/custom_soc.py
"""

from repro import (
    CoreSpec,
    InfeasibleError,
    SynthesisConfig,
    TrafficFlow,
    build_spec,
    synthesize,
)
from repro.io.report import format_table
from repro.soc.generator import hub_soc


def part1_custom_spec() -> None:
    cores = [
        CoreSpec("cpu", area_mm2=3.0, dynamic_power_mw=150.0, leakage_power_mw=45.0,
                 kind="cpu", group="compute"),
        CoreSpec("sram", 2.0, 40.0, 40.0, "memory", "compute"),
        CoreSpec("engine", 2.2, 110.0, 30.0, "accelerator", "compute"),
        CoreSpec("radar_if", 0.8, 35.0, 8.0, "io", "sensing"),
        CoreSpec("lidar_if", 0.9, 38.0, 9.0, "io", "sensing"),
        CoreSpec("fusion", 1.5, 90.0, 22.0, "dsp", "sensing"),
        CoreSpec("can", 0.4, 8.0, 2.0, "io", "body"),
        CoreSpec("gpio", 0.3, 4.0, 1.5, "peripheral", "body"),
    ]
    flows = [
        TrafficFlow("cpu", "sram", 480.0, latency_cycles=8.0),
        TrafficFlow("sram", "cpu", 560.0, latency_cycles=8.0),
        TrafficFlow("engine", "sram", 300.0, latency_cycles=10.0),
        TrafficFlow("radar_if", "fusion", 200.0, latency_cycles=12.0),
        TrafficFlow("lidar_if", "fusion", 260.0, latency_cycles=12.0),
        TrafficFlow("fusion", "sram", 180.0, latency_cycles=12.0),
        TrafficFlow("cpu", "fusion", 20.0, latency_cycles=20.0),
        TrafficFlow("cpu", "can", 5.0, latency_cycles=30.0),
        TrafficFlow("can", "gpio", 1.0, latency_cycles=40.0),
    ]
    islands = {
        "cpu": 0, "sram": 0, "engine": 0,          # compute island
        "radar_if": 1, "lidar_if": 1, "fusion": 1,  # sensing island
        "can": 2, "gpio": 2,                        # always-on body island
    }
    spec = build_spec("my_adas_soc", cores, flows, islands)
    space = synthesize(spec, config=SynthesisConfig(alpha=0.5))
    print(format_table(space.summary_rows(), title="my_adas_soc design points"))
    best = space.best_by_power()
    print("chosen:", best.label(), "->", best.topology.summary())
    print()


def part2_intermediate_island() -> None:
    spec = hub_soc()  # 1 memory hub + 24 satellites, 25 islands
    print("hub24: %d cores in %d islands, %d flows" % (
        len(spec.cores), spec.num_islands, len(spec.flows)))
    try:
        synthesize(spec, config=SynthesisConfig(allow_intermediate=False))
        print("direct-only synthesis succeeded (unexpected for this design)")
    except InfeasibleError:
        print("direct-only synthesis: INFEASIBLE (hub switch would need "
              "24 inter-island links but its clock only permits a 16-port switch)")
    space = synthesize(
        spec, config=SynthesisConfig(allow_intermediate=True, max_intermediate=3)
    )
    best = space.best_by_power()
    print(
        "with intermediate island: feasible, %d indirect switch(es), "
        "%.1f mW, %.2f cycles average" % (
            best.num_intermediate_used, best.power_mw, best.avg_latency_cycles)
    )


if __name__ == "__main__":
    part1_custom_spec()
    part2_intermediate_island()
