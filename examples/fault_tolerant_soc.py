"""Fault-tolerant synthesis: spare paths, coverage, degraded runtime.

A planned island shutdown and an unplanned link failure are the same
routing problem — a component the flow relied on goes away.  The
resilience subsystem (``repro.resilience``, see docs/resilience.md)
answers both with the same machinery:

1. synthesize d26 @ 6 islands and measure how the *unprotected*
   best-power point fares under every single inter-switch link
   failure (spoiler: some flows have exactly one path);
2. protect the point with k=1 edge-disjoint backup routes — backups
   honor the VI shutdown-safety rule, so protection never costs the
   gating guarantee — and show coverage hit 100% at a measured power
   overhead;
3. let :class:`ResilienceObjective` drive selection instead: the
   cheapest point *whose protected coverage is complete* wins, with
   the spare overhead costed lexicographically after static power;
4. replay a use-case trace with an injected link failure: flows fail
   over to their spares (one-time switchover stall, backup-path
   energy), and without spares the simulator reports lost service.

Run:  PYTHONPATH=src python examples/fault_tolerant_soc.py
"""

from repro import (
    FaultEvent,
    ResilienceObjective,
    SynthesisConfig,
    analyze_model,
    mobile_soc_26,
    protect_design_point,
    synthesize,
)
from repro.io.report import format_table, percent
from repro.resilience import single_link_failures
from repro.runtime import make_policy, markov_trace, simulate_trace
from repro.soc.partitioning import logical_partitioning
from repro.soc.usecases import use_cases_for


def main() -> None:
    spec = logical_partitioning(mobile_soc_26(), 6)
    spec = spec.with_vi_assignment(spec.vi_assignment, name="d26_media")
    space = synthesize(spec, config=SynthesisConfig(seed=0))
    best = space.best_by_power()

    # 1. the unprotected design under single link failures
    base = analyze_model(best.topology, "single_link")
    print(
        "unprotected %s: %s coverage over %d scenarios (%d flows lost somewhere)"
        % (
            best.label(),
            percent(base.coverage),
            base.num_scenarios,
            len(base.uncovered_flows),
        )
    )

    # 2. k=1 spare protection
    prot = protect_design_point(best, k=1)
    rep = analyze_model(prot.topology, "single_link", plan=prot.plan)
    print(
        "k=1 protected: %s coverage, %d spare links, +%.2f mW (%s), +%.1f mm wire"
        % (
            percent(rep.coverage),
            prot.plan.links_opened,
            prot.power_overhead_mw,
            percent(prot.power_overhead_mw / best.power_mw),
            prot.wire_overhead_mm,
        )
    )

    # 3. resilience-aware selection over the whole design space
    objective = ResilienceObjective()  # single_link, k=1, full coverage
    chosen = space.best(objective=objective)
    result = objective.evaluate(chosen)
    print(
        "resilience objective picks %s (cost %s)"
        % (chosen.label(), tuple(round(c, 2) for c in result.cost))
    )

    # 4. degraded-mode runtime: inject the first link failure mid-trace
    trace = markov_trace(use_cases_for(spec), n_segments=64, seed=11)
    scenario = single_link_failures(prot.topology)[0]
    event = FaultEvent(scenario=scenario, start_ms=trace.total_ms / 4.0)
    rows = []
    for label, plan in (("with spares", prot.plan), ("no spares", None)):
        report = simulate_trace(
            prot.topology,
            trace,
            make_policy("break_even"),
            fault_events=[event],
            spare_plan=plan,
        )
        rows.append(
            {
                "design": label,
                "energy_mj": round(report.total_mj, 2),
                "fault_delta_mj": round(report.fault_delta_mj, 4),
                "rerouted": report.rerouted_flow_events,
                "lost": report.lost_flow_events,
                "failover_stall_ms": round(report.fault_stall_ms, 3),
            }
        )
    print()
    print(
        format_table(
            rows,
            title="trace replay with %s injected at %.0f ms"
            % (scenario.name, event.start_ms),
        ),
        end="",
    )


if __name__ == "__main__":
    main()
