"""From design point to implementation: netlist, voltages, battery life.

The paper's synthesis "can be plugged in [the authors' backend flow] in
order to generate fully implementable NoCs".  This example walks the
hand-off artifacts this library produces for a chosen design point:

1. the **structural Verilog netlist** instantiating every switch, NI
   and bi-synchronous converter with the synthesized parameters;
2. the **per-island voltage assignment** (lowest corner that closes
   timing at each island's clock) and the dynamic power it recovers;
3. the **gating data sheet** per island — wake-up latency, gating event
   energy, break-even idle time — which is what the power-management
   firmware team needs;
4. a **24-hour energy profile** over the phone's use-case mix, turning
   the paper's savings claim into a battery-life multiplier.

Run:  python examples/implementation_handoff.py
"""

import os

from repro import (
    SynthesisConfig,
    break_even_time_ms,
    island_gating_cost,
    mobile_soc_26,
    synthesize,
    voltage_aware_noc_power,
)
from repro.io.netlist import save_verilog
from repro.io.report import format_table, percent
from repro.sim.profile import daily_mobile_timeline, profile_timeline
from repro.soc.partitioning import logical_partitioning
from repro.soc.usecases import mobile_use_cases


def main() -> None:
    spec = logical_partitioning(mobile_soc_26(), 6)
    spec = spec.with_vi_assignment(spec.vi_assignment, name="d26_media")
    best = synthesize(spec, config=SynthesisConfig(max_intermediate=1)).best_by_power()
    topo = best.topology

    # 1. Netlist hand-off.
    out = os.path.join(os.path.dirname(os.path.abspath(__file__)), "d26_noc.v")
    save_verilog(topo, out)
    print("wrote structural netlist: %s (%d switches, %d NIs, %d converters)\n"
          % (out, len(topo.switches), len(topo.nis), topo.num_converters()))

    # 2. Voltage assignment.
    vp = voltage_aware_noc_power(topo)
    rows = [
        {
            "island": isl,
            "freq_mhz": topo.island_freqs[isl],
            "vdd": vp.corners[isl].vdd,
            "noc_dynamic_mw": round(vp.dynamic_by_island[isl], 2),
        }
        for isl in sorted(topo.island_freqs)
    ]
    print(format_table(rows, title="Per-island voltage corners"))
    print("voltage scaling recovers %s of NoC dynamic power\n"
          % percent(vp.dynamic_savings_fraction))

    # 3. Gating data sheet.
    rows = []
    for isl in spec.islands:
        cost = island_gating_cost(topo, isl)
        rows.append(
            {
                "island": isl,
                "gated_area_mm2": round(cost.gated_area_mm2, 2),
                "leakage_saved_mw": round(cost.leakage_saved_mw, 1),
                "wakeup_us": round(cost.wakeup_latency_us, 1),
                "break_even_us": round(1000.0 * break_even_time_ms(cost), 2),
            }
        )
    print(format_table(rows, title="Island gating data sheet"))

    # 4. A day of battery.
    cases = mobile_use_cases()
    profile = profile_timeline(topo, daily_mobile_timeline(cases, hours=24.0))
    print("24h energy: %.0f J without gating, %.0f J with island shutdown"
          % (profile.energy_no_gating_j, profile.energy_gated_j))
    print("savings: %s of daily energy -> %.2fx battery life"
          % (percent(profile.savings_fraction), profile.battery_life_extension))


if __name__ == "__main__":
    main()
