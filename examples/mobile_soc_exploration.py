"""Design-space exploration of the 26-core mobile SoC (Figures 2 & 3).

Reproduces the paper's island-count sweep: for 1..7 and 26 voltage
islands, under both logical and communication-based partitioning,
synthesize the NoC and report the best-power design point's dynamic
power and average zero-load latency.  Then prints the full
power/latency Pareto front for one configuration, which is the
trade-off curve the paper lets the designer choose from.

Run:  python examples/mobile_soc_exploration.py
"""

from repro import SynthesisConfig, mobile_soc_26, synthesize
from repro.io.report import format_table
from repro.soc.partitioning import communication_partitioning, logical_partitioning


def sweep() -> None:
    spec = mobile_soc_26()
    rows = []
    for n in (1, 2, 3, 4, 5, 6, 7, 26):
        row = {"islands": n}
        for label, strategy in (
            ("logical", logical_partitioning),
            ("comm", communication_partitioning),
        ):
            part = strategy(spec, n)
            best = synthesize(
                part, config=SynthesisConfig(max_intermediate=1)
            ).best_by_power()
            row["%s_power_mw" % label] = best.power_mw
            row["%s_latency_cyc" % label] = best.avg_latency_cycles
        rows.append(row)
    print(
        format_table(
            rows,
            title="Island-count sweep, d26_media (Figure 2 = power columns, "
            "Figure 3 = latency columns)",
        )
    )
    ref = rows[0]["logical_power_mw"]
    comm_best = min(r["comm_power_mw"] for r in rows[1:-1])
    print(
        "communication-based partitioning beats the 1-island reference by "
        "%.0f%% at its best point" % (100 * (1 - comm_best / ref))
    )


def pareto() -> None:
    spec = logical_partitioning(mobile_soc_26(), 6)
    space = synthesize(spec, config=SynthesisConfig(max_intermediate=2))
    front = space.pareto_front()
    rows = [
        {
            "point": p.label(),
            "power_mw": p.power_mw,
            "latency_cyc": p.avg_latency_cycles,
            "switches": p.total_switches,
        }
        for p in front
    ]
    print(
        format_table(
            rows,
            title="Power/latency Pareto front at 6 logical islands "
            "(%d of %d points non-dominated)" % (len(front), len(space)),
        )
    )


if __name__ == "__main__":
    sweep()
    pareto()
