"""Pluggable objectives: trace-driven co-synthesis and wake-latency QoS.

The paper's Algorithm 1 minimizes a static power/latency scalar, but
the quantity a battery actually sees is *energy over a mode sequence
under gating*.  The unified objective layer (``repro.core.objective``,
see docs/objectives.md) makes the cost model a plug-in:

1. synthesize d26 @ 4 islands the classic way (static Figure-2 power);
2. re-synthesize with ``TraceEnergyObjective`` *inside* the synthesis
   loop — on this spec the co-synthesized point pays ~5 mW more in the
   static snapshot and still wins on trace energy, because its
   switch-count split gives the gating controller more opportunity;
3. show ``WakeLatencyQoSObjective`` rejecting an aggressive gating
   policy that wins on energy but breaks a per-flow wake deadline —
   constraints compose with scoring objectives instead of being
   averaged away.

Run:  PYTHONPATH=src python examples/objective_cosynthesis.py
"""

import dataclasses

from repro import (
    SynthesisConfig,
    TraceEnergyObjective,
    WakeLatencyQoSObjective,
    mobile_soc_26,
    synthesize,
)
from repro.io.report import format_table
from repro.runtime import make_policy, markov_trace, simulate_trace
from repro.soc.partitioning import logical_partitioning
from repro.soc.usecases import use_cases_for


def main() -> None:
    spec = logical_partitioning(mobile_soc_26(), 4)
    spec = spec.with_vi_assignment(spec.vi_assignment, name="d26_media")
    trace = markov_trace(
        use_cases_for(spec), n_segments=96, seed=11, mean_dwell_ms=40.0
    )
    cfg = SynthesisConfig(max_intermediate=1)

    # -- 1+2: static selection vs trace-driven co-synthesis ------------
    static_best = synthesize(spec, config=cfg).best_by_power()
    objective = TraceEnergyObjective(trace=trace)
    co_space = synthesize(
        spec, config=dataclasses.replace(cfg, objective=objective)
    )
    co_best = co_space.best()

    policy = make_policy("break_even")
    rows = []
    for label, point in (("static_power", static_best), ("trace_energy", co_best)):
        report = simulate_trace(
            point.topology, trace, policy, check_routability=False
        )
        rows.append(
            {
                "objective": label,
                "point": point.label(),
                "static_mw": round(point.power_mw, 2),
                "trace_mj": round(report.total_mj, 2),
            }
        )
    print(
        format_table(
            rows,
            title="d26 @ 4 islands: what synthesis optimizes for matters",
        )
    )
    saved = rows[0]["trace_mj"] - rows[1]["trace_mj"]
    print(
        "co-synthesis point %s spends %+.2f mW of static power to save "
        "%.2f mJ of trace energy\n"
        % (
            co_best.label(),
            co_best.power_mw - static_best.power_mw,
            saved,
        )
    )

    # -- 3: QoS rejection of an energy-winning policy -------------------
    aggressive = TraceEnergyObjective(trace=trace, policy="always_off")
    energy_view = aggressive.evaluate(static_best)
    never_mj = simulate_trace(
        static_best.topology, trace, make_policy("never"), check_routability=False
    ).total_mj
    print(
        "always_off wins on energy: %.1f mJ vs %.1f mJ for never"
        % (energy_view.cost[0], never_mj)
    )
    qos = WakeLatencyQoSObjective(
        trace=trace, policy="always_off", budget_ms=0.01
    )
    verdict = qos.evaluate(static_best)
    print("wake-QoS verdict on the same policy: feasible=%s" % verdict.feasible)
    if not verdict.feasible:
        print("  %s" % verdict.reason)


if __name__ == "__main__":
    main()
