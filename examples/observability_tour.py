"""A tour of the observability layer: spans, metrics, exporters, dashboard.

Everything the ``repro.obs`` package offers, on one controlled fault
replay (see docs/observability.md):

1. synthesize d26 @ 6 islands under an active span tracer + perf
   recorder, protect the best point with k=1 spares;
2. replay a Markov trace with an injected single-link fault and the
   reconfiguration controller driving recovery — runtime and control
   spans land in the same trace as the synthesis spans;
3. project the run into the typed metrics registry (island residency,
   wake-stall and recovery-latency histograms, energy-by-source);
4. export all three formats — Chrome/Perfetto ``trace_event`` JSON,
   JSON-lines event log (spans + controller telemetry), Prometheus
   text — into ``obs_out/``;
5. render the terminal dashboard (phase breakdown, recovery timeline,
   island-state Gantt rows, top counters) and its static HTML twin;
6. stream a ``workers=2`` exploration sweep live through the event
   bus — progress, heartbeats and per-task span events land in a
   tail-able JSONL feed (``repro-noc obs --follow`` can watch it from
   another terminal) whose timing-stripped canonical form is
   byte-identical to the post-hoc export of the same run.

Run:  PYTHONPATH=src python examples/observability_tour.py
"""

import os

from repro import (
    FaultEvent,
    SynthesisConfig,
    mobile_soc_26,
    protect_design_point,
    synthesize,
)
from repro.control import ReconfigurationController
from repro.core.explore import ExplorationEngine
from repro.obs import (
    EventBus,
    JsonlSink,
    LiveStatus,
    MemorySink,
    MetricsRegistry,
    SpanRecorder,
    canonical_events,
    chrome_trace_json,
    event_lines,
    prometheus_text,
    read_events,
    record_control_metrics,
    record_runtime_metrics,
    render_dashboard,
    render_html,
    span_log_lines,
    status_lines,
    streaming,
    telemetry_log_lines,
    tracing,
    write_lines,
)
from repro.perf import PerfRecorder, recording
from repro.resilience import enumerate_scenarios, route_affected
from repro.runtime import make_policy, markov_trace, simulate_trace
from repro.soc.partitioning import logical_partitioning
from repro.soc.usecases import use_cases_for

OUT_DIR = "obs_out"


def main() -> None:
    spec = logical_partitioning(mobile_soc_26(), 6)
    spec = spec.with_vi_assignment(spec.vi_assignment, name="d26_media")

    # 1+2: the whole pipeline runs under one tracer + recorder, so the
    # synthesis, runtime and control spans share a single trace.
    recorder = PerfRecorder()
    tracer = SpanRecorder()
    with recording(recorder), tracing(tracer):
        best = synthesize(
            spec, config=SynthesisConfig(max_intermediate=1)
        ).best_by_power()
        prot = protect_design_point(best, k=1)
        topology = prot.topology
        trace = markov_trace(use_cases_for(spec), n_segments=48, seed=11)
        scenario = next(
            sc
            for sc in enumerate_scenarios(topology, "single_link")
            if any(
                route_affected(sc, topology, r)
                for r in topology.routes.values()
            )
        )
        event = FaultEvent(
            scenario=scenario,
            start_ms=0.25 * trace.total_ms,
            end_ms=0.6 * trace.total_ms,
        )
        controller = ReconfigurationController(topology, spare_plan=prot.plan)
        report = simulate_trace(
            topology,
            trace,
            make_policy("break_even"),
            fault_events=[event],
            spare_plan=prot.plan,
            controller=controller,
        )

    # 3: one registry over the perf counters and both report kinds.
    registry = MetricsRegistry()
    registry.absorb_perf(recorder)
    record_runtime_metrics(registry, report)
    record_control_metrics(registry, report)

    # 4: all three export formats.
    os.makedirs(OUT_DIR, exist_ok=True)
    trace_path = os.path.join(OUT_DIR, "trace.json")
    with open(trace_path, "w", encoding="utf-8") as fh:
        fh.write(chrome_trace_json(tracer))
    events_path = os.path.join(OUT_DIR, "events.jsonl")
    n = write_lines(
        events_path,
        span_log_lines(tracer) + telemetry_log_lines(report.telemetry),
    )
    prom_path = os.path.join(OUT_DIR, "metrics.prom")
    with open(prom_path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(registry))

    # 5: the dashboard, terminal + HTML.
    title = "d26 @ 6 islands: controlled recovery of %s" % scenario.name
    print(
        render_dashboard(
            tracer=tracer, registry=registry, report=report, title=title
        )
    )
    html_path = os.path.join(OUT_DIR, "dashboard.html")
    with open(html_path, "w", encoding="utf-8") as fh:
        fh.write(
            render_html(
                tracer=tracer, registry=registry, report=report, title=title
            )
        )

    # 6: live streaming — the same sweep twice over, once through a
    # tail-able JSONL sink and once into memory, to show the
    # live-vs-post-hoc byte-identity guarantee the bench harness gates.
    live_path = os.path.join(OUT_DIR, "live_events.jsonl")
    capture = MemorySink()
    with streaming(EventBus(sinks=[capture, JsonlSink(live_path, timing=False)])):
        with ExplorationEngine(
            workers=2, config=SynthesisConfig(max_intermediate=1)
        ) as engine:
            engine.alpha_exploration(spec, [0.2, 0.5, 0.8])
    status = LiveStatus()
    for ev in capture.events:
        status.apply(ev)
    for line in status_lines(status):
        print(line)
    live = event_lines(canonical_events(read_events(live_path)), timing=False)
    posthoc = event_lines(canonical_events(capture.events), timing=False)
    assert live == posthoc, "live feed must match the post-hoc export"

    print("spans recorded: %d  (root paths: synthesis, runtime.simulate, control.run)" % len(tracer.spans))
    print("wrote %s  (drop on https://ui.perfetto.dev)" % trace_path)
    print("wrote %s  (%d span + telemetry lines)" % (events_path, n))
    print("wrote %s  (Prometheus text format)" % prom_path)
    print("wrote %s  (self-contained static page)" % html_path)
    print(
        "wrote %s  (%d live events, byte-identical to the post-hoc export"
        " — tail with `repro-noc obs --follow`)" % (live_path, len(live))
    )


if __name__ == "__main__":
    main()
