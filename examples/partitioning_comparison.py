"""Logical vs communication-based island assignment, dissected.

The paper evaluates two ways of assigning cores to voltage islands and
finds they land on opposite sides of the single-island reference
(Figure 2).  This example explains *why*, at one island count:

* which high-bandwidth flows end up crossing islands under each
  strategy (crossings cost converter energy and 4 cycles);
* what clock each island gets (slower islands save clock-tree power);
* the resulting NoC power breakdown, side by side.

Run:  python examples/partitioning_comparison.py
"""

from repro import SynthesisConfig, mobile_soc_26, plan_all_islands, synthesize
from repro.power.library import DEFAULT_LIBRARY
from repro.io.report import format_table
from repro.soc.partitioning import communication_partitioning, logical_partitioning

ISLANDS = 4


def describe(strategy_name, spec) -> dict:
    plans = plan_all_islands(spec, DEFAULT_LIBRARY)
    print("%s partitioning, %d islands:" % (strategy_name, ISLANDS))
    for isl in spec.islands:
        cores = spec.cores_in_island(isl)
        print(
            "  VI %d @ %4.0f MHz (max switch %2d ports): %s"
            % (
                isl,
                plans[isl].freq_mhz,
                plans[isl].max_switch_size,
                ", ".join(cores),
            )
        )
    crossing = sorted(
        spec.flows_across_islands(), key=lambda f: -f.bandwidth_mbps
    )
    total_cross = sum(f.bandwidth_mbps for f in crossing)
    print(
        "  %d of %d flows cross islands (%.0f MB/s aggregate); heaviest:"
        % (len(crossing), len(spec.flows), total_cross)
    )
    for f in crossing[:4]:
        print("    %-18s %6.0f MB/s" % ("%s->%s" % f.key, f.bandwidth_mbps))

    best = synthesize(spec, config=SynthesisConfig(max_intermediate=1)).best_by_power()
    p = best.noc_power
    print("  NoC power: %.1f mW (Figure 2 metric)\n" % best.power_mw)
    return {
        "strategy": strategy_name,
        "cross_flows": len(crossing),
        "cross_bw_mbps": total_cross,
        "switch_idle_mw": p.switch_idle_mw,
        "switch_traffic_mw": p.switch_traffic_mw,
        "link_traffic_mw": p.link_traffic_mw,
        "fifo_mw": p.fifo_idle_mw + p.fifo_traffic_mw,
        "total_mw": best.power_mw,
        "avg_latency_cyc": best.avg_latency_cycles,
    }


def main() -> None:
    base = mobile_soc_26()
    rows = [
        describe("logical", logical_partitioning(base, ISLANDS)),
        describe("communication", communication_partitioning(base, ISLANDS)),
    ]
    reference = synthesize(
        base.single_island(), config=SynthesisConfig(max_intermediate=1)
    ).best_by_power()
    rows.append(
        {
            "strategy": "1-island reference",
            "cross_flows": 0,
            "cross_bw_mbps": 0.0,
            "switch_idle_mw": reference.noc_power.switch_idle_mw,
            "switch_traffic_mw": reference.noc_power.switch_traffic_mw,
            "link_traffic_mw": reference.noc_power.link_traffic_mw,
            "fifo_mw": 0.0,
            "total_mw": reference.power_mw,
            "avg_latency_cyc": reference.avg_latency_cycles,
        }
    )
    print(format_table(rows, title="NoC power breakdown by partitioning strategy"))
    print(
        "communication-based keeps %.0f%% less bandwidth off the converters "
        "than logical partitioning."
        % (100.0 * (1 - rows[1]["cross_bw_mbps"] / rows[0]["cross_bw_mbps"]))
    )


if __name__ == "__main__":
    main()
