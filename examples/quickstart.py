"""Quickstart: synthesize a shutdown-capable NoC in ~20 lines.

Takes the paper's 26-core mobile SoC, assigns its cores to 6 voltage
islands by functional group, runs Algorithm 1, and prints the chosen
design point.  Exports the topology (Graphviz DOT) and floorplan (SVG)
next to this script.

Run:  python examples/quickstart.py
"""

import os

from repro import SynthesisConfig, mobile_soc_26, synthesize
from repro.io.dot import save_dot
from repro.io.floorplan_art import save_floorplan_svg
from repro.soc.partitioning import logical_partitioning


def main() -> None:
    # 1. The application: cores, traffic flows, latency budgets.
    spec = mobile_soc_26()
    print("input:", spec)

    # 2. The voltage islands (an input to synthesis, per the paper).
    spec = logical_partitioning(spec, 6)
    for isl in spec.islands:
        print("  VI %d: %s" % (isl, ", ".join(spec.cores_in_island(isl))))

    # 3. Algorithm 1: explore switch counts and intermediate switches.
    space = synthesize(spec, config=SynthesisConfig(alpha=0.6))
    print("\n%d feasible design points" % len(space))

    # 4. Pick from the power/latency trade-off.
    best = space.best_by_power()
    print("best by power:", best.label())
    print("  NoC dynamic power : %.1f mW" % best.power_mw)
    print("  average latency   : %.2f cycles" % best.avg_latency_cycles)
    print("  NoC area          : %.3f mm^2 (%.2f%% of SoC)" % (
        best.soc_power.noc_area_mm2,
        100 * best.soc_power.noc_area_fraction,
    ))
    print("  topology          :", best.topology.summary())

    out_dir = os.path.dirname(os.path.abspath(__file__))
    save_dot(best.topology, os.path.join(out_dir, "quickstart_topology.dot"))
    save_floorplan_svg(
        best.floorplan,
        os.path.join(out_dir, "quickstart_floorplan.svg"),
        best.topology,
    )
    print("\nwrote quickstart_topology.dot and quickstart_floorplan.svg")


if __name__ == "__main__":
    main()
