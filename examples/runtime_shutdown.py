"""Runtime shutdown: what a day of mode switches actually saves.

The static shutdown analysis (`examples/shutdown_savings.py`) weights
use cases by their time fraction and assumes every idle stretch is long
enough to gate.  This example replays an actual mode *sequence* — a
seeded-Markov day-in-the-life trace over the 26-core mobile SoC's
operating modes — through per-island power-state machines and compares
the standard gating policies:

* ``never``          — no shutdown (baseline);
* ``always_off``     — gate every idle island immediately;
* ``idle_timeout``   — gate after a fixed hold-off;
* ``ewma_predictor`` — causal: gate when an EWMA of past idle lengths
                       predicts the pause beats break-even;
* ``break_even``     — clairvoyant: gate only when the coming idle
                       interval beats the island's break-even time.

It then repeats the comparison on the VI-oblivious baseline topology
under a *certifiable* controller (islands crossed by third-party routes
pinned awake) — the runtime version of the paper's argument for
VI-aware synthesis.

Run:  python examples/runtime_shutdown.py
"""

from repro import SynthesisConfig, mobile_soc_26, synthesize
from repro.baseline.flat import synthesize_vi_oblivious
from repro.io.report import format_table, percent
from repro.power.leakage import statically_pinned_islands
from repro.runtime import (
    certified_policy_comparison,
    compare_policies,
    markov_trace,
    policy_comparison_rows,
)
from repro.soc.partitioning import logical_partitioning
from repro.soc.usecases import use_cases_for


def main() -> None:
    spec = logical_partitioning(mobile_soc_26(), 6)
    spec = spec.with_vi_assignment(spec.vi_assignment, name="d26_media")
    cases = use_cases_for(spec)
    trace = markov_trace(cases, n_segments=128, seed=7, mean_dwell_ms=40.0)
    print(
        "trace %s: %d segments, %.0f ms, %d mode transitions"
        % (trace.name, len(trace.segments), trace.total_ms, trace.num_transitions)
    )

    config = SynthesisConfig(max_intermediate=1)
    vi_aware = synthesize(spec, config=config).best_by_power()
    reports = compare_policies(vi_aware.topology, trace)
    print(
        format_table(
            policy_comparison_rows(list(reports.values())),
            title="VI-aware topology (no pinned islands, every idle island gateable)",
        )
    )
    best = reports["break_even"]
    print(
        format_table(
            best.island_rows(), title="per-island runtime under break_even"
        )
    )

    oblivious = synthesize_vi_oblivious(spec, config=config)
    pinned = sorted(statically_pinned_islands(oblivious.topology))
    obl_reports = certified_policy_comparison(oblivious.topology, trace)
    print(
        format_table(
            policy_comparison_rows(list(obl_reports.values())),
            title="VI-oblivious baseline, certified controller (islands %s pinned)"
            % ",".join(map(str, pinned)),
        )
    )

    aware_sav = best.savings_vs(reports["never"])
    obl_sav = obl_reports["break_even"].savings_vs(obl_reports["never"])
    print(
        "Over this trace the VI-aware NoC recovers %s of total energy; the "
        "VI-oblivious design, restricted to islands a sign-off flow can "
        "certify, recovers only %s." % (percent(aware_sav), percent(obl_sav))
    )


if __name__ == "__main__":
    main()
