"""Shutdown savings: the whole point of VI-aware synthesis.

Compares two NoCs for the same 26-core mobile SoC with 6 voltage
islands:

* **VI-aware** — synthesized by this library's Algorithm 1; no flow
  ever routes through a third island, so every idle island can be
  power-gated;
* **VI-oblivious** — a conventional min-power synthesis that ignores
  island boundaries (the paper's implicit baseline), whose routes pin
  idle islands awake.

For each operating mode of the phone (video playback, audio, camera,
standby, full load) the script reports which islands can be gated and
the resulting total-power savings, then the time-weighted summary —
the paper's ">= 25% reduction in overall system power".

Run:  python examples/shutdown_savings.py
"""

from repro import SynthesisConfig, mobile_soc_26, synthesize
from repro.baseline.checker import compare_shutdown_capability
from repro.baseline.flat import synthesize_vi_oblivious
from repro.io.report import format_table, percent
from repro.power.leakage import weighted_savings_fraction
from repro.soc.partitioning import logical_partitioning
from repro.soc.usecases import use_cases_for


def main() -> None:
    spec = logical_partitioning(mobile_soc_26(), 6)
    spec = spec.with_vi_assignment(spec.vi_assignment, name="d26_media")
    cases = use_cases_for(spec)

    config = SynthesisConfig(max_intermediate=1)
    vi_aware = synthesize(spec, config=config).best_by_power()
    vi_oblivious = synthesize_vi_oblivious(spec, config=config)

    reports = compare_shutdown_capability(
        vi_aware.topology, vi_oblivious.topology, cases
    )

    for label in ("vi_aware", "vi_oblivious"):
        rep = reports[label]
        rows = []
        for case in cases:
            sr = rep.shutdown_reports[case.name]
            rows.append(
                {
                    "use_case": case.name,
                    "time": percent(case.time_fraction),
                    "gated_islands": ",".join(map(str, sr.gated_islands)) or "-",
                    "blocked": ",".join(map(str, sr.blocked_islands)) or "-",
                    "power_mw": sr.power_gated_mw,
                    "savings": percent(sr.savings_fraction),
                }
            )
        weighted = weighted_savings_fraction(
            list(rep.shutdown_reports.values()), cases
        )
        print(
            format_table(
                rows,
                title="%s  (%d shutdown-safety violations, weighted savings %s)"
                % (label, len(rep.violations), percent(weighted)),
            )
        )

    aware_w = weighted_savings_fraction(
        list(reports["vi_aware"].shutdown_reports.values()), cases
    )
    print(
        "VI-aware synthesis turns a %.1f%% NoC power overhead into %s "
        "time-weighted total-power savings." % (3.0, percent(aware_w))
    )


if __name__ == "__main__":
    main()
