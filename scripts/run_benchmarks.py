#!/usr/bin/env python
"""Synthesis perf harness — emits the machine-readable BENCH_synthesis.json.

Runs the same scaling sweep as
``benchmarks/bench_runtime.py::test_runtime_scaling_with_core_count``
under a :class:`repro.perf.PerfRecorder`, plus three ablations:

* **kernel comparison** — the same sweep once per routing kernel
  (``scalar`` vs ``vector``), with per-kernel counters and
  ``allocation.<kernel>`` phase timers; the design points must be
  byte-identical on every spec (exit code) and the vector total has
  its own regression gate against the previous snapshot;
* **cache ablation** — one representative size synthesized with
  ``enable_caches`` on and off, asserting the chosen design points are
  identical (the fast path must not change results) and recording the
  speedup;
* **warm cache** — the scaling sweep run cold and warm against a
  throwaway content-addressed store (``repro.cache``): the warm pass
  must reproduce byte-identical design points (exit code) and its
  speedup over the cold pass is recorded per size;
* **worker scaling** — the same exploration sweep per worker count on
  a persistent :class:`repro.core.explore.ExplorationEngine` pool
  (cold and warm passes); parallel rows are explicitly skipped on
  single-CPU hosts, where they would only measure fork overhead.

The JSON is append-friendly for trend tracking: re-runs overwrite the
file, so commit it (or archive it) per milestone.  See
``docs/performance.md`` for the field-by-field reading guide.

Each run is also archived under ``benchmarks/history/`` (one JSON per
run, named by timestamp) and, once at least one earlier snapshot
exists, a regression gate compares the scaling-sweep total against the
most recent archived run: the harness exits nonzero when the current
run is slower by more than ``--gate-tolerance`` (wall-clock noise on
shared machines is real, so the default tolerance is generous).
``--no-archive`` / ``--no-gate`` opt out.

The runtime-shutdown section also records the causal EWMA policy's gap
to the break-even oracle and the trace-driven co-synthesis comparison
(static-power vs ``TraceEnergyObjective`` selection on d26 @ 4
islands, where the two are known to diverge — see docs/objectives.md).
The resilience section records the coverage-vs-overhead point of
k-spare protection on d26 under single-link faults (100% coverage at
the measured power overhead — see docs/resilience.md), with a
byte-identical-reruns determinism check folded into the exit code.
The control-plane section replays every live single-link scenario on
d26 through the closed-loop reconfiguration controller and records
recovery-time percentiles, the degraded-window energy delta, and the
deadlock-audit verdicts (see docs/control_plane.md); its determinism
and deadlock-freedom flags also participate in the exit code.
The observability section measures the span/metric instrumentation
overhead on the largest scaling size (gated at <2%), byte-compares the
Chrome-trace and JSON-lines exports of two identical traced runs
(durations excluded), and checks that a ``workers=2`` sweep merges
span streams from at least two distinct worker pids into one trace
(see docs/observability.md); all three flags participate in the exit
code, and ``--obs-trace PATH`` writes the merged Perfetto trace.
The streaming section gates the live event-bus overhead on the same
scaling size at <2% (same best-of-paired-windows method), checks that
the live JSONL feed of a ``workers=2`` sweep is byte-identical to the
post-hoc export of the same run once timing fields are stripped, and
re-runs the sweep for byte-identical determinism; ``--events-out PATH``
keeps the live feed (the CI artifact).

Usage::

    python scripts/run_benchmarks.py                      # full run
    python scripts/run_benchmarks.py --quick              # small sizes
    python scripts/run_benchmarks.py --keep 20            # bound history/
    python scripts/run_benchmarks.py --workers 4 \
        --baseline-seconds 42.0 --baseline-label "pre-PR2 @daed751"
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import dataclasses  # noqa: E402

from repro import SynthesisConfig, mobile_soc_26, synthesize  # noqa: E402
from repro.core.explore import ExplorationEngine  # noqa: E402
from repro.core.objective import TraceEnergyObjective  # noqa: E402
from repro.io.json_io import spare_plan_summary  # noqa: E402
from repro.resilience import analyze_model, protect_design_point  # noqa: E402
from repro.perf import PerfRecorder, recording  # noqa: E402
from repro.runtime import compare_policies, make_policy, markov_trace, simulate_trace  # noqa: E402
from repro.soc.generator import GeneratorConfig, generate_soc  # noqa: E402
from repro.soc.partitioning import (  # noqa: E402
    communication_partitioning,
    logical_partitioning,
)
from repro.soc.usecases import use_cases_for  # noqa: E402

#: Where per-run snapshots accumulate for cross-PR trend tracking.
HISTORY_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "benchmarks", "history"
)

#: Config mirroring benchmarks/bench_runtime.py's FAST sweep.
FAST = SynthesisConfig(max_intermediate=1)
#: Same knobs with every fast-path optimization disabled.
FAST_UNCACHED = SynthesisConfig(max_intermediate=1, enable_caches=False)


def _scaling_spec(n_cores: int):
    spec = generate_soc(
        GeneratorConfig(name="scale%d" % n_cores, num_cores=n_cores, num_groups=4, seed=7)
    )
    return communication_partitioning(spec, 4)


def point_signature(space) -> List[Dict[str, object]]:
    """Order-sensitive identity of every design point in a space."""
    return [
        {
            "label": p.label(),
            "noc_power_mw": round(p.power_mw, 9),
            "avg_latency_cycles": round(p.avg_latency_cycles, 9),
        }
        for p in space.points
    ]


def run_scaling(sizes: List[int], recorder: PerfRecorder) -> Dict[str, object]:
    """The cores-vs-seconds sweep, instrumented."""
    rows = []
    with recording(recorder):
        for n_cores in sizes:
            part = _scaling_spec(n_cores)
            t0 = time.perf_counter()
            space = synthesize(part, config=FAST)
            dt = time.perf_counter() - t0
            rows.append(
                {
                    "cores": n_cores,
                    "flows": len(part.flows),
                    "design_points": len(space),
                    "seconds": round(dt, 4),
                }
            )
            print("  %3d cores: %d design points in %.2fs" % (n_cores, len(space), dt))
    return {
        "rows": rows,
        "total_seconds": round(sum(r["seconds"] for r in rows), 4),
    }


def run_cache_ablation(n_cores: int) -> Dict[str, object]:
    """Cached vs uncached synthesis of one size; results must match."""
    part = _scaling_spec(n_cores)
    t0 = time.perf_counter()
    cached = synthesize(part, config=FAST)
    cached_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    uncached = synthesize(part, config=FAST_UNCACHED)
    uncached_s = time.perf_counter() - t0
    identical = point_signature(cached) == point_signature(uncached)
    if not identical:
        print("  WARNING: cached and uncached design points differ!", file=sys.stderr)
    print(
        "  %d cores: cached %.2fs, uncached %.2fs (%.2fx), identical=%s"
        % (n_cores, cached_s, uncached_s, uncached_s / max(cached_s, 1e-9), identical)
    )
    return {
        "cores": n_cores,
        "cached_seconds": round(cached_s, 4),
        "uncached_seconds": round(uncached_s, 4),
        "speedup": round(uncached_s / max(cached_s, 1e-9), 3),
        "identical_points": identical,
    }


def run_warm_cache(sizes: List[int]) -> Dict[str, object]:
    """Cold vs warm sweep against the content-addressed store.

    Runs the scaling sweep twice over one throwaway ``--cache-dir``:
    a cold pass that populates the store and a warm pass through a
    *fresh* :class:`CacheStore` (memory tier empty, every hit comes
    off disk).  The warm pass must reproduce byte-identical design
    points — ``identical_points`` participates in the harness exit
    code — and its speedup over the cold pass is the headline number
    of docs/caching.md.
    """
    import shutil
    import tempfile

    from repro.cache import CacheStore, caching  # noqa: E402

    tmpdir = tempfile.mkdtemp(prefix="repro-noc-bench-cache-")
    try:
        rows = []
        identical = True
        for n_cores in sizes:
            part = _scaling_spec(n_cores)
            cold_store = CacheStore.open(tmpdir)
            t0 = time.perf_counter()
            with caching(cold_store):
                cold_space = synthesize(part, config=FAST)
            cold_s = time.perf_counter() - t0
            warm_store = CacheStore.open(tmpdir)
            t0 = time.perf_counter()
            with caching(warm_store):
                warm_space = synthesize(part, config=FAST)
            warm_s = time.perf_counter() - t0
            same = point_signature(cold_space) == point_signature(warm_space)
            identical = identical and same
            if not same:
                print(
                    "  WARNING: warm rerun of %d cores differs from cold!" % n_cores,
                    file=sys.stderr,
                )
            rows.append(
                {
                    "cores": n_cores,
                    "cold_seconds": round(cold_s, 4),
                    "warm_seconds": round(warm_s, 4),
                    "speedup": round(cold_s / max(warm_s, 1e-9), 3),
                    "hits": warm_store.stats.hits,
                    "misses": warm_store.stats.misses,
                    "bytes_written": cold_store.stats.bytes_written,
                    "identical_points": same,
                }
            )
            print(
                "  %3d cores: cold %.2fs, warm %.2fs (%.2fx, %d hits), identical=%s"
                % (
                    n_cores,
                    cold_s,
                    warm_s,
                    cold_s / max(warm_s, 1e-9),
                    warm_store.stats.hits,
                    same,
                )
            )
        cold_total = sum(r["cold_seconds"] for r in rows)
        warm_total = sum(r["warm_seconds"] for r in rows)
        return {
            "rows": rows,
            "cold_total_seconds": round(cold_total, 4),
            "warm_total_seconds": round(warm_total, 4),
            "warm_speedup": round(cold_total / max(warm_total, 1e-9), 3),
            "identical_points": identical,
        }
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def run_kernel_comparison(sizes: List[int]) -> Dict[str, object]:
    """Scalar vs vector routing kernel over the scaling specs.

    Times the same sweep once per kernel under its own recorder, so the
    section carries per-kernel counters (shortcuts, vector frontier
    pops, scalar Dijkstra pops, edge evaluations) and the per-kernel
    ``allocation.<kernel>`` phase timers next to the wall-clock rows.
    Design points must be byte-identical between the kernels on *every*
    spec — ``identical_points`` participates in the harness exit code.
    """
    per_kernel: Dict[str, Dict[str, object]] = {}
    signatures: Dict[str, Dict[int, List[Dict[str, object]]]] = {}
    for kern in ("scalar", "vector"):
        cfg = dataclasses.replace(FAST, kernel=kern)
        rec = PerfRecorder()
        rows = []
        sigs: Dict[int, List[Dict[str, object]]] = {}
        with recording(rec):
            for n_cores in sizes:
                part = _scaling_spec(n_cores)
                t0 = time.perf_counter()
                space = synthesize(part, config=cfg)
                dt = time.perf_counter() - t0
                sigs[n_cores] = point_signature(space)
                rows.append(
                    {
                        "cores": n_cores,
                        "design_points": len(space),
                        "seconds": round(dt, 4),
                    }
                )
        total = sum(r["seconds"] for r in rows)
        wanted = (
            "direct_open_shortcuts",
            "vector_pops",
            "vector_edges",
            "dijkstra_pops",
            "edge_evals",
            "cost_cache_hits",
            "cost_cache_misses",
        )
        per_kernel[kern] = {
            "rows": rows,
            "total_seconds": round(total, 4),
            "counters": {k: rec.counters.get(k, 0) for k in wanted},
            "phase_seconds": {
                k: round(v, 4)
                for k, v in sorted(rec.phase_seconds.items())
                if k.startswith("allocation")
            },
        }
        signatures[kern] = sigs
        print(
            "  %-6s total %.3fs (shortcuts=%d, dijkstra_pops=%d, "
            "vector_pops=%d, edge_evals=%d)"
            % (
                kern,
                total,
                rec.counters.get("direct_open_shortcuts", 0),
                rec.counters.get("dijkstra_pops", 0),
                rec.counters.get("vector_pops", 0),
                rec.counters.get("edge_evals", 0),
            )
        )
    per_size_identical = {
        str(n): signatures["scalar"][n] == signatures["vector"][n] for n in sizes
    }
    identical = all(per_size_identical.values())
    if not identical:
        print(
            "  WARNING: scalar and vector kernels disagree on design points!",
            file=sys.stderr,
        )
    scalar_total = per_kernel["scalar"]["total_seconds"]
    vector_total = per_kernel["vector"]["total_seconds"]
    speedup = round(scalar_total / max(vector_total, 1e-9), 3)
    print("  vector vs scalar: %.2fx, identical_points=%s" % (speedup, identical))
    return {
        "sizes": sizes,
        "scalar": per_kernel["scalar"],
        "vector": per_kernel["vector"],
        "speedup": speedup,
        "identical_points": identical,
        "per_size_identical": per_size_identical,
    }


def run_worker_scaling(n_cores: int, workers: int) -> List[Dict[str, object]]:
    """The alpha sweep per worker count, on the persistent pool.

    Every row is measured twice on one engine: a cold pass that builds
    the worker pool (and warms the in-process caches for ``workers=1``)
    and a warm pass that reuses it — the warm figure is the one
    parallel speedups are judged by, since a long-lived engine pays the
    pool start-up once.  On single-CPU hosts the parallel rows are
    *skipped* and say so explicitly: timing process fan-out on one core
    only measures fork overhead, not the pool.
    """
    part = _scaling_spec(n_cores)
    alphas = [0.2, 0.4, 0.6, 0.8]
    cpus = os.cpu_count() or 1
    counts = {1, workers}
    if cpus >= 4:
        counts.add(4)
    out = []
    for w in sorted(counts):
        if w > 1 and cpus <= 1:
            reason = (
                "skipped: single-CPU host (os.cpu_count()=%d), parallel "
                "timing would only measure fork overhead" % cpus
            )
            print("  workers=%d: %s" % (w, reason))
            out.append(
                {
                    "workers": w,
                    "tasks": len(alphas),
                    "feasible": None,
                    "cold_seconds": None,
                    "seconds": None,
                    "skipped": reason,
                }
            )
            continue
        with ExplorationEngine(workers=w, config=FAST) as engine:
            t0 = time.perf_counter()
            records = engine.alpha_exploration(part, alphas)
            cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            records = engine.alpha_exploration(part, alphas)
            warm = time.perf_counter() - t0
        feasible = sum(1 for r in records if r.feasible)
        print(
            "  workers=%d: %d/%d feasible, cold %.2fs, warm %.2fs"
            % (w, feasible, len(records), cold, warm)
        )
        out.append(
            {
                "workers": w,
                "tasks": len(records),
                "feasible": feasible,
                "cold_seconds": round(cold, 4),
                "seconds": round(warm, 4),
            }
        )
    return out


def run_runtime_shutdown(
    n_segments: int = 96, seed: int = 11, mean_dwell_ms: float = 40.0
) -> Dict[str, object]:
    """Trace-driven policy comparison on d26 (bench_runtime_shutdown.py).

    Records per-policy trace energy and the break-even savings so the
    history snapshots track the runtime-shutdown number across PRs,
    next to the synthesis wall-clock.
    """
    spec = logical_partitioning(mobile_soc_26(), 6)
    spec = spec.with_vi_assignment(spec.vi_assignment, name="d26_media")
    trace = markov_trace(
        use_cases_for(spec),
        n_segments=n_segments,
        seed=seed,
        mean_dwell_ms=mean_dwell_ms,
    )
    t0 = time.perf_counter()
    best = synthesize(spec, config=FAST).best_by_power()
    reports = compare_policies(best.topology, trace)
    dt = time.perf_counter() - t0
    never = reports["never"]
    rows = [
        {
            "policy": name,
            "energy_mj": round(r.total_mj, 4),
            "gate_events": r.gate_events,
            "violations": len(r.violations),
            "savings_vs_never": round(r.savings_vs(never), 4),
        }
        for name, r in reports.items()
    ]
    for row in rows:
        print(
            "  %-22s %10.1f mJ  savings %5.1f%%  violations %d"
            % (
                row["policy"],
                row["energy_mj"],
                100.0 * row["savings_vs_never"],
                row["violations"],
            )
        )
    # Oracle gap of the causal EWMA predictor (ROADMAP follow-up).
    oracle_mj = reports["break_even"].total_mj
    ewma_mj = reports["ewma_predictor"].total_mj
    ewma_gap = {
        "ewma_mj": round(ewma_mj, 4),
        "oracle_mj": round(oracle_mj, 4),
        "gap_mj": round(ewma_mj - oracle_mj, 4),
        "gap_fraction": round((ewma_mj - oracle_mj) / oracle_mj, 6)
        if oracle_mj > 0
        else None,
    }
    print(
        "  ewma gap vs oracle: %.2f mJ (%.3f%%)"
        % (ewma_gap["gap_mj"], 100.0 * (ewma_gap["gap_fraction"] or 0.0))
    )
    return {
        "trace": {
            "name": trace.name,
            "segments": len(trace.segments),
            "total_ms": round(trace.total_ms, 1),
        },
        "policies": rows,
        "break_even_savings": next(
            (r["savings_vs_never"] for r in rows if r["policy"] == "break_even"),
            None,
        ),
        "ewma_gap": ewma_gap,
        "co_synthesis": run_cosynthesis(
            n_segments=n_segments, seed=seed, mean_dwell_ms=mean_dwell_ms
        ),
        "seconds": round(dt, 4),
    }


def run_cosynthesis(
    n_segments: int = 96, seed: int = 11, mean_dwell_ms: float = 40.0
) -> Dict[str, object]:
    """Trace-driven co-synthesis vs static selection on d26 @ 4 islands.

    Runs Algorithm 1 twice on the spec where the two objectives are
    known to diverge: once selecting by the static Figure-2 snapshot,
    once with :class:`TraceEnergyObjective` in the synthesis loop.  The
    co-synthesized point trades static mW for gating opportunity and
    must come out at or below the static choice in trace energy.
    """
    spec = logical_partitioning(mobile_soc_26(), 4)
    spec = spec.with_vi_assignment(spec.vi_assignment, name="d26_media")
    trace = markov_trace(
        use_cases_for(spec),
        n_segments=n_segments,
        seed=seed,
        mean_dwell_ms=mean_dwell_ms,
    )
    objective = TraceEnergyObjective(trace=trace)
    static_best = synthesize(spec, config=FAST).best_by_power()
    co_best = synthesize(
        spec, config=dataclasses.replace(FAST, objective=objective)
    ).best()
    policy = make_policy("break_even")

    def trace_mj(point) -> float:
        return simulate_trace(
            point.topology, trace, policy, check_routability=False
        ).total_mj

    static_mj, co_mj = trace_mj(static_best), trace_mj(co_best)
    out = {
        "islands": 4,
        "static_point": static_best.label(),
        "static_power_mw": round(static_best.power_mw, 4),
        "static_trace_mj": round(static_mj, 4),
        "cosynthesis_point": co_best.label(),
        "cosynthesis_power_mw": round(co_best.power_mw, 4),
        "cosynthesis_trace_mj": round(co_mj, 4),
        "trace_mj_saved": round(static_mj - co_mj, 4),
        "differs": static_best.label() != co_best.label(),
    }
    print(
        "  co-synthesis: static %s (%.1f mJ) vs trace-objective %s (%.1f mJ)"
        " differs=%s"
        % (
            out["static_point"],
            static_mj,
            out["cosynthesis_point"],
            co_mj,
            out["differs"],
        )
    )
    return out


def run_resilience(islands: int = 6, k: int = 1) -> Dict[str, object]:
    """Coverage-vs-overhead of k-spare protection on d26 (bench_resilience.py).

    Protects the best-power d26 point with k disjoint backup routes
    per flow and records single-link-failure coverage against the
    unprotected baseline, plus the measured power/wire/link overhead.
    The protection is run twice and compared byte-for-byte — the
    ``deterministic`` flag participates in the harness exit code.
    """
    from repro.soc.partitioning import logical_partitioning

    spec = logical_partitioning(mobile_soc_26(), islands)
    spec = spec.with_vi_assignment(spec.vi_assignment, name="d26_media")
    t0 = time.perf_counter()
    best = synthesize(spec, config=FAST).best_by_power()
    base_report = analyze_model(best.topology, "single_link")
    prot = protect_design_point(best, k=k)
    prot_report = analyze_model(prot.topology, "single_link", plan=prot.plan)
    again = protect_design_point(best, k=k)
    deterministic = json.dumps(
        spare_plan_summary(prot.plan), sort_keys=True
    ) == json.dumps(spare_plan_summary(again.plan), sort_keys=True)
    dt = time.perf_counter() - t0
    overhead_mw = prot.power_overhead_mw
    out = {
        "islands": islands,
        "fault_model": "single_link",
        "k": k,
        # The two analyses enumerate their own topology's links, so
        # the coverage denominators differ: spare links add scenarios.
        "unprotected_scenarios": base_report.num_scenarios,
        "protected_scenarios": prot_report.num_scenarios,
        "unprotected_coverage": round(base_report.coverage, 6),
        "unprotected_uncovered_flows": len(base_report.uncovered_flows),
        "protected_coverage": round(prot_report.coverage, 6),
        "protected_uncovered_flows": len(prot_report.uncovered_flows),
        "spare_links": prot.plan.links_opened,
        "reserved_mbps": round(prot.plan.total_reserved_mbps, 1),
        "base_power_mw": round(best.power_mw, 4),
        "protected_power_mw": round(prot.noc_power.fig2_dynamic_mw, 4),
        "power_overhead_mw": round(overhead_mw, 4),
        "power_overhead_fraction": round(overhead_mw / best.power_mw, 6)
        if best.power_mw > 0
        else None,
        "wire_overhead_mm": round(prot.wire_overhead_mm, 2),
        "deterministic": deterministic,
        "seconds": round(dt, 4),
    }
    print(
        "  unprotected %.1f%% -> k=%d protected %.1f%% coverage "
        "(%d spare links, +%.2f mW = %.1f%%, deterministic=%s)"
        % (
            100.0 * out["unprotected_coverage"],
            k,
            100.0 * out["protected_coverage"],
            out["spare_links"],
            out["power_overhead_mw"],
            100.0 * (out["power_overhead_fraction"] or 0.0),
            deterministic,
        )
    )
    return out


def _pct(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def run_control_plane(
    islands: int = 6, k: int = 1, max_scenarios: Optional[int] = None
) -> Dict[str, object]:
    """Closed-loop recovery timings on d26 (bench_control.py).

    Replays a Markov trace once per live single-link scenario with the
    reconfiguration controller driving detection, failover install and
    restore-to-primary, and records the recovery-time percentiles, the
    degraded-window energy delta, and the deadlock-audit verdicts.  One
    scenario is replayed twice and its full recovery timeline +
    telemetry stream compared byte-for-byte; the ``deterministic`` flag
    participates in the harness exit code.
    """
    from repro.control import ReconfigurationController  # noqa: E402
    from repro.io.json_io import control_summary  # noqa: E402
    from repro.resilience import (  # noqa: E402
        FaultEvent,
        enumerate_scenarios,
        route_affected,
    )
    from repro.soc.partitioning import logical_partitioning  # noqa: E402
    from repro.soc.usecases import use_cases_for  # noqa: E402

    spec = logical_partitioning(mobile_soc_26(), islands)
    spec = spec.with_vi_assignment(spec.vi_assignment, name="d26_media")
    t0 = time.perf_counter()
    best = synthesize(spec, config=FAST).best_by_power()
    prot = protect_design_point(best, k=k)
    topology = prot.topology
    trace = markov_trace(use_cases_for(spec), n_segments=48, seed=11)
    all_scenarios = enumerate_scenarios(topology, "single_link")
    live = [
        sc
        for sc in all_scenarios
        if any(route_affected(sc, topology, r) for r in topology.routes.values())
    ]
    measured = live[:max_scenarios] if max_scenarios else live
    if len(measured) < len(live):
        print(
            "  (quick mode: measuring %d of %d live scenarios)"
            % (len(measured), len(live))
        )
    controller = ReconfigurationController(topology, spare_plan=prot.plan)

    def replay(scenario):
        event = FaultEvent(
            scenario=scenario,
            start_ms=0.25 * trace.total_ms,
            end_ms=0.6 * trace.total_ms,
        )
        return simulate_trace(
            topology,
            trace,
            make_policy("break_even"),
            fault_events=[event],
            spare_plan=prot.plan,
            controller=controller,
        )

    recoveries_ms: List[float] = []
    delta_mj = 0.0
    lost_mbits = 0.0
    all_routable = True
    all_deadlock_free = True
    for sc in measured:
        report = replay(sc)
        all_routable = all_routable and report.routable
        all_deadlock_free = (
            all_deadlock_free and report.recoveries_deadlock_free
        )
        recoveries_ms.append(report.worst_recovery_ms)
        delta_mj += report.fault_delta_mj
        lost_mbits += report.lost_traffic_mbits
    deterministic = True
    if measured:
        fresh = ReconfigurationController(topology, spare_plan=prot.plan)
        a = json.dumps(control_summary(replay(measured[0])), sort_keys=True)
        controller = fresh
        b = json.dumps(control_summary(replay(measured[0])), sort_keys=True)
        deterministic = a == b
    dt = time.perf_counter() - t0
    ordered = sorted(recoveries_ms)
    out = {
        "islands": islands,
        "k": k,
        "fault_model": "single_link",
        "scenarios_total": len(all_scenarios),
        "scenarios_live": len(live),
        "scenarios_measured": len(measured),
        "recovery_ms_p50": round(_pct(ordered, 0.5), 6),
        "recovery_ms_p95": round(_pct(ordered, 0.95), 6),
        "recovery_ms_max": round(max(recoveries_ms, default=0.0), 6),
        "degraded_delta_mj": round(delta_mj, 6),
        "lost_traffic_mbits": round(lost_mbits, 6),
        "all_routable": all_routable,
        "all_deadlock_free": all_deadlock_free,
        "deterministic": deterministic,
        "seconds": round(dt, 4),
    }
    print(
        "  %d/%d live scenarios: recovery p50 %.4f / p95 %.4f / max %.4f ms, "
        "degraded delta %+.4f mJ (deadlock-free=%s, deterministic=%s)"
        % (
            len(measured),
            len(live),
            out["recovery_ms_p50"],
            out["recovery_ms_p95"],
            out["recovery_ms_max"],
            out["degraded_delta_mj"],
            all_deadlock_free,
            deterministic,
        )
    )
    return out


def run_observability(
    sizes: List[int],
    obs_trace_path: Optional[str] = None,
    reps: int = 5,
    merge_attempts: int = 3,
) -> Dict[str, object]:
    """Overhead, export determinism and cross-process merge checks.

    Three gates, all folded into the harness exit code:

    * **overhead_ok** — the largest scaling size is synthesized in
      ``reps`` adjacent window pairs: recorder-only (exactly what
      :func:`run_scaling` already runs under) vs recorder *plus* an
      active :class:`SpanRecorder` — i.e. the marginal cost of the
      span layer on top of the status-quo scaling bench.  Each pair
      yields an overhead fraction and the *minimum* pair must stay
      under 2%.  Shared single-CPU hosts show several percent of
      wall-clock noise between adjacent windows, which only ever
      inflates a pair — the min is the tightest available estimate of
      the tracing's intrinsic cost, and a span accidentally placed on
      a hot (per-edge) path blows past 2% in every pair;
    * **deterministic_exports** — two traced runs of the smallest size
      must export byte-identical Chrome-trace event sequences and
      JSON-lines logs with ``timing=False`` (span ids, order,
      attributes — everything but the measured durations);
    * **merged_worker_trace** — an alpha sweep on a ``workers=2`` pool
      under an active tracer must produce one merged trace whose
      ``task*`` streams carry at least two distinct worker pids (and
      whose merged perf counters are non-empty — the parallel-sweep
      counter-loss regression check).  A 2-worker pool on a loaded
      host can legitimately drain every task through one worker, so
      the check retries up to ``merge_attempts`` times.

    With ``obs_trace_path`` the merged multi-process trace is written
    as Perfetto-loadable ``trace_event`` JSON (timing included).
    """
    from repro.obs import (  # noqa: E402
        SpanRecorder,
        chrome_trace_events,
        chrome_trace_json,
        span_log_lines,
        tracing,
    )

    t_section = time.perf_counter()
    # --- instrumentation overhead (largest size, interleaved reps) ----
    # A single synthesize of even the largest sweep size runs in tens
    # of milliseconds, where scheduler noise dwarfs a 2% effect; each
    # timing sample therefore loops enough back-to-back calls to fill
    # ~0.25s, and the verdict is min-of-``reps`` interleaved samples.
    big = _scaling_spec(max(sizes))
    t0 = time.perf_counter()
    synthesize(big, config=FAST)  # warm-up; also sizes the inner loop
    single_s = time.perf_counter() - t0
    inner = max(1, int(round(0.25 / max(single_s, 1e-9))))
    fractions: List[float] = []
    plain_s = instr_s = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        with recording(PerfRecorder()):
            for _ in range(inner):
                synthesize(big, config=FAST)
        plain = (time.perf_counter() - t0) / inner
        t0 = time.perf_counter()
        with recording(PerfRecorder()), tracing(SpanRecorder()):
            for _ in range(inner):
                synthesize(big, config=FAST)
        instr = (time.perf_counter() - t0) / inner
        fractions.append((instr - plain) / plain if plain > 0 else 0.0)
        plain_s = min(plain_s, plain)
        instr_s = min(instr_s, instr)
    overhead_fraction = min(fractions)
    overhead_ok = overhead_fraction < 0.02
    print(
        "  overhead: recorder-only %.4fs vs recorder+tracer %.4fs "
        "(best pair %+.2f%%, gate <2%%) -> %s"
        % (
            plain_s,
            instr_s,
            100.0 * overhead_fraction,
            "PASS" if overhead_ok else "FAIL",
        )
    )

    # --- export determinism (two identical traced runs) ---------------
    small = _scaling_spec(min(sizes))
    exports: List[tuple] = []
    span_count = 0
    for _ in range(2):
        tracer = SpanRecorder()
        with tracing(tracer):
            synthesize(small, config=FAST)
        span_count = len(tracer.spans)
        exports.append(
            (
                json.dumps(chrome_trace_events(tracer, timing=False), sort_keys=True),
                "\n".join(span_log_lines(tracer, timing=False)),
            )
        )
    deterministic_exports = exports[0] == exports[1]
    if not deterministic_exports:
        print("  WARNING: traced reruns exported different event sequences!", file=sys.stderr)
    print(
        "  export determinism: %d spans/run, byte-identical=%s"
        % (span_count, deterministic_exports)
    )

    # --- cross-process merge (workers=2 sweep into one trace) ---------
    alphas = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
    worker_pids: set = set()
    task_spans = 0
    counters_merged = False
    merged_tracer: Optional[SpanRecorder] = None
    for attempt in range(merge_attempts):
        rec = PerfRecorder()
        tracer = SpanRecorder()
        with recording(rec), tracing(tracer):
            with ExplorationEngine(workers=2, config=FAST) as engine:
                engine.alpha_exploration(small, alphas)
        worker_pids = {
            pid for label, pid in tracer.process_meta.items() if label != "main"
        }
        task_spans = sum(1 for s in tracer.spans if s.process != "main")
        counters_merged = bool(rec.counters)
        merged_tracer = tracer
        if len(worker_pids) >= 2:
            break
        print(
            "  (attempt %d: one worker drained every task, retrying)"
            % (attempt + 1)
        )
    merged_worker_trace = (
        len(worker_pids) >= 2 and task_spans > 0 and counters_merged
    )
    print(
        "  merged worker trace: %d task spans from %d worker pid(s), "
        "counters_merged=%s -> %s"
        % (
            task_spans,
            len(worker_pids),
            counters_merged,
            "PASS" if merged_worker_trace else "FAIL",
        )
    )
    if obs_trace_path and merged_tracer is not None:
        with open(obs_trace_path, "w", encoding="utf-8") as f:
            f.write(chrome_trace_json(merged_tracer, timing=True))
            f.write("\n")
        print("  wrote Perfetto trace %s" % obs_trace_path)

    return {
        "overhead": {
            "cores": max(sizes),
            "reps": reps,
            "inner_loops": inner,
            "plain_seconds": round(plain_s, 6),
            "instrumented_seconds": round(instr_s, 6),
            "pair_fractions": [round(f, 6) for f in fractions],
            "fraction": round(overhead_fraction, 6),
        },
        "overhead_ok": overhead_ok,
        "spans_per_run": span_count,
        "deterministic_exports": deterministic_exports,
        "worker_pids": len(worker_pids),
        "task_spans": task_spans,
        "counters_merged": counters_merged,
        "merged_worker_trace": merged_worker_trace,
        "seconds": round(time.perf_counter() - t_section, 4),
    }


def run_streaming(
    sizes: List[int],
    events_path: Optional[str] = None,
    reps: int = 5,
) -> Dict[str, object]:
    """Streaming-bus overhead and live-vs-post-hoc agreement gates.

    Three gates, all folded into the harness exit code:

    * **overhead_ok** — the marginal cost of an active
      :class:`EventBus` *on top of* the recorder+tracer stack the span
      gate already prices: ``reps`` adjacent window pairs on the
      largest scaling size, minimum pair fraction under 2% (the same
      best-of-paired-windows method — see :func:`run_observability`
      for why the min is the right estimator on noisy hosts);
    * **live_matches_posthoc** — a ``workers=2`` alpha sweep streamed
      through a tail-able JSONL sink must, after canonical
      ``(process, seq)`` ordering and timing-stripping, serialize
      byte-identically to the post-hoc export of the in-memory capture
      of the *same* run — the live view and the archived view agree
      exactly;
    * **deterministic** — a second identical sweep produces the same
      canonical timing-stripped event lines byte for byte.

    With ``events_path`` the live JSONL feed of the first sweep is
    written there (the CI artifact); otherwise a scratch file is used.
    """
    import tempfile

    from repro.obs import (  # noqa: E402
        EventBus,
        JsonlSink,
        MemorySink,
        SpanRecorder,
        canonical_events,
        event_lines,
        read_events,
        streaming,
        tracing,
    )

    t_section = time.perf_counter()
    # --- bus overhead (largest size, interleaved window pairs) --------
    big = _scaling_spec(max(sizes))
    t0 = time.perf_counter()
    synthesize(big, config=FAST)  # warm-up; also sizes the inner loop
    single_s = time.perf_counter() - t0
    inner = max(1, int(round(0.25 / max(single_s, 1e-9))))
    fractions: List[float] = []
    plain_s = stream_s = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        with recording(PerfRecorder()), tracing(SpanRecorder()):
            for _ in range(inner):
                synthesize(big, config=FAST)
        plain = (time.perf_counter() - t0) / inner
        t0 = time.perf_counter()
        with recording(PerfRecorder()), tracing(SpanRecorder()), \
                streaming(EventBus()):
            for _ in range(inner):
                synthesize(big, config=FAST)
        streamed = (time.perf_counter() - t0) / inner
        fractions.append((streamed - plain) / plain if plain > 0 else 0.0)
        plain_s = min(plain_s, plain)
        stream_s = min(stream_s, streamed)
    overhead_fraction = min(fractions)
    overhead_ok = overhead_fraction < 0.02
    print(
        "  overhead: tracer-only %.4fs vs tracer+bus %.4fs "
        "(best pair %+.2f%%, gate <2%%) -> %s"
        % (
            plain_s,
            stream_s,
            100.0 * overhead_fraction,
            "PASS" if overhead_ok else "FAIL",
        )
    )

    # --- live JSONL vs post-hoc export (workers=2 sweep) --------------
    small = _scaling_spec(min(sizes))
    alphas = [0.2, 0.4, 0.6, 0.8]

    def sweep_stream(path: Optional[str]) -> list:
        capture = MemorySink()
        sinks: list = [capture]
        if path is not None:
            sinks.append(JsonlSink(path, timing=False))
        with streaming(EventBus(sinks=sinks)):
            with ExplorationEngine(workers=2, config=FAST) as engine:
                engine.alpha_exploration(small, alphas)
        return capture.events

    if events_path is None:
        fd, live_path = tempfile.mkstemp(suffix=".jsonl")
        os.close(fd)
    else:
        live_path = events_path
    captured = sweep_stream(live_path)
    live = event_lines(canonical_events(read_events(live_path)), timing=False)
    posthoc = event_lines(canonical_events(captured), timing=False)
    live_matches_posthoc = live == posthoc
    processes = sorted({e.process for e in captured})
    print(
        "  live vs post-hoc: %d events over %d process streams, "
        "byte-identical=%s -> %s"
        % (
            len(captured),
            len(processes),
            live_matches_posthoc,
            "PASS" if live_matches_posthoc else "FAIL",
        )
    )
    if events_path is not None:
        print("  wrote live event feed %s (%d lines)" % (events_path, len(live)))
    else:
        os.unlink(live_path)

    # --- rerun determinism --------------------------------------------
    second = sweep_stream(None)
    deterministic = posthoc == event_lines(canonical_events(second), timing=False)
    print(
        "  rerun determinism: %d vs %d events, byte-identical=%s -> %s"
        % (
            len(captured),
            len(second),
            deterministic,
            "PASS" if deterministic else "FAIL",
        )
    )

    return {
        "overhead": {
            "cores": max(sizes),
            "reps": reps,
            "inner_loops": inner,
            "plain_seconds": round(plain_s, 6),
            "streamed_seconds": round(stream_s, 6),
            "pair_fractions": [round(f, 6) for f in fractions],
            "fraction": round(overhead_fraction, 6),
        },
        "overhead_ok": overhead_ok,
        "events": len(captured),
        "process_streams": len(processes),
        "live_matches_posthoc": live_matches_posthoc,
        "deterministic": deterministic,
        "seconds": round(time.perf_counter() - t_section, 4),
    }


def previous_comparable_total(history_dir: str, sizes: List[int]) -> Optional[Dict[str, object]]:
    """Scaling total of the newest archived snapshot with these sizes.

    Feeds the ``speedup_vs_previous`` field: the improvement of this
    run over the last committed milestone, measured by the same harness
    on the same sweep shape.  Returns ``None`` when no comparable
    snapshot exists (fresh checkout, or a different ``--sizes``).
    """
    for path in reversed(history_snapshots(history_dir)):
        try:
            with open(path) as f:
                ref = json.load(f)
            ref_sizes = [r["cores"] for r in ref["runtime_scaling"]["rows"]]
            total = float(ref["runtime_scaling"]["total_seconds"])
        except (KeyError, TypeError, ValueError, OSError, json.JSONDecodeError):
            continue
        if ref_sizes == sizes:
            return {"path": os.path.basename(path), "total_seconds": total}
    return None


def archive_snapshot(result: Dict[str, object], history_dir: str) -> str:
    """Append this run to the history directory (one JSON per run)."""
    os.makedirs(history_dir, exist_ok=True)
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    path = os.path.join(history_dir, "BENCH_synthesis_%s.json" % stamp)
    # A same-second rerun must not overwrite the earlier snapshot.
    n = 1
    while os.path.exists(path):
        path = os.path.join(history_dir, "BENCH_synthesis_%s_%d.json" % (stamp, n))
        n += 1
    with open(path, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print("archived %s" % path)
    return path


def history_snapshots(history_dir: str) -> List[str]:
    """Archived snapshot paths, oldest first (timestamped names sort)."""
    return sorted(glob.glob(os.path.join(history_dir, "BENCH_synthesis_*.json")))


def _snapshot_sizes(path: str) -> Optional[tuple]:
    """The scaling-sweep core counts a snapshot recorded, or None."""
    try:
        with open(path) as f:
            data = json.load(f)
        return tuple(r["cores"] for r in data["runtime_scaling"]["rows"])
    except (KeyError, TypeError, ValueError, OSError, json.JSONDecodeError):
        return None


def prune_history(history_dir: str, keep: int) -> List[str]:
    """Delete old snapshots, retaining the newest ``keep``; returns removals.

    Runs after archiving, so the run just written is always retained
    and the history directory stops growing without bound on
    long-lived checkouts and CI runners.  The newest snapshot of each
    *sweep-size set* is additionally protected: it is the regression
    gate's only comparable baseline for that sweep shape, and a
    ``--quick`` run with a small ``--keep`` must not evict the
    full-size baseline the next full run gates against.
    """
    if keep < 1:
        raise ValueError("--keep must be >= 1, got %r" % keep)
    snapshots = history_snapshots(history_dir)
    retained = set(snapshots[-keep:])
    newest_by_sizes: Dict[tuple, str] = {}
    for path in snapshots:  # oldest first: later entries win
        sizes = _snapshot_sizes(path)
        if sizes is not None:
            newest_by_sizes[sizes] = path
    retained.update(newest_by_sizes.values())
    doomed = [p for p in snapshots if p not in retained]
    for path in doomed:
        os.remove(path)
        print("pruned %s" % path)
    return doomed


def check_regression(
    result: Dict[str, object], history_dir: str, tolerance: float
) -> bool:
    """Gate the scaling-sweep total against the previous snapshot.

    Returns True (pass) when no comparable earlier data point exists,
    or when ``current <= previous * tolerance``.  Machine noise makes
    tight timing gates flaky, so ``tolerance`` should stay generous;
    the point is catching order-of-magnitude slips, not 5% drifts.
    Runs *before* the current result is archived — a failing run must
    not become the next run's baseline.
    """
    previous = history_snapshots(history_dir)
    if not previous:
        print("regression gate: no earlier snapshot, nothing to compare")
        return True
    cur_total = float(result["runtime_scaling"]["total_seconds"])
    cur_sizes = [r["cores"] for r in result["runtime_scaling"]["rows"]]
    # Walk back to the newest *comparable* snapshot: a --quick run in
    # between (different sweep sizes) must not blind the gate.
    ref_total = None
    ref_path = ""
    for path in reversed(previous):
        try:
            with open(path) as f:
                ref = json.load(f)
            total = float(ref["runtime_scaling"]["total_seconds"])
            sizes = [r["cores"] for r in ref["runtime_scaling"]["rows"]]
        except (KeyError, TypeError, ValueError, OSError, json.JSONDecodeError):
            print("regression gate: %s is unreadable, skipping it" % path)
            continue
        if sizes != cur_sizes:
            print(
                "regression gate: %s used sizes %s (current %s), skipping it"
                % (os.path.basename(path), sizes, cur_sizes)
            )
            continue
        ref_total, ref_path = total, path
        break
    if ref_total is None:
        print("regression gate: no comparable earlier snapshot, nothing to compare")
        return True
    limit = ref_total * tolerance
    verdict = "PASS" if cur_total <= limit else "FAIL"
    print(
        "regression gate: %s — scaling total %.2fs vs %.2fs in %s (limit %.2fs)"
        % (verdict, cur_total, ref_total, os.path.basename(ref_path), limit)
    )
    ok = verdict == "PASS"

    # The kernel section gates too, once a snapshot carries one: the
    # vector kernel's own total must not regress, independently of the
    # aggregate sweep (which would hide a vector slip behind an
    # unrelated speedup elsewhere).
    try:
        with open(ref_path) as f:
            ref = json.load(f)
        ref_kernel = ref["kernel"]
        ref_vec = float(ref_kernel["vector"]["total_seconds"])
        ref_sizes = list(ref_kernel["sizes"])
        cur_kernel = result["kernel"]
        cur_vec = float(cur_kernel["vector"]["total_seconds"])
        cur_ksizes = list(cur_kernel["sizes"])
    except (KeyError, TypeError, ValueError, OSError, json.JSONDecodeError):
        print("regression gate: no comparable kernel section, skipping that check")
        return ok
    if ref_sizes != cur_ksizes:
        print(
            "regression gate: kernel section sizes differ (%s vs %s), skipping"
            % (ref_sizes, cur_ksizes)
        )
        return ok
    klimit = ref_vec * tolerance
    kverdict = "PASS" if cur_vec <= klimit else "FAIL"
    print(
        "regression gate: %s — vector kernel total %.2fs vs %.2fs (limit %.2fs)"
        % (kverdict, cur_vec, ref_vec, klimit)
    )
    return ok and kverdict == "PASS"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_synthesis.json"
        ),
        help="where to write the JSON record (default: repo root)",
    )
    parser.add_argument(
        "--sizes",
        default="10,20,30,40",
        help="comma-separated core counts for the scaling sweep",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=max(2, (os.cpu_count() or 2) // 2),
        help="pool size for the worker-scaling measurement",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small sizes only (CI smoke mode)"
    )
    parser.add_argument(
        "--baseline-seconds",
        type=float,
        default=None,
        help="scaling-sweep total of a reference build, for the speedup field",
    )
    parser.add_argument(
        "--baseline-label",
        default="baseline",
        help="where --baseline-seconds came from (commit, date, machine)",
    )
    parser.add_argument(
        "--history-dir",
        default=HISTORY_DIR,
        help="where per-run snapshots accumulate (default: benchmarks/history)",
    )
    parser.add_argument(
        "--no-archive",
        action="store_true",
        help="do not append this run to the history directory",
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="skip the regression gate against the previous snapshot",
    )
    parser.add_argument(
        "--gate-tolerance",
        type=float,
        default=1.5,
        help="gate fails when scaling total exceeds previous * tolerance",
    )
    parser.add_argument(
        "--keep",
        type=int,
        default=None,
        metavar="N",
        help="after archiving, retain only the newest N history snapshots",
    )
    parser.add_argument(
        "--obs-trace",
        default=None,
        metavar="PATH",
        help="write the merged multi-process Perfetto trace JSON here",
    )
    parser.add_argument(
        "--events-out",
        default=None,
        metavar="PATH",
        help="write the streamed live event JSONL of the workers=2 sweep here",
    )
    args = parser.parse_args(argv)
    if args.keep is not None and args.keep < 1:
        parser.error("--keep must be >= 1")

    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    if args.quick:
        sizes = [s for s in sizes if s <= 20] or sizes[:1]

    print("scaling sweep (cores=%s):" % sizes)
    recorder = PerfRecorder()
    scaling = run_scaling(sizes, recorder)
    previous = previous_comparable_total(args.history_dir, sizes)
    if previous is not None:
        scaling["previous_total_seconds"] = previous["total_seconds"]
        scaling["previous_snapshot"] = previous["path"]
        scaling["speedup_vs_previous"] = round(
            previous["total_seconds"] / max(scaling["total_seconds"], 1e-9), 3
        )
        print(
            "  vs previous snapshot %s: %.2fx"
            % (previous["path"], scaling["speedup_vs_previous"])
        )
    print("kernel comparison (scalar vs vector):")
    kernel = run_kernel_comparison(sizes)
    print("cache ablation:")
    ablation = run_cache_ablation(max(sizes))
    print("warm cache (content-addressed store, cold vs warm sweep):")
    warm_cache = run_warm_cache(sizes)
    print("worker scaling:")
    worker_rows = run_worker_scaling(min(sizes), args.workers)
    print("runtime shutdown (d26, markov trace):")
    runtime_shutdown = run_runtime_shutdown(
        n_segments=32 if args.quick else 96
    )
    print("resilience (d26, single-link faults, k=1 spares):")
    resilience = run_resilience()
    print("control plane (d26, closed-loop recovery, k=1 spares):")
    control_plane = run_control_plane(
        max_scenarios=4 if args.quick else None
    )
    print("observability (overhead, export determinism, merged worker trace):")
    observability = run_observability(sizes, obs_trace_path=args.obs_trace)
    print("streaming (bus overhead, live-vs-post-hoc, rerun determinism):")
    streaming_section = run_streaming(sizes, events_path=args.events_out)

    result: Dict[str, object] = {
        "meta": {
            "generated_unix": round(time.time(), 1),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "runtime_scaling": scaling,
        "counters": recorder.counters,
        "phase_seconds": {k: round(v, 4) for k, v in recorder.phase_seconds.items()},
        "kernel": kernel,
        "cache_ablation": ablation,
        "cache": warm_cache,
        "worker_scaling": worker_rows,
        "runtime_shutdown": runtime_shutdown,
        "resilience": resilience,
        "control_plane": control_plane,
        "observability": observability,
        "streaming": streaming_section,
    }
    if args.baseline_seconds is not None:
        result["baseline"] = {
            "label": args.baseline_label,
            "total_seconds": args.baseline_seconds,
            "speedup": round(
                args.baseline_seconds / max(scaling["total_seconds"], 1e-9), 3
            ),
        }

    out_path = os.path.abspath(args.output)
    with open(out_path, "w") as f:
        json.dump(result, f, indent=2, sort_keys=False)
        f.write("\n")
    print("wrote %s" % out_path)

    # Gate against the existing history first; only a passing run is
    # archived, so a regressed run can never ratchet the baseline up.
    gate_ok = True
    if not args.no_gate:
        gate_ok = check_regression(result, args.history_dir, args.gate_tolerance)
    if not args.no_archive:
        if gate_ok:
            archive_snapshot(result, args.history_dir)
            if args.keep is not None:
                prune_history(args.history_dir, args.keep)
        else:
            print("not archiving: regression gate failed")
    return 0 if (
        ablation["identical_points"]
        and warm_cache["identical_points"]
        and kernel["identical_points"]
        and gate_ok
        and resilience["deterministic"]
        and control_plane["deterministic"]
        and control_plane["all_deadlock_free"]
        and observability["overhead_ok"]
        and observability["deterministic_exports"]
        and observability["merged_worker_trace"]
        and streaming_section["overhead_ok"]
        and streaming_section["live_matches_posthoc"]
        and streaming_section["deterministic"]
    ) else 1


if __name__ == "__main__":
    sys.exit(main())
