"""Setup shim for environments without PEP 517 build isolation.

All real metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on machines without the ``wheel``
package (e.g. offline containers).
"""

from setuptools import setup

setup()
