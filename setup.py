"""Packaging for the DAC'09 NoC-synthesis reproduction.

The base install is dependency-free on purpose — every algorithm has a
pure-Python implementation, so the package works in offline containers
without build isolation (``pip install -e . --no-use-pep517``).

``numpy`` is an *optional* accelerator: ``pip install repro-noc[fast]``
enables the vector routing kernel's batched frontier
(:mod:`repro.core.kernel` degrades gracefully to flat-array Python
walks when it is absent, with byte-identical results).
"""

from setuptools import find_packages, setup

setup(
    name="repro-noc",
    version="1.0.0",
    description=(
        "Voltage-island-aware NoC topology synthesis (DAC'09 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[],
    extras_require={
        # Optional batched numerics for the vector routing kernel.
        "fast": ["numpy>=1.22"],
    },
    entry_points={"console_scripts": ["repro-noc=repro.cli:main"]},
)
