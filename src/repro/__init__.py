"""repro — voltage-island-aware NoC topology synthesis.

A production-quality reproduction of

    C. Seiculescu, S. Murali, L. Benini, G. De Micheli,
    "NoC Topology Synthesis for Supporting Shutdown of Voltage Islands
    in SoCs", Proc. DAC 2009.

Quick start::

    from repro import mobile_soc_26, synthesize, SynthesisConfig

    spec = mobile_soc_26()                       # 26-core mobile SoC
    space = synthesize(spec)                     # Algorithm 1
    best = space.best_by_power()
    print(best.label(), best.power_mw, "mW", best.avg_latency_cycles, "cycles")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from .core.design_point import DesignPoint, DesignSpace
from .core.explore import (
    ObjectiveSelector,
    RuntimeEnergySelector,
    SweepRecord,
    alpha_exploration,
    data_width_exploration,
    grid_exploration,
    island_count_exploration,
)
from .core.objective import (
    OBJECTIVE_NAMES,
    CompositeObjective,
    MultiTraceObjective,
    Objective,
    ObjectiveResult,
    StaticAreaObjective,
    StaticLatencyObjective,
    StaticPowerObjective,
    TraceEnergyObjective,
    WakeLatencyQoSObjective,
    WireLengthObjective,
    make_objective,
)
from .core.frequency import IslandPlan, plan_all_islands
from .core.partition import partition_graph
from .core.paths import AllocationResult, PathCostConfig, allocate_paths
from .core.spec import CoreSpec, SoCSpec, TrafficFlow, build_spec
from .core.synthesis import SynthesisConfig, synthesize
from .core.vcg import VCG, build_all_vcgs, build_global_vcg, build_vcg
from .arch.topology import INTERMEDIATE_ISLAND, Topology
from .arch.validate import audit_shutdown_safety, validate_topology
from .exceptions import (
    FloorplanError,
    InfeasibleError,
    PartitionError,
    ReproError,
    SpecError,
    SynthesisError,
    ValidationError,
)
from .floorplan.placer import Floorplan, FloorplanConfig, place
from .power.gating import GatingModel, break_even_time_ms, island_gating_cost
from .power.leakage import ShutdownReport, analyze_shutdown
from .power.library import DEFAULT_LIBRARY, NocLibrary
from .power.voltage import VoltageTable, voltage_aware_noc_power
from .power.noc_power import NocPower, compute_noc_power, noc_area_mm2
from .power.soc_power import SocPower, compute_soc_power
from .runtime import (
    RoutabilityViolation,
    RuntimeReport,
    UseCaseTrace,
    compare_policies,
    day_in_the_life_trace,
    make_policy,
    markov_trace,
    scripted_trace,
    simulate_trace,
)
from .control import (
    ControlLatencyModel,
    ReconfigurationController,
    RecoveryObjective,
    controlled_simulation_check,
)
from .resilience import (
    FAULT_MODEL_NAMES,
    CoverageReport,
    FaultEvent,
    FaultScenario,
    FitRates,
    ProtectionResult,
    ResilienceObjective,
    SparePathConfig,
    SparePlan,
    allocate_spare_paths,
    analyze_coverage,
    analyze_model,
    degraded_routes,
    enumerate_scenarios,
    protect_design_point,
)
from .sim.scenarios import UseCase, make_use_case, validate_scenario_set
from .sim.zero_load import LatencyReport, evaluate_latency
from .soc.benchmarks import benchmark_suite, mobile_soc_26
from .soc.partitioning import communication_partitioning, logical_partitioning

__version__ = "1.0.0"

__all__ = [
    "AllocationResult",
    "CoreSpec",
    "CoverageReport",
    "DEFAULT_LIBRARY",
    "ControlLatencyModel",
    "FAULT_MODEL_NAMES",
    "FaultEvent",
    "FaultScenario",
    "FitRates",
    "MultiTraceObjective",
    "ReconfigurationController",
    "RecoveryObjective",
    "controlled_simulation_check",
    "ProtectionResult",
    "ResilienceObjective",
    "SparePathConfig",
    "SparePlan",
    "StaticAreaObjective",
    "WireLengthObjective",
    "allocate_spare_paths",
    "analyze_coverage",
    "analyze_model",
    "degraded_routes",
    "enumerate_scenarios",
    "protect_design_point",
    "DesignPoint",
    "DesignSpace",
    "Floorplan",
    "FloorplanConfig",
    "FloorplanError",
    "GatingModel",
    "OBJECTIVE_NAMES",
    "CompositeObjective",
    "Objective",
    "ObjectiveResult",
    "ObjectiveSelector",
    "RuntimeEnergySelector",
    "StaticLatencyObjective",
    "StaticPowerObjective",
    "SweepRecord",
    "TraceEnergyObjective",
    "VoltageTable",
    "WakeLatencyQoSObjective",
    "alpha_exploration",
    "break_even_time_ms",
    "data_width_exploration",
    "grid_exploration",
    "island_count_exploration",
    "island_gating_cost",
    "make_objective",
    "voltage_aware_noc_power",
    "INTERMEDIATE_ISLAND",
    "InfeasibleError",
    "IslandPlan",
    "LatencyReport",
    "NocLibrary",
    "NocPower",
    "PartitionError",
    "PathCostConfig",
    "ReproError",
    "RoutabilityViolation",
    "RuntimeReport",
    "ShutdownReport",
    "SoCSpec",
    "SocPower",
    "SpecError",
    "SynthesisConfig",
    "SynthesisError",
    "Topology",
    "TrafficFlow",
    "UseCase",
    "UseCaseTrace",
    "VCG",
    "ValidationError",
    "allocate_paths",
    "analyze_shutdown",
    "audit_shutdown_safety",
    "benchmark_suite",
    "build_all_vcgs",
    "build_global_vcg",
    "build_spec",
    "build_vcg",
    "communication_partitioning",
    "compare_policies",
    "compute_noc_power",
    "compute_soc_power",
    "day_in_the_life_trace",
    "evaluate_latency",
    "logical_partitioning",
    "make_policy",
    "make_use_case",
    "markov_trace",
    "mobile_soc_26",
    "scripted_trace",
    "simulate_trace",
    "validate_scenario_set",
    "noc_area_mm2",
    "partition_graph",
    "place",
    "plan_all_islands",
    "synthesize",
    "validate_topology",
]
