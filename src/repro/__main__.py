"""``python -m repro`` — the ``repro-noc`` command line.

Lets the CLI run without installing console scripts (containers mount
the repo and set ``PYTHONPATH=src``)::

    python -m repro runtime --benchmark d26_media --policy break_even
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
