"""NoC architecture model and structural analyses.

Modules: the topology container (`topology`), route tables and channel
dependency graphs (`routing`), structural validation with the
shutdown-safety audit (`validate`) and CDG cycle remediation
(`deadlock`).
"""
