"""Deadlock remediation: break channel-dependency cycles by rerouting.

The synthesis flow's island-transition rule makes cross-island routes
acyclic by construction, and the test suite confirms every shipped
design point has an acyclic channel dependency graph (CDG).  Custom
cost functions or hand-edited topologies can still create intra-island
cycles, though — and a wormhole NoC with a cyclic CDG can deadlock
(Dally & Seitz).  The paper's backend flow [15] resolves this at path
computation time; this module provides the equivalent repair pass for
topologies built outside the standard flow:

1. find a CDG cycle (:func:`repro.arch.routing.find_cdg_cycle`);
2. pick the routed flow contributing the most dependencies on that
   cycle;
3. re-route it over existing links only, forbidding the cycle's
   critical dependency, with a shortest-path (latency) objective;
4. repeat until acyclic or no candidate remains.

Rerouting uses only existing links (no new hardware), so power changes
are second-order (path lengths may grow slightly).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import ValidationError
from .routing import channel_dependency_graph, find_cdg_cycle
from .topology import FlowKey, Topology, ni_id


def flows_on_cycle(topology: Topology, cycle: Sequence[int]) -> List[Tuple[FlowKey, int]]:
    """Flows inducing dependencies along ``cycle``, with their counts.

    Sorted by descending contribution so the repair loop targets the
    flow whose removal unlocks the most edges first.
    """
    cyc_edges: Set[Tuple[int, int]] = set(
        zip(cycle, list(cycle[1:]) + [cycle[0]])
    )
    counts: Dict[FlowKey, int] = {}
    for key, route in topology.routes.items():
        for a, b in zip(route.links, route.links[1:]):
            if (a, b) in cyc_edges:
                counts[key] = counts.get(key, 0) + 1
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))


def _reroute_on_existing_links(
    topology: Topology, flow_key: FlowKey, forbidden_pairs: Set[Tuple[int, int]]
) -> Optional[List[int]]:
    """Shortest existing-link route avoiding forbidden link pairs.

    Dijkstra over (link) states so consecutive-link constraints can be
    enforced; edge weights are the links' latency cycles.  Returns link
    ids or None.
    """
    from ..sim.zero_load import link_latency_cycles

    spec = topology.spec
    flow = spec.flow(*flow_key)
    src_ni, dst_ni = ni_id(flow.src), ni_id(flow.dst)
    # Outgoing existing links per component.
    out_links: Dict[str, List[int]] = {}
    for link in topology.links.values():
        out_links.setdefault(link.src, []).append(link.id)

    start_links = [
        lid for lid in out_links.get(src_ni, [])
        if topology.links[lid].residual_mbps + 1e-9 >= 0  # capacity freed later
    ]
    best: Dict[int, float] = {}
    heap: List[Tuple[float, int, Tuple[int, ...]]] = []
    for lid in start_links:
        cost = float(link_latency_cycles(topology, topology.links[lid]))
        heapq.heappush(heap, (cost, lid, (lid,)))
    while heap:
        cost, lid, path = heapq.heappop(heap)
        if lid in best and best[lid] <= cost:
            continue
        best[lid] = cost
        link = topology.links[lid]
        if link.dst == dst_ni:
            return list(path)
        for nxt in out_links.get(link.dst, []):
            if (lid, nxt) in forbidden_pairs:
                continue
            nxt_link = topology.links[nxt]
            if nxt_link.dst == src_ni:
                continue
            # Stay within the flow's allowed islands (shutdown safety).
            isl_a = spec.island_of(flow.src)
            isl_b = spec.island_of(flow.dst)
            from .topology import INTERMEDIATE_ISLAND

            if nxt_link.dst in topology.switches:
                if topology.switches[nxt_link.dst].island not in (
                    isl_a, isl_b, INTERMEDIATE_ISLAND,
                ):
                    continue
            step = float(link_latency_cycles(topology, nxt_link))
            if len(path) > 16:
                continue  # bail out on absurd paths
            heapq.heappush(heap, (cost + step, nxt, path + (nxt,)))
    return None


def break_deadlock_cycles(topology: Topology, max_iterations: int = 32) -> int:
    """Reroute flows until the CDG is acyclic.

    Returns the number of flows rerouted.  Raises
    :class:`ValidationError` if a cycle survives every candidate
    reroute (the topology then needs new links, which is a synthesis
    decision, not a repair).
    """
    rerouted = 0
    for _ in range(max_iterations):
        cycle = find_cdg_cycle(topology)
        if cycle is None:
            return rerouted
        cyc_edges = set(zip(cycle, list(cycle[1:]) + [cycle[0]]))
        candidates = flows_on_cycle(topology, cycle)
        if not candidates:
            raise ValidationError(
                "CDG cycle %s has no contributing routed flow" % (cycle,)
            )
        fixed = False
        for key, _count in candidates:
            flow = topology.spec.flow(*key)
            old_route = topology.routes[key]
            # Release the old route's bandwidth before searching.
            for lid in old_route.links:
                topology.links[lid].remove_flow(key)
            del topology.routes[key]
            new_links = _reroute_on_existing_links(topology, key, cyc_edges)
            if new_links is not None and _capacity_ok(topology, flow, new_links):
                topology.assign_route(flow, new_links)
                rerouted += 1
                fixed = True
                break
            # Restore the old route and try the next candidate.
            topology.assign_route(flow, list(old_route.links))
        if not fixed:
            raise ValidationError(
                "cannot break CDG cycle %s by rerouting on existing links" % (cycle,)
            )
    raise ValidationError("cycle breaking did not converge in %d iterations" % max_iterations)


def _capacity_ok(topology: Topology, flow, links: Sequence[int]) -> bool:
    return all(
        topology.links[lid].residual_mbps + 1e-9 >= flow.bandwidth_mbps
        for lid in links
    )
