"""Routing views: per-switch route tables and deadlock analysis.

Synthesized NoCs use static source routing along the paths chosen by
the allocator.  This module derives the artifacts an implementation
flow needs from the stored routes:

* **route tables** — for each switch, which output the packet of a
  given flow takes (what would be programmed into the routing logic);
* the **channel dependency graph (CDG)** — a directed graph over links
  where an edge ``l1 -> l2`` means some flow holds ``l1`` while
  requesting ``l2``.  Wormhole switching is deadlock-free iff the CDG
  is acyclic (Dally & Seitz); the paper's flow inherits this check from
  the [15] backend, so we expose it as a diagnostic.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..exceptions import ValidationError
from .topology import FlowKey, Route, Topology


def route_table(topology: Topology, switch_id: str) -> Dict[FlowKey, str]:
    """Output component per flow for one switch.

    Maps every flow whose route traverses ``switch_id`` to the next
    component (switch or NI) on its path.
    """
    if switch_id not in topology.switches:
        raise ValidationError("unknown switch %r" % switch_id)
    table: Dict[FlowKey, str] = {}
    for key, route in topology.routes.items():
        comps = route.components
        for i, comp in enumerate(comps[:-1]):
            if comp == switch_id:
                table[key] = comps[i + 1]
                break
    return table


def channel_dependency_graph(
    topology: Topology, routes: Optional[Mapping[FlowKey, Route]] = None
) -> Dict[int, Set[int]]:
    """CDG over link ids: ``l1 -> l2`` when a route uses l1 then l2.

    ``routes`` substitutes an alternative route set over the same link
    inventory — the resilience analysis passes the *degraded* routing
    of a failure scenario (primaries for unaffected flows, activated
    backups for rerouted ones) to prove post-failure deadlock freedom.
    Defaults to the topology's own routes.
    """
    route_map = topology.routes if routes is None else routes
    cdg: Dict[int, Set[int]] = {lid: set() for lid in topology.links}
    for route in route_map.values():
        for a, b in zip(route.links, route.links[1:]):
            cdg[a].add(b)
    return cdg


def find_cdg_cycle(
    topology: Topology, routes: Optional[Mapping[FlowKey, Route]] = None
) -> Optional[List[int]]:
    """Return one cycle of the CDG as a link-id list, or None.

    Iterative three-color DFS (graphs can be big enough that recursion
    depth matters).
    """
    cdg = channel_dependency_graph(topology, routes)
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {lid: WHITE for lid in cdg}
    parent: Dict[int, int] = {}
    for start in sorted(cdg):
        if color[start] != WHITE:
            continue
        stack: List[Tuple[int, List[int]]] = [(start, sorted(cdg[start]))]
        color[start] = GRAY
        while stack:
            node, nbrs = stack[-1]
            if nbrs:
                nxt = nbrs.pop(0)
                if color[nxt] == GRAY:
                    # Found a back edge: reconstruct the cycle.
                    cycle = [nxt]
                    cur = node
                    while cur != nxt:
                        cycle.append(cur)
                        cur = parent[cur]
                    cycle.reverse()
                    return cycle
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((nxt, sorted(cdg[nxt])))
            else:
                color[node] = BLACK
                stack.pop()
    return None


def is_deadlock_free(
    topology: Topology, routes: Optional[Mapping[FlowKey, Route]] = None
) -> bool:
    """True when the channel dependency graph is acyclic.

    Pass ``routes`` to check an alternative routing (e.g. a
    post-failure degraded route set) over the same links.
    """
    return find_cdg_cycle(topology, routes) is None


def flows_through_switch(topology: Topology, switch_id: str) -> List[FlowKey]:
    """Flows whose route traverses the given switch."""
    if switch_id not in topology.switches:
        raise ValidationError("unknown switch %r" % switch_id)
    out = []
    for key, route in topology.routes.items():
        if switch_id in route.components[1:-1]:
            out.append(key)
    return sorted(out)


def hop_histogram(topology: Topology) -> Dict[int, int]:
    """Distribution of switch counts over all routes (for reports)."""
    hist: Dict[int, int] = {}
    for route in topology.routes.values():
        n = route.num_switches
        hist[n] = hist.get(n, 0) + 1
    return dict(sorted(hist.items()))
