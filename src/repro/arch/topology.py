"""NoC architecture model: switches, NIs, links and topologies.

The synthesized artifact is a :class:`Topology`:

* every core gets a :class:`NetworkInterface` (NI) that converts the
  core's protocol and clock to the island NoC clock (Section 3.1);
* each voltage island contains one or more :class:`Switch` es, all
  clocked at the island frequency (locally synchronous);
* an optional *intermediate NoC island* — identified by
  :data:`INTERMEDIATE_ISLAND` — hosts indirect switches that are never
  shut down;
* :class:`Link` s connect NIs to switches and switches to switches.  A
  link whose endpoints sit in different islands carries an implicit
  bi-synchronous FIFO voltage/frequency converter, costing 4 cycles and
  extra power (Sections 3.1, 5).

The topology is built incrementally by the path allocator and then
consumed read-mostly by floorplanning, power analysis, validation,
simulation and export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.spec import SoCSpec, TrafficFlow
from ..exceptions import ValidationError
from ..power.library import NocLibrary

#: Island id of the intermediate (never-gated) NoC island.
INTERMEDIATE_ISLAND = -1

FlowKey = Tuple[str, str]


def switch_id(island: int, index: int) -> str:
    """Canonical switch component id, e.g. ``"sw2.1"`` or ``"swM.0"``."""
    tag = "M" if island == INTERMEDIATE_ISLAND else str(island)
    return "sw%s.%d" % (tag, index)


def ni_id(core_name: str) -> str:
    """Canonical NI component id for a core."""
    return "ni.%s" % core_name


@dataclass
class Switch:
    """A NoC switch (router) inside one island.

    Port counts are derived from the attached links and maintained by
    :class:`Topology`; ``size`` is ``max(n_in, n_out)`` — the quantity
    the crossbar timing model constrains.
    """

    id: str
    island: int
    freq_mhz: float
    n_in: int = 0
    n_out: int = 0

    @property
    def size(self) -> int:
        """Ports per direction as constrained by ``max_sw_size``."""
        return max(self.n_in, self.n_out)

    @property
    def is_intermediate(self) -> bool:
        """True for indirect switches in the intermediate NoC island."""
        return self.island == INTERMEDIATE_ISLAND


@dataclass
class NetworkInterface:
    """The NI attaching one core to its island's NoC."""

    id: str
    core: str
    island: int
    freq_mhz: float


@dataclass
class Link:
    """A unidirectional physical link between two NoC components.

    A link whose endpoints sit in different islands normally carries a
    bi-synchronous FIFO at the receiving end; ``has_converter`` can
    override that derivation for reinterpreted topologies (the
    VI-oblivious baseline labels islands post-hoc on a single-clock
    design that physically has no converters).  ``length_mm`` is filled
    in by the floorplanner (0.0 before placement).  ``flows`` lists the
    traffic routed over this link with its bandwidth so capacity and
    energy can be computed.
    """

    id: int
    src: str
    dst: str
    src_island: int
    dst_island: int
    freq_mhz: float
    capacity_mbps: float
    kind: str  # "ni2sw" | "sw2ni" | "sw2sw"
    length_mm: float = 0.0
    flows: List[Tuple[FlowKey, float]] = field(default_factory=list)
    #: None = derive from islands; True/False = explicit override.
    has_converter: Optional[bool] = None

    def __post_init__(self) -> None:
        # Used bandwidth is kept incrementally (the path allocator reads
        # residual capacity in its innermost loop; summing the flow list
        # on every probe dominated the old profile).  Mutate the flow
        # list only through add_flow/remove_flow so the cache stays true.
        self._used_mbps = sum(bw for _, bw in self.flows)

    def add_flow(self, key: FlowKey, bandwidth_mbps: float) -> None:
        """Charge ``bandwidth_mbps`` of flow ``key`` to this link."""
        self.flows.append((key, bandwidth_mbps))
        self._used_mbps += bandwidth_mbps

    def remove_flow(self, key: FlowKey) -> None:
        """Release every charge of flow ``key`` from this link."""
        kept = [(k, bw) for k, bw in self.flows if k != key]
        if len(kept) != len(self.flows):
            self.flows = kept
            self._used_mbps = sum(bw for _, bw in kept)

    @property
    def crosses_islands(self) -> bool:
        """True if the endpoints live in different voltage islands."""
        return self.src_island != self.dst_island

    @property
    def converter(self) -> bool:
        """True if a bi-synchronous FIFO sits on this link."""
        if self.has_converter is None:
            return self.crosses_islands
        return self.has_converter

    @property
    def used_mbps(self) -> float:
        """Bandwidth already routed over this link."""
        return self._used_mbps

    @property
    def residual_mbps(self) -> float:
        """Remaining capacity."""
        return self.capacity_mbps - self.used_mbps

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use (0..1)."""
        if self.capacity_mbps <= 0:
            return 0.0
        return self.used_mbps / self.capacity_mbps


@dataclass(frozen=True)
class Route:
    """The path of one traffic flow through the topology.

    ``components`` runs source NI, switches..., destination NI;
    ``links`` holds the link ids joining consecutive components.
    """

    flow: FlowKey
    components: Tuple[str, ...]
    links: Tuple[int, ...]

    @property
    def num_switches(self) -> int:
        """Number of switches on the path (components minus the two NIs)."""
        return len(self.components) - 2


class Topology:
    """A synthesized NoC: components, links and flow routes.

    Parameters
    ----------
    spec:
        The SoC specification this topology serves.
    library:
        Technology library used for capacities and (later) power.
    island_freqs:
        Clock of every island's NoC domain, including
        :data:`INTERMEDIATE_ISLAND` when an intermediate island exists.
    """

    def __init__(
        self,
        spec: SoCSpec,
        library: NocLibrary,
        island_freqs: Mapping[int, float],
    ) -> None:
        self.spec = spec
        self.library = library
        self.island_freqs: Dict[int, float] = dict(island_freqs)
        self.switches: Dict[str, Switch] = {}
        self.nis: Dict[str, NetworkInterface] = {}
        self.links: Dict[int, Link] = {}
        self.routes: Dict[FlowKey, Route] = {}
        self.core_switch: Dict[str, str] = {}
        self._next_link_id = 0
        # (src component, dst component) -> link ids, kept in insertion
        # order; lets the path allocator look up candidate links in O(1).
        self._links_by_pair: Dict[Tuple[str, str], List[int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_switch(self, island: int, index: int) -> Switch:
        """Create a switch in ``island`` clocked at the island frequency."""
        sid = switch_id(island, index)
        if sid in self.switches:
            raise ValidationError("duplicate switch id %r" % sid)
        if island not in self.island_freqs:
            raise ValidationError("no frequency planned for island %r" % island)
        sw = Switch(id=sid, island=island, freq_mhz=self.island_freqs[island])
        self.switches[sid] = sw
        return sw

    def attach_core(self, core_name: str, sw: Switch) -> NetworkInterface:
        """Attach a core to a switch through a new NI (two links).

        The NI lives in the core's island; attaching a core to a switch
        of a *different* island is rejected — Section 3.1 mandates that
        "cores in a VI are connected to switches in the same VI".
        """
        island = self.spec.island_of(core_name)
        if sw.island != island:
            raise ValidationError(
                "core %r (island %d) may not attach to switch %s (island %d)"
                % (core_name, island, sw.id, sw.island)
            )
        nid = ni_id(core_name)
        if nid in self.nis:
            raise ValidationError("core %r already attached" % core_name)
        ni = NetworkInterface(
            id=nid, core=core_name, island=island, freq_mhz=sw.freq_mhz
        )
        self.nis[nid] = ni
        self.core_switch[core_name] = sw.id
        self._add_link(nid, sw.id, island, sw.island, "ni2sw")
        self._add_link(sw.id, nid, sw.island, island, "sw2ni")
        return ni

    def open_link(self, src_sw: str, dst_sw: str) -> Link:
        """Open a new switch-to-switch link (possibly a parallel one)."""
        a = self.switches[src_sw]
        b = self.switches[dst_sw]
        return self._add_link(a.id, b.id, a.island, b.island, "sw2sw")

    def _add_link(self, src: str, dst: str, src_island: int, dst_island: int, kind: str) -> Link:
        freq = min(self.island_freqs[src_island], self.island_freqs[dst_island])
        link = Link(
            id=self._next_link_id,
            src=src,
            dst=dst,
            src_island=src_island,
            dst_island=dst_island,
            freq_mhz=freq,
            capacity_mbps=self.library.link_capacity_mbps(freq),
            kind=kind,
        )
        self.links[link.id] = link
        self._next_link_id += 1
        self._links_by_pair.setdefault((src, dst), []).append(link.id)
        # NI-side ports are implicit (an NI always has exactly 1 in and
        # 1 out); only switch port counts are tracked for the size bound.
        if kind == "sw2sw":
            self.switches[dst].n_in += 1
            self.switches[src].n_out += 1
        elif kind == "ni2sw":
            self.switches[dst].n_in += 1
        else:  # sw2ni
            self.switches[src].n_out += 1
        return link

    def assign_route(
        self, flow: TrafficFlow, links: Sequence[int], validate: bool = True
    ) -> Route:
        """Record the route of ``flow`` over the given link sequence.

        Verifies link continuity, endpoint correctness and capacity,
        then charges the flow's bandwidth to every link on the path.
        ``validate=False`` skips the checks for callers that construct
        routes correct by construction (the path allocator, whose every
        reuse/open decision already enforced capacity); the final
        :func:`repro.arch.validate.validate_topology` pass still audits
        the result.
        """
        if flow.key in self.routes:
            raise ValidationError("flow %s->%s already routed" % flow.key)
        if not links:
            raise ValidationError("empty route for flow %s->%s" % flow.key)
        all_links = self.links
        comps: List[str] = [all_links[links[0]].src]
        if validate:
            for lid in links:
                link = all_links[lid]
                if link.src != comps[-1]:
                    raise ValidationError(
                        "discontinuous route for flow %s->%s at link %d"
                        % (flow.src, flow.dst, lid)
                    )
                comps.append(link.dst)
            if comps[0] != ni_id(flow.src) or comps[-1] != ni_id(flow.dst):
                raise ValidationError(
                    "route for flow %s->%s does not join its NIs" % flow.key
                )
            for lid in links:
                link = all_links[lid]
                if link.residual_mbps < flow.bandwidth_mbps - 1e-9:
                    raise ValidationError(
                        "link %d over capacity for flow %s->%s" % (lid, flow.src, flow.dst)
                    )
        else:
            for lid in links:
                comps.append(all_links[lid].dst)
        key = flow.key
        bw = flow.bandwidth_mbps
        for lid in links:
            all_links[lid].add_flow(key, bw)
        route = Route(flow=key, components=tuple(comps), links=tuple(links))
        self.routes[key] = route
        return route

    def clone_scaffold(self) -> "Topology":
        """Structural copy of this topology for a fresh routing attempt.

        The synthesis sweep routes the *same* switch/NI scaffold many
        times (once per intermediate-switch count, once per port-reserve
        retry); rebuilding it through :meth:`add_switch` /
        :meth:`attach_core` re-validates spec invariants and re-derives
        link capacities every time.  The clone copies the already-built
        state instead — switches, NIs, links (with their flow charges),
        routes, pair index and id counter — preserving insertion order
        everywhere so a routing run on the clone is byte-identical to
        one on a freshly constructed topology.  ``spec`` and ``library``
        are immutable and shared; everything mutable is copied.
        """
        clone = Topology.__new__(Topology)
        clone.spec = self.spec
        clone.library = self.library
        clone.island_freqs = dict(self.island_freqs)
        # Components are copied via __new__ + __dict__ snapshot instead
        # of their dataclass constructors: field-by-field __init__ (plus
        # Link.__post_init__ re-summing the flow list) was the dominant
        # cost of cloning at benchmark scale.  Mutable per-instance
        # state (Switch port counts, Link flow charges) is what the
        # copy isolates; ids, islands and frequencies are write-once.
        sw_new = Switch.__new__
        clone.switches = {}
        for sid, sw in self.switches.items():
            c = sw_new(Switch)
            c.__dict__.update(sw.__dict__)
            clone.switches[sid] = c
        # NIs are write-once (no field changes after attach_core), so
        # clones share the objects and copy only the dict.
        clone.nis = dict(self.nis)
        link_new = Link.__new__
        clone.links = {}
        for lid, l in self.links.items():
            c = link_new(Link)
            c.__dict__.update(l.__dict__)
            c.flows = list(l.flows)
            clone.links[lid] = c
        clone.routes = dict(self.routes)  # Route is frozen; entries shareable
        clone.core_switch = dict(self.core_switch)
        clone._next_link_id = self._next_link_id
        clone._links_by_pair = {k: list(v) for k, v in self._links_by_pair.items()}
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def switch_of_core(self, core_name: str) -> Switch:
        """The switch a core's NI attaches to."""
        try:
            return self.switches[self.core_switch[core_name]]
        except KeyError:
            raise ValidationError("core %r is not attached to any switch" % core_name)

    def island_switches(self, island: int) -> List[Switch]:
        """Switches of one island, sorted by id."""
        return sorted(
            (s for s in self.switches.values() if s.island == island),
            key=lambda s: s.id,
        )

    @property
    def intermediate_switches(self) -> List[Switch]:
        """Indirect switches in the intermediate NoC island."""
        return self.island_switches(INTERMEDIATE_ISLAND)

    @property
    def has_intermediate_island(self) -> bool:
        """True when an intermediate NoC island was instantiated."""
        return bool(self.intermediate_switches)

    def sw_links(self) -> List[Link]:
        """All switch-to-switch links."""
        return [l for l in self.links.values() if l.kind == "sw2sw"]

    def links_between(self, src_sw: str, dst_sw: str) -> List[Link]:
        """Existing (possibly parallel) links from ``src_sw`` to ``dst_sw``."""
        ids = self._links_by_pair.get((src_sw, dst_sw), [])
        return [self.links[i] for i in ids if self.links[i].kind == "sw2sw"]

    def link_between(self, src: str, dst: str) -> Optional[Link]:
        """The first link from ``src`` to ``dst`` of any kind, if present."""
        ids = self._links_by_pair.get((src, dst), [])
        return self.links[ids[0]] if ids else None

    def num_converters(self) -> int:
        """Count of bi-synchronous FIFOs (one per island-crossing link)."""
        return sum(1 for l in self.links.values() if l.converter)

    def route_crossings(self, flow_key: FlowKey) -> int:
        """Island crossings (converter traversals) on a flow's route."""
        route = self.routes[flow_key]
        return sum(1 for lid in route.links if self.links[lid].crosses_islands)

    def route_switches(self, flow_key: FlowKey) -> List[Switch]:
        """Switch objects along a flow's route, in order."""
        route = self.routes[flow_key]
        return [self.switches[c] for c in route.components if c in self.switches]

    def islands_touched(self, flow_key: FlowKey) -> Set[int]:
        """Islands whose switches appear on a flow's route."""
        return {s.island for s in self.route_switches(flow_key)}

    def component_island(self, comp_id: str) -> int:
        """Island of any component id (switch or NI)."""
        if comp_id in self.switches:
            return self.switches[comp_id].island
        if comp_id in self.nis:
            return self.nis[comp_id].island
        raise ValidationError("unknown component %r" % comp_id)

    def summary(self) -> str:
        """One-line human description of the topology."""
        n_direct = len([s for s in self.switches.values() if not s.is_intermediate])
        n_mid = len(self.intermediate_switches)
        return (
            "%d switches (+%d intermediate), %d links (%d cross-island), %d flows routed"
            % (
                n_direct,
                n_mid,
                len(self.links),
                self.num_converters(),
                len(self.routes),
            )
        )
