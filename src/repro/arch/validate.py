"""Structural validation of synthesized topologies.

:func:`validate_topology` enforces the invariants every deliverable
topology must satisfy; :func:`audit_shutdown_safety` performs the check
that defines this paper — no traffic flow may route through a switch of
a third (gateable) voltage island — and is also run standalone against
baseline topologies to demonstrate *why* VI-oblivious synthesis blocks
island shutdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.spec import SoCSpec
from ..exceptions import ValidationError
from .topology import INTERMEDIATE_ISLAND, FlowKey, Topology


@dataclass(frozen=True)
class ShutdownViolation:
    """One flow crossing a third-party island's switch."""

    flow: FlowKey
    switch: str
    island: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "flow %s->%s traverses switch %s of third-party island %d" % (
            self.flow[0],
            self.flow[1],
            self.switch,
            self.island,
        )


def audit_shutdown_safety(topology: Topology) -> List[ShutdownViolation]:
    """Find every route that would block an island's shutdown.

    A flow from island *a* to island *b* may only traverse switches of
    *a*, *b* and the (never-gated) intermediate island.  Any other
    switch on its path pins a third island awake whenever this flow is
    live — the exact failure mode Section 1 describes for conventional
    NoC synthesis.
    """
    spec = topology.spec
    violations: List[ShutdownViolation] = []
    for key, route in sorted(topology.routes.items()):
        isl_a = spec.island_of(key[0])
        isl_b = spec.island_of(key[1])
        allowed = {isl_a, isl_b, INTERMEDIATE_ISLAND}
        for comp in route.components[1:-1]:
            sw = topology.switches[comp]
            if sw.island not in allowed:
                violations.append(
                    ShutdownViolation(flow=key, switch=comp, island=sw.island)
                )
    return violations


def validate_topology(
    topology: Topology,
    max_switch_sizes: Optional[Mapping[int, int]] = None,
    require_all_flows_routed: bool = True,
) -> None:
    """Raise :class:`ValidationError` on any broken invariant.

    Checks, in order:

    1. every core is attached to exactly one switch, in its own island;
    2. every spec flow has a route (unless disabled);
    3. routes are continuous NI-to-NI paths (re-verified here even
       though construction enforces it);
    4. no link carries more bandwidth than its capacity;
    5. switch port counts match the attached links and respect
       ``max_switch_sizes`` when given;
    6. shutdown safety: no third-party island on any route.
    """
    spec = topology.spec

    # 1. core attachment
    for core in spec.core_names:
        if core not in topology.core_switch:
            raise ValidationError("core %r is not attached to any switch" % core)
        sw = topology.switch_of_core(core)
        if sw.island != spec.island_of(core):
            raise ValidationError(
                "core %r attached across islands (%d vs %d)"
                % (core, sw.island, spec.island_of(core))
            )

    # 2. all flows routed
    if require_all_flows_routed:
        for flow in spec.flows:
            if flow.key not in topology.routes:
                raise ValidationError("flow %s->%s has no route" % flow.key)

    # 3. route continuity
    for key, route in topology.routes.items():
        comps = route.components
        for i, lid in enumerate(route.links):
            link = topology.links[lid]
            if link.src != comps[i] or link.dst != comps[i + 1]:
                raise ValidationError(
                    "flow %s->%s: link %d does not match components" % (key[0], key[1], lid)
                )

    # 4. link capacity — audit from the flow list itself, not the
    # incrementally maintained used_mbps cache, so the check also
    # catches callers that mutated ``flows`` behind the cache's back.
    for link in topology.links.values():
        used = sum(bw for _, bw in link.flows)
        if used > link.capacity_mbps + 1e-6:
            raise ValidationError(
                "link %d (%s->%s) overloaded: %.1f of %.1f MB/s"
                % (link.id, link.src, link.dst, used, link.capacity_mbps)
            )

    # 5. port bookkeeping and size bounds
    in_count: Dict[str, int] = {sid: 0 for sid in topology.switches}
    out_count: Dict[str, int] = {sid: 0 for sid in topology.switches}
    for link in topology.links.values():
        if link.dst in in_count:
            in_count[link.dst] += 1
        if link.src in out_count:
            out_count[link.src] += 1
    for sid, sw in topology.switches.items():
        if sw.n_in != in_count[sid] or sw.n_out != out_count[sid]:
            raise ValidationError(
                "switch %s: port bookkeeping mismatch (%d/%d vs %d/%d)"
                % (sid, sw.n_in, sw.n_out, in_count[sid], out_count[sid])
            )
        if max_switch_sizes is not None and sw.island in max_switch_sizes:
            bound = max_switch_sizes[sw.island]
            if sw.size > bound:
                raise ValidationError(
                    "switch %s exceeds max size %d (has %d)" % (sid, bound, sw.size)
                )

    # 6. shutdown safety
    violations = audit_shutdown_safety(topology)
    if violations:
        raise ValidationError(
            "shutdown-safety violated: %s (+%d more)"
            % (violations[0], len(violations) - 1)
        )
