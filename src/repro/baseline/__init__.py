"""The VI-oblivious comparator.

Modules: flat synthesis + island remapping (`flat`) and the shutdown
feasibility checker (`checker`) that demonstrates the paper's negative
result on it.
"""
