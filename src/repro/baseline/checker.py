"""Shutdown-feasibility checker for arbitrary topologies.

Answers the question the paper opens with: *given this NoC and this
use case, which voltage islands can actually be powered off?*  For
VI-aware topologies from :mod:`repro.core.synthesis` every idle island
is gateable; for the VI-oblivious baseline, live flows through
third-party switches pin idle islands awake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..arch.topology import Topology
from ..arch.validate import ShutdownViolation, audit_shutdown_safety
from ..power.leakage import ShutdownReport, analyze_shutdown, blocked_idle_islands
from ..sim.scenarios import UseCase


@dataclass(frozen=True)
class FeasibilityReport:
    """Shutdown capability of one topology across a scenario set."""

    topology_label: str
    #: Static audit: routes touching third-party islands.
    violations: Tuple[ShutdownViolation, ...]
    #: Per use case: (gateable islands, blocked idle islands).
    per_use_case: Mapping[str, Tuple[Tuple[int, ...], Tuple[int, ...]]]
    #: Per use case: full power accounting.
    shutdown_reports: Mapping[str, ShutdownReport]

    @property
    def is_shutdown_safe(self) -> bool:
        """True when the static audit found no violations."""
        return not self.violations

    def total_blocked(self) -> int:
        """Idle-island shutdown opportunities lost across all cases."""
        return sum(len(blocked) for _, blocked in self.per_use_case.values())

    def total_gated(self) -> int:
        """Idle islands actually gateable across all cases."""
        return sum(len(gated) for gated, _ in self.per_use_case.values())


def check_shutdown_feasibility(
    topology: Topology,
    use_cases: Sequence[UseCase],
    label: str = "",
    use_lengths: bool = True,
    policy: str = "static",
) -> FeasibilityReport:
    """Audit a topology and analyze shutdown over every use case.

    ``policy`` selects the gateability rule ("static" design-time
    guarantee, the default, or optimistic "dynamic"); see
    :func:`repro.power.leakage.blocked_idle_islands`.
    """
    violations = tuple(audit_shutdown_safety(topology))
    per_case: Dict[str, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
    reports: Dict[str, ShutdownReport] = {}
    for case in use_cases:
        case.validate_against(topology.spec)
        gateable, blocked = blocked_idle_islands(topology, case, policy)
        per_case[case.name] = (tuple(gateable), tuple(blocked))
        reports[case.name] = analyze_shutdown(
            topology, case, use_lengths=use_lengths, policy=policy
        )
    return FeasibilityReport(
        topology_label=label or topology.spec.name,
        violations=violations,
        per_use_case=per_case,
        shutdown_reports=reports,
    )


def compare_shutdown_capability(
    vi_aware: Topology,
    vi_oblivious: Topology,
    use_cases: Sequence[UseCase],
) -> Dict[str, FeasibilityReport]:
    """Side-by-side feasibility of the two design styles.

    Returns ``{"vi_aware": ..., "vi_oblivious": ...}``; the interesting
    contrast is ``total_gated`` / ``total_blocked`` and the resulting
    power savings in the shutdown reports.
    """
    return {
        "vi_aware": check_shutdown_feasibility(vi_aware, use_cases, "vi_aware"),
        "vi_oblivious": check_shutdown_feasibility(
            vi_oblivious, use_cases, "vi_oblivious"
        ),
    }
