"""VI-oblivious baseline synthesis.

This is the comparator the paper argues against (Section 1): a
conventional application-specific NoC synthesis flow that optimizes
power/latency while **ignoring voltage-island boundaries**.  Cores from
different islands freely share switches, and routes thread through
whatever switch is cheapest.

We reproduce it by running the *same* synthesis machinery with all
cores collapsed into one island (so clustering follows pure
communication affinity, exactly what [12]-[15]-style flows do), then
**remapping** the resulting topology onto the real island assignment:
every switch is labelled with the majority island of its attached
cores, NIs keep their core's island, and link crossing flags are
recomputed.  The structure and the routes are untouched — only the
island interpretation changes, which is precisely the situation of "a
NoC designed without VI awareness, deployed on a chip that has VIs".

The remapped topology is then handed to
:mod:`repro.baseline.checker` / :func:`repro.arch.validate.audit_shutdown_safety`,
which demonstrate the paper's negative result: idle islands are blocked
from shutting down because live flows route through their switches.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional

from ..arch.topology import Topology
from ..core.design_point import DesignPoint
from ..core.spec import SoCSpec
from ..core.synthesis import SynthesisConfig, synthesize
from ..exceptions import SynthesisError
from ..power.library import DEFAULT_LIBRARY, NocLibrary


def synthesize_vi_oblivious(
    spec: SoCSpec,
    library: NocLibrary = DEFAULT_LIBRARY,
    config: Optional[SynthesisConfig] = None,
) -> DesignPoint:
    """Best-power VI-oblivious design point for ``spec``.

    The returned design point's topology is remapped onto the spec's
    *actual* island assignment (see module docstring), so audits and
    leakage analyses see the real island structure.
    """
    flat_spec = spec.single_island()
    space = synthesize(flat_spec, library, config)
    best = space.best_by_power()
    remapped = remap_topology_islands(best.topology, spec)
    return DesignPoint(
        index=best.index,
        switch_counts=best.switch_counts,
        num_intermediate_requested=best.num_intermediate_requested,
        num_intermediate_used=best.num_intermediate_used,
        topology=remapped,
        floorplan=best.floorplan,
        wires=best.wires,
        noc_power=best.noc_power,
        soc_power=best.soc_power,
        latency=best.latency,
    )


def remap_topology_islands(topology: Topology, spec: SoCSpec) -> Topology:
    """Reinterpret a flat topology under ``spec``'s island assignment.

    Builds a structurally identical :class:`Topology` whose NIs carry
    their core's true island and whose switches carry the majority
    island of their attached cores (ties break toward the smallest
    island id, deterministically).  Routes, link endpoints, port counts
    and carried flows are copied as-is; link ``crosses_islands`` flags
    follow from the new labels.
    """
    if set(spec.core_names) != set(topology.spec.core_names):
        raise SynthesisError("spec/topology core mismatch in island remap")

    switch_island: Dict[str, int] = {}
    for sid, sw in topology.switches.items():
        votes = Counter()
        for core, attached in topology.core_switch.items():
            if attached == sid:
                votes[spec.island_of(core)] += 1
        if votes:
            top = max(votes.values())
            switch_island[sid] = min(isl for isl, v in votes.items() if v == top)
        else:
            switch_island[sid] = min(spec.islands)

    freqs = {isl: 0.0 for isl in spec.islands}
    # Every remapped island inherits the flat NoC's single clock; the
    # VI-oblivious design has one synchronous domain by construction.
    flat_freq = max(topology.island_freqs.values())
    for isl in freqs:
        freqs[isl] = flat_freq

    out = Topology(spec, topology.library, freqs)
    # Clone switches with remapped islands.
    for sid, sw in topology.switches.items():
        new_isl = switch_island[sid]
        clone = out.switches[sid] = type(sw)(
            id=sid, island=new_isl, freq_mhz=flat_freq, n_in=sw.n_in, n_out=sw.n_out
        )
        del clone  # stored; name only for clarity
    # Clone NIs with true core islands.
    for nid, ni in topology.nis.items():
        out.nis[nid] = type(ni)(
            id=nid,
            core=ni.core,
            island=spec.island_of(ni.core),
            freq_mhz=flat_freq,
        )
    out.core_switch = dict(topology.core_switch)
    # Clone links, recomputing island endpoints from the new labels.
    for lid, link in sorted(topology.links.items()):
        src_isl = switch_island.get(link.src, None)
        if src_isl is None:
            src_isl = out.nis[link.src].island
        dst_isl = switch_island.get(link.dst, None)
        if dst_isl is None:
            dst_isl = out.nis[link.dst].island
        out.links[lid] = type(link)(
            id=lid,
            src=link.src,
            dst=link.dst,
            src_island=src_isl,
            dst_island=dst_isl,
            freq_mhz=link.freq_mhz,
            capacity_mbps=link.capacity_mbps,
            kind=link.kind,
            length_mm=link.length_mm,
            flows=list(link.flows),
            # The flat design is one synchronous domain: links crossing
            # *label* boundaries carry no physical converter.
            has_converter=False,
        )
        out._links_by_pair.setdefault((link.src, link.dst), []).append(lid)
    out._next_link_id = topology._next_link_id
    out.routes = dict(topology.routes)
    return out
