"""Content-addressed synthesis cache (ROADMAP item 1, storage half).

Canonical hashing of the synthesis inputs (:mod:`repro.cache.keys`), a
two-tier memo store (:mod:`repro.cache.store`) and the active-store
context (:mod:`repro.cache.context`) that ``core/synthesis.py`` probes
at three granularities: full design spaces, island partitions and
per-candidate path allocations.  See ``docs/caching.md``.
"""

from .context import active_store, caching, set_store
from .keys import (
    SCHEMA_VERSION,
    allocation_base_key,
    allocation_context_key,
    allocation_key,
    canonical,
    design_space_key,
    fingerprint,
    partition_key,
    vcg_key,
)
from .signatures import (
    allocation_signature,
    design_space_signature,
    partition_signature,
)
from .store import CacheStats, CacheStore, DiskTier, MemoryTier, default_cache_dir

__all__ = [
    "SCHEMA_VERSION",
    "CacheStats",
    "CacheStore",
    "DiskTier",
    "MemoryTier",
    "active_store",
    "allocation_base_key",
    "allocation_context_key",
    "allocation_key",
    "allocation_signature",
    "caching",
    "canonical",
    "default_cache_dir",
    "design_space_key",
    "design_space_signature",
    "fingerprint",
    "partition_key",
    "partition_signature",
    "set_store",
    "vcg_key",
]
