"""Active-store context, mirroring ``repro.perf.recording`` / ``repro.obs.tracing``.

Synthesis probes :func:`active_store` at its cache points; installing a
store via :func:`caching` (or :func:`set_store` for long-lived
processes) turns memoization on for everything beneath it.  No store
installed means every path runs cold — the default, so library users
opt in explicitly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .store import CacheStore

_ACTIVE: Optional[CacheStore] = None


def active_store() -> Optional[CacheStore]:
    """The store synthesis cache points currently write through, if any."""
    return _ACTIVE


def set_store(store: Optional[CacheStore]) -> Optional[CacheStore]:
    """Install ``store`` as the active one; returns the previous store."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = store
    return previous


@contextmanager
def caching(store: CacheStore) -> Iterator[CacheStore]:
    """Scope ``store`` as the active cache for the enclosed block."""
    previous = set_store(store)
    try:
        yield store
    finally:
        set_store(previous)
