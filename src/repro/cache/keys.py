"""Canonical hashing for the content-addressed synthesis cache.

Every cache key is a sha256 over a *canonical form*: a nested
plain-data structure in which

* mappings and sets are order-insensitive (emitted as sorted pairs /
  sorted elements),
* sequences keep their order (synthesis results legitimately depend on
  core/flow declaration order — tiling order, float accumulation in the
  VCG — so a reordered sequence is a *different* problem),
* floats use their exact hexadecimal representation (``float.hex``), so
  ``0.1 + 0.2`` and ``0.3`` hash differently while equal values hash
  identically regardless of how they print,
* dataclasses are expanded field-by-field with fields sorted by name,
  making the hash independent of field declaration or constructor
  order, and
* every composite carries a type tag, so ``[1, 2]`` and ``(1, 2)`` and
  ``{1: 2}`` can never collide.

The digest input is prefixed with :data:`SCHEMA_VERSION` and the
running Python major.minor (pickled payloads are not portable across
interpreter versions, so keys are partitioned by it).  Bump
:data:`SCHEMA_VERSION` whenever canonicalization or any cached value's
serialized layout changes — old entries then simply miss.

Three key builders cover the cache granularities used by
``core/synthesis.py``:

``design_space_key``
    The full result of one synthesis run: spec + library + config
    (objective included).
``partition_key``
    One ``partition_graph`` call: nodes, symmetrized weights, part
    count, size bound, seed, method.  Objective-independent — objective
    re-runs hit this tier.
``allocation_key``
    One ``PathAllocator.allocate`` attempt for one candidate design
    point: spec + library + path-cost config + island plans +
    partitions + intermediate-switch count.  Routes for all island
    pairs interact through shared link capacities, so the sound
    cacheable unit is the whole allocation, which covers every
    island-pair routing plan of that candidate.  Also
    objective-independent.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sys
from typing import Any, Iterable, Mapping, Sequence, Set

from ..exceptions import CacheKeyError

#: Version tag mixed into every digest.  Bump on any change to the
#: canonical form or to the serialized layout of cached values.
SCHEMA_VERSION = 1

#: Config fields excluded from cache keys.  ``kernel`` selects between
#: byte-exact-parity implementations (pinned by
#: ``tests/test_kernel_parity.py``), so scalar and vector runs share
#: results.  ``enable_caches`` toggles in-run memo dicts that are
#: likewise parity-pinned by the ``cache_ablation`` bench section.
CONFIG_KEY_EXCLUDE = ("kernel", "enable_caches")


def canonical(obj: Any) -> Any:
    """Recursively normalize ``obj`` into a JSON-able canonical form.

    Raises :class:`CacheKeyError` for values with no stable
    content-addressed representation.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return ["f", obj.hex()]
    if isinstance(obj, bytes):
        return ["b", obj.hex()]
    # Objects may opt in with an explicit canonical() method (SoCSpec
    # does, to normalize vi_assignment order) — checked before the
    # generic dataclass walk so the override wins.
    method = getattr(obj, "canonical", None)
    if callable(method) and not isinstance(obj, type):
        return ["o", type(obj).__qualname__, canonical(method())]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = sorted(f.name for f in dataclasses.fields(obj) if f.init)
        return [
            "dc",
            type(obj).__qualname__,
            [[name, canonical(getattr(obj, name))] for name in fields],
        ]
    if isinstance(obj, Mapping):
        items = [[canonical(k), canonical(v)] for k, v in obj.items()]
        items.sort(key=lambda kv: _sort_token(kv[0]))
        return ["m", items]
    if isinstance(obj, (set, frozenset)):
        elems = sorted((canonical(e) for e in obj), key=_sort_token)
        return ["s", elems]
    if isinstance(obj, (list, tuple)):
        return ["l", [canonical(e) for e in obj]]
    # Callables (objective factories, policy functions) are addressed by
    # their import path — the code itself is versioned by the repo, and
    # SCHEMA_VERSION covers behavior changes that matter to the cache.
    qualname = getattr(obj, "__qualname__", None)
    module = getattr(obj, "__module__", None)
    if callable(obj) and qualname and module:
        return ["fn", module, qualname]
    raise CacheKeyError(
        "cannot canonicalize %r of type %s for cache keying"
        % (obj, type(obj).__qualname__)
    )


def _sort_token(canon: Any) -> str:
    """Deterministic total order over canonical forms of mixed types."""
    return json.dumps(canon, sort_keys=True, separators=(",", ":"))


def fingerprint(kind: str, *parts: Any) -> str:
    """sha256 hex digest of canonicalized ``parts`` under a ``kind`` tag."""
    payload = json.dumps(
        [
            "repro-noc-cache",
            SCHEMA_VERSION,
            "py%d.%d" % sys.version_info[:2],
            kind,
            [canonical(p) for p in parts],
        ],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _config_canonical(config: Any) -> Any:
    """Canonical form of a ``SynthesisConfig`` minus excluded fields."""
    if not dataclasses.is_dataclass(config) or isinstance(config, type):
        return canonical(config)
    fields = sorted(
        f.name
        for f in dataclasses.fields(config)
        if f.init and f.name not in CONFIG_KEY_EXCLUDE
    )
    return [
        "dc",
        type(config).__qualname__,
        [[name, canonical(getattr(config, name))] for name in fields],
    ]


def design_space_key(spec: Any, library: Any, config: Any) -> str:
    """Key for the full :class:`DesignSpace` of one synthesis run."""
    return fingerprint("space", spec, library, _config_canonical(config))


def vcg_key(nodes: Sequence[str], weights: Mapping[Any, float]) -> str:
    """Digest of one island's VCG (nodes in order, weights unordered).

    The VCG is invariant across the switch-count sweep, so callers
    hash it once per island and derive every :func:`partition_key`
    from the digest.
    """
    return fingerprint("vcg", list(nodes), dict(weights))


def partition_key(
    vcg_digest: str,
    k: int,
    max_part_size: int,
    seed: int,
    method: str,
) -> str:
    """Key for one ``partition_graph`` call (objective-independent)."""
    return fingerprint("partition", vcg_digest, k, max_part_size, seed, method)


def allocation_context_key(spec: Any, library: Any, cost_config: Any) -> str:
    """Digest of the allocation inputs shared by the whole sweep.

    Spec and library are by far the largest canonicalization inputs
    and never change between candidates; hashing them once per sweep
    keeps the cold-path overhead of the allocation tier small.
    """
    return fingerprint("alloc-ctx", spec, library, cost_config)


def allocation_base_key(
    context_digest: str,
    plans: Mapping[int, Any],
    partitions: Mapping[int, Sequence[Set[str]]],
) -> str:
    """Shared key prefix for one candidate's path allocations.

    ``context_digest`` comes from :func:`allocation_context_key`; the
    per-k keys derive from this digest via :func:`allocation_key`.

    ``partitions`` values are sequences of sets; part order is
    preserved (it determines switch numbering) while the sets
    themselves canonicalize order-insensitively.
    """
    canon_parts = {
        isl: [sorted(part) for part in parts] for isl, parts in partitions.items()
    }
    return fingerprint("allocation-base", context_digest, dict(plans), canon_parts)


def allocation_key(base_key: str, num_intermediate: int) -> str:
    """Key for one candidate's path allocation (objective-independent)."""
    return fingerprint("allocation", base_key, num_intermediate)
