"""Semantic signatures of cached values for ``verify_on_hit``.

Raw payload bytes are not a sound cross-process identity check: pickled
``set`` fields serialize in iteration order, which varies with the
interpreter hash seed.  Signatures instead digest a *canonical JSON
summary* of the decoded value — the same summaries the benchmark
identity gates compare — so a cold result stored by one process and a
verifying recompute in another agree exactly when the results are
byte-identical in every observable field.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def _digest(data: Any) -> str:
    return hashlib.sha256(
        json.dumps(data, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


def design_space_signature(space: Any) -> str:
    """Identity of a :class:`DesignSpace`: all point summaries + failures."""
    from ..io.json_io import design_point_summary

    return _digest(
        {
            "spec": space.spec_name,
            "points": [design_point_summary(p) for p in space.points],
            "failures": [
                [[list(pair) for pair in counts], k_mid, reason]
                for counts, k_mid, reason in space.failures
            ],
        }
    )


def allocation_signature(result: Any) -> str:
    """Identity of an :class:`AllocationResult` incl. the routed topology."""
    from ..io.json_io import topology_to_dict

    return _digest(
        {
            "success": result.success,
            "failed_flow": list(result.failed_flow) if result.failed_flow else None,
            "reason": result.reason,
            "links_opened": result.links_opened,
            "flows_via_intermediate": result.flows_via_intermediate,
            "topology": topology_to_dict(result.topology)
            if result.topology is not None
            else None,
        }
    )


def partition_signature(parts: Any) -> str:
    """Identity of a ``partition_graph`` result (part order preserved)."""
    return _digest([sorted(part) for part in parts])
