"""Multi-tier content-addressed memo store for synthesis results.

Two tiers behind one :class:`CacheStore` facade:

* an in-memory LRU over *serialized payload bytes* — deliberately not
  over live objects, so every hit deserializes a fresh copy and callers
  mutating their result (synthesis assigns wire lengths onto cached
  topologies) can never poison later hits;
* an on-disk tier of self-describing blobs under ``--cache-dir`` /
  ``$REPRO_CACHE_DIR`` / ``~/.cache/repro-noc``.  Writes go through a
  temp file + ``os.replace`` so readers never observe a partial entry;
  reads validate a sha256 over the payload and silently drop (and
  delete) anything corrupt — a damaged cache can only cause recompute,
  never a wrong result.

Blob layout (one file per entry, ``objects/<kk>/<key>.blob``)::

    {"magic": "repro-noc", "schema": 1, "key": ..., "kind": ...,
     "codec": "pickle", "sha256": ..., "size": ..., "sig": ...}\\n
    <payload bytes>

The single JSON header line carries the payload checksum plus a
*semantic signature* (``sig``) of the decoded value, which is what the
``verify_on_hit`` sampling mode compares against a fresh recompute —
signatures are canonical JSON digests, so they are stable across
processes even where raw pickle bytes are not (set iteration order
varies with the interpreter hash seed).
"""

from __future__ import annotations

import json
import os
import pickle
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from ..exceptions import CacheError
from ..perf.instrument import active_recorder
from .keys import SCHEMA_VERSION

_MAGIC = "repro-noc"
#: Protocol 4 is supported by every interpreter this repo targets;
#: pinning it keeps blob bytes stable across minor Python upgrades.
_PICKLE_PROTOCOL = 4


def default_cache_dir() -> Path:
    """Resolve the on-disk tier location.

    ``$REPRO_CACHE_DIR`` wins, then ``$XDG_CACHE_HOME/repro-noc``, then
    ``~/.cache/repro-noc``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-noc"


class CacheStats:
    """Flat event counters, mergeable across processes.

    Keys follow ``event[.tier][.kind]``, e.g. ``hits.memory.space``,
    ``misses.partition``, ``bytes_written.disk``.  Worker processes ship
    deltas (``snapshot`` before/after, :meth:`diff`) which the parent
    folds back in with :meth:`merge`.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _total(self, prefix: str) -> int:
        return sum(
            v for k, v in self.counters.items()
            if k == prefix or k.startswith(prefix + ".")
        )

    @property
    def hits(self) -> int:
        return self._total("hits")

    @property
    def misses(self) -> int:
        return self._total("misses")

    @property
    def evictions(self) -> int:
        return self._total("evictions")

    @property
    def bytes_written(self) -> int:
        return self._total("bytes_written")

    def snapshot(self) -> Dict[str, int]:
        return dict(self.counters)

    def diff(self, since: Dict[str, int]) -> Dict[str, int]:
        """Counters accumulated since a previous :meth:`snapshot`."""
        out: Dict[str, int] = {}
        for name, value in self.counters.items():
            delta = value - since.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def merge(self, delta: Dict[str, int]) -> None:
        for name, value in delta.items():
            self.incr(name, value)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bytes_written": self.bytes_written,
            "counters": dict(sorted(self.counters.items())),
        }


class MemoryTier:
    """Bounded LRU over payload bytes (not live objects)."""

    def __init__(self, max_bytes: int = 64 * 1024 * 1024, max_entries: int = 1024) -> None:
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Tuple[bytes, Dict[str, Any]]]" = OrderedDict()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        return self._bytes

    def get(self, key: str) -> Optional[Tuple[bytes, Dict[str, Any]]]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: str, payload: bytes, header: Dict[str, Any]) -> int:
        """Insert and return how many entries were evicted to make room."""
        if len(payload) > self.max_bytes:
            return 0
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= len(old[0])
        self._entries[key] = (payload, header)
        self._bytes += len(payload)
        evicted = 0
        while self._entries and (
            self._bytes > self.max_bytes or len(self._entries) > self.max_entries
        ):
            _, (dropped, _) = self._entries.popitem(last=False)
            self._bytes -= len(dropped)
            evicted += 1
        return evicted

    def remove(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._bytes -= len(entry[0])

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0


class DiskTier:
    """One blob file per entry, atomic writes, checksum-validated reads."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)

    def _objects_dir(self) -> Path:
        return self.directory / "objects"

    def path_for(self, key: str) -> Path:
        return self._objects_dir() / key[:2] / (key + ".blob")

    def get(self, key: str) -> Optional[Tuple[bytes, Dict[str, Any]]]:
        """Return ``(payload, header)`` or ``None``.

        Any malformed entry — unreadable, bad header, checksum or key
        mismatch, wrong schema — is deleted and reported as ``None``
        with :attr:`last_corrupt` set, so callers recompute.
        """
        self.last_corrupt = False
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        entry = self._parse(key, raw)
        if entry is None:
            self.last_corrupt = True
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return entry

    #: Set by :meth:`get`: the last miss was a corrupt entry, not absence.
    last_corrupt = False

    @staticmethod
    def _parse(key: str, raw: bytes) -> Optional[Tuple[bytes, Dict[str, Any]]]:
        newline = raw.find(b"\n")
        if newline < 0:
            return None
        try:
            header = json.loads(raw[:newline].decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None
        if not isinstance(header, dict) or header.get("magic") != _MAGIC:
            return None
        if header.get("schema") != SCHEMA_VERSION or header.get("key") != key:
            return None
        payload = raw[newline + 1:]
        if len(payload) != header.get("size"):
            return None
        import hashlib

        if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
            return None
        return payload, header

    def put(self, key: str, payload: bytes, header: Dict[str, Any]) -> int:
        """Atomically write one entry; returns bytes written."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + payload
        tmp = path.parent / (path.name + ".tmp%d" % os.getpid())
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise CacheError("cache write failed for %s: %s" % (path, exc))
        return len(blob)

    def iter_keys(self) -> Iterator[str]:
        root = self._objects_dir()
        if not root.is_dir():
            return
        for sub in sorted(root.iterdir()):
            if not sub.is_dir():
                continue
            for blob in sorted(sub.glob("*.blob")):
                yield blob.stem

    def entry_count(self) -> int:
        return sum(1 for _ in self.iter_keys())

    def total_bytes(self) -> int:
        return sum(
            self.path_for(k).stat().st_size
            for k in self.iter_keys()
            if self.path_for(k).exists()
        )

    def scan_headers(self) -> Iterator[Tuple[str, Optional[Dict[str, Any]]]]:
        """Yield ``(key, header-or-None)`` reading only each blob's first line."""
        for key in self.iter_keys():
            header: Optional[Dict[str, Any]] = None
            try:
                with open(self.path_for(key), "rb") as fh:
                    line = fh.readline()
                parsed = json.loads(line.decode("utf-8"))
                if isinstance(parsed, dict) and parsed.get("magic") == _MAGIC:
                    header = parsed
            except (OSError, UnicodeDecodeError, ValueError):
                header = None
            yield key, header

    def verify(self, remove: bool = False) -> Dict[str, Any]:
        """Re-hash every stored blob; report (and optionally delete) bad ones.

        *Corrupt* entries fail structurally (unreadable, bad header,
        checksum mismatch); *stale* entries are well-formed but written
        under a different schema version or filed under the wrong key —
        unusable by the current code, harmless on disk.
        """
        checked = 0
        corrupt = []
        stale = []
        kinds: Dict[str, int] = {}
        for key in list(self.iter_keys()):
            checked += 1
            path = self.path_for(key)
            entry = None
            header: Optional[Dict[str, Any]] = None
            try:
                raw = path.read_bytes()
            except OSError:
                raw = None
            if raw is not None:
                newline = raw.find(b"\n")
                if newline >= 0:
                    try:
                        parsed = json.loads(raw[:newline].decode("utf-8"))
                        if isinstance(parsed, dict) and parsed.get("magic") == _MAGIC:
                            header = parsed
                    except (UnicodeDecodeError, ValueError):
                        header = None
                entry = self._parse(key, raw) if raw is not None else None
            if entry is not None:
                kind = str(entry[1].get("kind", "?"))
                kinds[kind] = kinds.get(kind, 0) + 1
                continue
            is_stale = header is not None and (
                header.get("schema") != SCHEMA_VERSION or header.get("key") != key
            )
            (stale if is_stale else corrupt).append(key)
            if remove:
                try:
                    path.unlink()
                except OSError:
                    pass
        return {
            "checked": checked,
            "ok": checked - len(corrupt) - len(stale),
            "corrupt": corrupt,
            "stale": stale,
            "removed": (len(corrupt) + len(stale)) if remove else 0,
            "kinds": dict(sorted(kinds.items())),
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in list(self.iter_keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed


class CacheStore:
    """Facade over the memory + disk tiers with hit/miss accounting.

    ``verify_every=N`` arms the sampling verifier: every Nth hit (a
    deterministic counter, not randomness — reruns sample the same
    hits) reports ``verify=True`` to the caller, which recomputes and
    compares semantic signatures via :meth:`check_signature`.

    Pickling a store (pool ``initargs`` on spawn platforms) drops the
    memory-tier contents — workers either share the parent's warm tier
    through fork or start cold against the same disk tier.
    """

    def __init__(
        self,
        directory: Optional[Path] = None,
        *,
        max_memory_bytes: int = 64 * 1024 * 1024,
        max_memory_entries: int = 1024,
        verify_every: int = 0,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.memory = MemoryTier(max_memory_bytes, max_memory_entries)
        self.disk = DiskTier(self.directory) if self.directory is not None else None
        self.verify_every = verify_every
        self.stats = CacheStats()
        self._hit_seq = 0

    @classmethod
    def open(cls, directory: Optional[Any] = None, **kwargs: Any) -> "CacheStore":
        """Store backed by ``directory`` (default: :func:`default_cache_dir`)."""
        return cls(Path(directory) if directory else default_cache_dir(), **kwargs)

    @classmethod
    def in_memory(cls, **kwargs: Any) -> "CacheStore":
        """Process-local store with no disk tier (tests, one-shot runs)."""
        return cls(None, **kwargs)

    # -- raw byte interface -------------------------------------------------

    def get_entry(self, key: str, kind: str) -> Optional[Tuple[bytes, Dict[str, Any]]]:
        entry = self.memory.get(key)
        if entry is not None:
            self._record_hit("memory", kind)
            return entry
        if self.disk is not None:
            entry = self.disk.get(key)
            if self.disk.last_corrupt:
                self.stats.incr("corrupt.disk")
            if entry is not None:
                payload, header = entry
                self.stats.incr("bytes_read.disk", len(payload))
                evicted = self.memory.put(key, payload, header)
                if evicted:
                    self.stats.incr("evictions.memory", evicted)
                self._record_hit("disk", kind)
                return entry
        self.stats.incr("misses.%s" % kind)
        rec = active_recorder()
        if rec is not None:
            rec.count("cache_misses")
        return None

    def put_entry(
        self, key: str, payload: bytes, kind: str, codec: str, sig: str
    ) -> Dict[str, Any]:
        import hashlib

        header = {
            "magic": _MAGIC,
            "schema": SCHEMA_VERSION,
            "key": key,
            "kind": kind,
            "codec": codec,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "size": len(payload),
            "sig": sig,
        }
        evicted = self.memory.put(key, payload, header)
        if evicted:
            self.stats.incr("evictions.memory", evicted)
        if self.disk is not None:
            written = self.disk.put(key, payload, header)
            self.stats.incr("bytes_written.disk", written)
        self.stats.incr("puts.%s" % kind)
        return header

    def _record_hit(self, tier: str, kind: str) -> None:
        self.stats.incr("hits.%s.%s" % (tier, kind))
        self._hit_seq += 1
        rec = active_recorder()
        if rec is not None:
            rec.count("cache_hits")

    # -- object interface ---------------------------------------------------

    def get_object(self, key: str, kind: str) -> Optional[Tuple[Any, Dict[str, Any]]]:
        """Decode a fresh copy of the cached value, or ``None`` on miss."""
        entry = self.get_entry(key, kind)
        if entry is None:
            return None
        payload, header = entry
        codec = header.get("codec", "pickle")
        try:
            if codec == "json":
                value = json.loads(payload.decode("utf-8"))
            else:
                value = pickle.loads(payload)
        except Exception:
            # Decode failure past the checksum: schema drift within the
            # same SCHEMA_VERSION.  Treat as a corrupt miss.
            self.stats.incr("corrupt.decode")
            self.drop(key)
            self.stats.incr("misses.%s" % kind)
            return None
        return value, header

    def put_object(
        self, key: str, value: Any, kind: str, sig: str, codec: str = "pickle"
    ) -> bytes:
        if codec == "json":
            payload = json.dumps(value, sort_keys=True, separators=(",", ":")).encode("utf-8")
        else:
            payload = pickle.dumps(value, protocol=_PICKLE_PROTOCOL)
        self.put_entry(key, payload, kind, codec, sig)
        return payload

    def drop(self, key: str) -> None:
        self.memory.remove(key)
        if self.disk is not None:
            path = self.disk.path_for(key)
            try:
                path.unlink()
            except OSError:
                pass

    # -- verification -------------------------------------------------------

    def should_verify(self) -> bool:
        """Deterministic every-Nth-hit sampling for ``verify_on_hit``."""
        return self.verify_every > 0 and self._hit_seq % self.verify_every == 0

    def check_signature(self, header: Dict[str, Any], fresh_sig: str, what: str) -> None:
        """Compare a stored entry's signature against a recompute."""
        from ..exceptions import CacheCorruptionError

        self.stats.incr("verify_runs")
        if header.get("sig") != fresh_sig:
            self.stats.incr("verify_mismatches")
            raise CacheCorruptionError(
                "verify_on_hit mismatch for %s: cached sig %s != recomputed %s"
                % (what, header.get("sig"), fresh_sig)
            )

    def record_key_error(self) -> None:
        self.stats.incr("key_errors")

    # -- pool plumbing ------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        # Memory contents don't travel: fork shares them by inheritance,
        # spawn workers rebuild from disk.
        tier = state["memory"]
        state["memory"] = MemoryTier(tier.max_bytes, tier.max_entries)
        state["stats"] = CacheStats()
        return state
