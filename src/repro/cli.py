"""Command-line interface: ``repro-noc``.

Subcommands
-----------

``list``
    Show the built-in SoC benchmarks.
``synth``
    Synthesize one benchmark at a given island count and partitioning
    strategy; print the design space and optionally export the best
    design point (DOT topology, SVG floorplan, JSON).
``sweep``
    Island-count sweep over both partitioning strategies (the data
    behind Figures 2 and 3), as a table or CSV.  Both ``synth`` and
    ``sweep`` take ``--objective`` to select/synthesize under a
    pluggable cost model (static power/latency, trace energy,
    wake-latency QoS — see docs/objectives.md).
``shutdown``
    Shutdown-capability comparison: VI-aware vs VI-oblivious baseline
    across the benchmark's use cases (the leakage-savings story).
``runtime``
    Trace-driven runtime shutdown simulation: replay a seeded-Markov
    (or day-in-the-life) use-case trace through per-island power-state
    machines under all standard gating policies and report energy over
    time, wake events, stalls and routability violations (see
    docs/runtime.md).
``resilience``
    Fault coverage of the k-spare-protected design vs the unprotected
    baseline under a chosen fault model (single/double link, switch,
    island), with the measured power overhead of protection (see
    docs/resilience.md).  ``--availability`` adds the FIT-rate-weighted
    expected-availability analysis.
``control``
    Closed-loop fault recovery: inject one fault scenario into a
    runtime trace and let the reconfiguration controller detect it,
    fail affected flows over, and restore primaries on repair — with
    the staged recovery timeline and telemetry stream printed (see
    docs/control_plane.md).
``obs``
    Observability dashboard over a traced, controlled replay: span
    phase breakdown, controller recovery timeline, island-state Gantt
    rows and top-N counters, with Chrome-trace / JSON-lines /
    Prometheus exports (see docs/observability.md).
``cache``
    Inspect the content-addressed synthesis cache: ``stats`` (entry
    counts and bytes by kind), ``clear``, ``verify`` (re-hash every
    blob, report corrupt/stale entries; ``--remove`` deletes them).
    ``synth``, ``sweep`` and ``obs`` take ``--cache-dir`` to run
    against a store (see docs/caching.md).

Examples::

    repro-noc list
    repro-noc synth d26_media --islands 6 --strategy logical --dot topo.dot
    repro-noc sweep d26_media --counts 1,2,3,4,5,6,7,26 --csv fig2.csv
    repro-noc shutdown d26_media --islands 6
    repro-noc runtime --benchmark d26_media --policy break_even
    repro-noc resilience d26_media --islands 6 --spare-k 1 --per-scenario
    repro-noc control d26_media --islands 6 --spare-k 1 --telemetry
    repro-noc obs d26_media --islands 6 --chrome-trace trace.json
    repro-noc synth d26_media --cache-dir .noc-cache   # warm re-runs are instant
    repro-noc cache stats --cache-dir .noc-cache
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

from .cache import CacheStore, caching, default_cache_dir

from .baseline.checker import compare_shutdown_capability
from .baseline.flat import synthesize_vi_oblivious
from .control import (
    ControlLatencyModel,
    ReconfigurationController,
    recovery_rows,
)
from .core.explore import ExplorationEngine
from .core.kernel import KERNEL_CHOICES, KERNEL_ENV_VAR
from .core.objective import (
    DEFAULT_WAKE_BUDGET_MS,
    OBJECTIVE_NAMES,
    make_objective,
)
from .core.synthesis import SynthesisConfig, synthesize
from .exceptions import ReproError
from .io.dot import save_dot
from .io.floorplan_art import floorplan_to_ascii, save_floorplan_svg
from .io.json_io import design_point_summary, save_topology
from .io.report import format_table, percent, save_csv
from .power.leakage import statically_pinned_islands, weighted_savings_fraction
from .resilience import (
    FAULT_MODEL_NAMES,
    FaultEvent,
    FitRates,
    SparePathConfig,
    analyze_model,
    enumerate_scenarios,
    protect_design_point,
    route_affected,
)
from .runtime import (
    POLICY_NAMES,
    certified_policy_comparison,
    compare_policies,
    day_in_the_life_trace,
    make_policy,
    markov_trace,
    policy_comparison_rows,
    simulate_trace,
)
from .soc.benchmarks import BENCHMARKS, load_benchmark
from .soc.partitioning import communication_partitioning, logical_partitioning
from .soc.usecases import use_cases_for


def _partitioned(name: str, islands: int, strategy: str):
    spec = load_benchmark(name)
    if strategy == "logical":
        out = logical_partitioning(spec, islands)
    elif strategy == "communication":
        out = communication_partitioning(spec, islands)
    else:
        raise ReproError("unknown strategy %r" % strategy)
    # Keep the original name so curated use cases still apply.
    return out.with_vi_assignment(out.vi_assignment, name=spec.name)


def _objective_for(args: argparse.Namespace, spec):
    """Build the requested objective; trace-driven ones get seeded
    Markov traces over the benchmark's curated use-case set."""
    name = getattr(args, "objective", "static_power")
    trace = None
    traces = None
    if name in ("trace_energy", "wake_qos"):
        trace = markov_trace(
            use_cases_for(spec),
            n_segments=args.trace_segments,
            seed=args.seed,
            mean_dwell_ms=args.trace_dwell_ms,
        )
    elif name == "multi_trace":
        seeds_arg = getattr(args, "trace_seeds", None)
        if seeds_arg:
            seeds = [int(s) for s in seeds_arg.split(",") if s.strip()]
        else:
            seeds = [args.seed, args.seed + 1, args.seed + 2]
        traces = [
            markov_trace(
                use_cases_for(spec),
                n_segments=args.trace_segments,
                seed=s,
                mean_dwell_ms=args.trace_dwell_ms,
            )
            for s in seeds
        ]
    return make_objective(
        name,
        trace=trace,
        traces=traces,
        policy=getattr(args, "objective_policy", "break_even"),
        budget_ms=getattr(args, "qos_budget_ms", DEFAULT_WAKE_BUDGET_MS),
        fault_model=getattr(args, "fault_model", "single_link"),
        spare_k=getattr(args, "spare_k", 1),
        min_coverage=getattr(args, "min_coverage", 1.0),
    )


def _add_objective_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--objective",
        choices=OBJECTIVE_NAMES,
        default="static_power",
        help="cost model for design-point selection (trace-driven "
        "objectives replay a seeded Markov trace over the benchmark's "
        "use cases; see docs/objectives.md)",
    )
    p.add_argument(
        "--objective-policy",
        choices=POLICY_NAMES,
        default="break_even",
        help="gating policy the trace-driven objectives simulate under",
    )
    p.add_argument(
        "--trace-segments",
        type=int,
        default=96,
        help="segments of the objective's Markov trace",
    )
    p.add_argument(
        "--trace-dwell-ms",
        type=float,
        default=40.0,
        help="mean mode dwell time of the objective's Markov trace",
    )
    p.add_argument(
        "--qos-budget-ms",
        type=float,
        default=DEFAULT_WAKE_BUDGET_MS,
        help="per-flow wake-latency budget for the wake_qos objective",
    )
    p.add_argument(
        "--trace-seeds",
        help="comma-separated Markov seeds for the multi_trace objective "
        "(default: seed, seed+1, seed+2)",
    )
    _add_fault_args(p)


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--fault-model",
        choices=FAULT_MODEL_NAMES,
        default="single_link",
        help="failure scenarios to protect against / analyze",
    )
    p.add_argument(
        "--spare-k",
        type=int,
        default=1,
        help="disjoint backup routes per flow",
    )
    p.add_argument(
        "--min-coverage",
        type=float,
        default=1.0,
        help="coverage target (resilience objective veto / exit code)",
    )


def _add_cache_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--cache-dir",
        help="content-addressed result store directory; enables warm-run "
        "memoization (see docs/caching.md)",
    )
    p.add_argument(
        "--verify-on-hit",
        type=int,
        default=0,
        metavar="N",
        help="recompute and cross-check every Nth cache hit (0 = never)",
    )


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(BENCHMARKS):
        spec = load_benchmark(name)
        rows.append(
            {
                "benchmark": name,
                "cores": len(spec.cores),
                "flows": len(spec.flows),
                "total_bw_mbps": spec.total_flow_bandwidth_mbps,
                "core_power_mw": spec.total_core_dynamic_power_mw,
                "area_mm2": spec.total_core_area_mm2,
            }
        )
    print(format_table(rows, title="built-in benchmarks"), end="")
    return 0


def _cache_scope(args: argparse.Namespace):
    """``caching(...)`` context for ``--cache-dir`` (no-op without it).

    Returns ``(context_manager, store_or_None)``; commands print a
    one-line hit/miss summary from the store after their run.
    """
    cache_dir = getattr(args, "cache_dir", None)
    if not cache_dir:
        return contextlib.nullcontext(), None
    store = CacheStore.open(cache_dir, verify_every=getattr(args, "verify_on_hit", 0))
    return caching(store), store


def _print_cache_stats(store: Optional[CacheStore]) -> None:
    if store is None:
        return
    s = store.stats
    print(
        "cache: %d hits, %d misses, %d bytes written (%s)"
        % (s.hits, s.misses, s.bytes_written, store.directory)
    )


def _cmd_synth(args: argparse.Namespace) -> int:
    spec = _partitioned(args.benchmark, args.islands, args.strategy)
    objective = _objective_for(args, spec)
    config = SynthesisConfig(
        alpha=args.alpha,
        allow_intermediate=not args.no_intermediate,
        seed=args.seed,
        objective=objective,
        kernel=args.kernel,
    )
    scope, store = _cache_scope(args)
    with scope:
        space = synthesize(spec, config=config)
    _print_cache_stats(store)
    print(
        format_table(
            space.summary_rows(),
            title="%s, %d islands (%s partitioning): %d design points"
            % (args.benchmark, args.islands, args.strategy, len(space)),
        ),
        end="",
    )
    best = space.best()
    print("\nbest by %s: %s" % (objective.describe(), best.label()))
    for key, val in sorted(design_point_summary(best).items()):
        print("  %-24s %s" % (key, val))
    if args.dot:
        save_dot(best.topology, args.dot)
        print("wrote %s" % args.dot)
    if args.svg:
        save_floorplan_svg(best.floorplan, args.svg, best.topology)
        print("wrote %s" % args.svg)
    if args.json:
        save_topology(best.topology, args.json)
        print("wrote %s" % args.json)
    if args.ascii_floorplan:
        print(floorplan_to_ascii(best.floorplan, best.topology))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    counts = [int(c) for c in args.counts.split(",")]
    base = load_benchmark(args.benchmark)
    objective = _objective_for(args, base)
    engine = ExplorationEngine(
        workers=args.workers,
        config=SynthesisConfig(seed=args.seed, kernel=args.kernel),
        objective=objective,
    )
    scope, store = _cache_scope(args)
    # --live / --events install an event bus around the sweep: the
    # engine streams progress (and worker span/heartbeat batches)
    # through it, rendered in place and/or appended to a tail-able
    # JSONL feed another `repro-noc obs --follow` can watch.
    sinks: list = []
    events_sink = None
    if args.live:
        from .obs import LiveRenderer

        sinks.append(LiveRenderer(stream=sys.stderr))
    if args.events:
        from .obs import JsonlSink

        events_sink = JsonlSink(args.events, timing=not args.no_timing)
        sinks.append(events_sink)
    if sinks:
        from .obs import EventBus, streaming

        stream_scope = streaming(EventBus(sinks=sinks))
    else:
        stream_scope = contextlib.nullcontext()
    with scope, stream_scope, engine:
        tasks = [
            engine.task(
                _partitioned(args.benchmark, n, strategy),
                {"islands": n, "strategy": strategy},
            )
            for strategy in ("logical", "communication")
            for n in counts
        ]
        rows = [r.row() for r in engine.run(tasks)]
    if events_sink is not None:
        print("wrote %s (%d events)" % (args.events, events_sink.lines_written))
    _print_cache_stats(store)
    print(
        format_table(
            rows,
            title="island-count sweep: %s (objective %s)"
            % (args.benchmark, objective.describe()),
        ),
        end="",
    )
    if args.csv:
        save_csv(rows, args.csv)
        print("wrote %s" % args.csv)
    return 0


def _cmd_shutdown(args: argparse.Namespace) -> int:
    spec = _partitioned(args.benchmark, args.islands, args.strategy)
    cases = use_cases_for(spec)
    aware = synthesize(spec, config=SynthesisConfig(seed=args.seed)).best_by_power()
    oblivious = synthesize_vi_oblivious(spec, config=SynthesisConfig(seed=args.seed))
    reports = compare_shutdown_capability(aware.topology, oblivious.topology, cases)
    for label in ("vi_aware", "vi_oblivious"):
        rep = reports[label]
        rows = []
        for case in cases:
            gated, blocked = rep.per_use_case[case.name]
            sr = rep.shutdown_reports[case.name]
            rows.append(
                {
                    "use_case": case.name,
                    "gated": ",".join(map(str, gated)) or "-",
                    "blocked": ",".join(map(str, blocked)) or "-",
                    "power_mw": sr.power_gated_mw,
                    "savings": percent(sr.savings_fraction),
                }
            )
        w = weighted_savings_fraction(list(rep.shutdown_reports.values()), cases)
        print(
            format_table(
                rows,
                title="%s (%d audit violations, weighted savings %s)"
                % (label, len(rep.violations), percent(w)),
            )
        )
    return 0


def _cmd_runtime(args: argparse.Namespace) -> int:
    spec = _partitioned(args.benchmark, args.islands, args.strategy)
    cases = use_cases_for(spec)
    if args.trace == "markov":
        trace = markov_trace(
            cases,
            n_segments=args.segments,
            seed=args.seed,
            mean_dwell_ms=args.dwell_ms,
        )
    else:
        # One round emits one segment per use case; pick the round
        # count whose segment total comes closest to --segments.
        trace = day_in_the_life_trace(
            cases,
            total_ms=args.segments * args.dwell_ms,
            rounds=max(1, round(args.segments / len(cases))),
        )
    best = synthesize(spec, config=SynthesisConfig(seed=args.seed)).best_by_power()
    reports = compare_policies(best.topology, trace)
    rows = policy_comparison_rows(list(reports.values()))
    print(
        format_table(
            rows,
            title="%s, %d islands: trace %s (%d segments, %.0f ms, %d transitions)"
            % (
                args.benchmark,
                args.islands,
                trace.name,
                len(trace.segments),
                trace.total_ms,
                trace.num_transitions,
            ),
        )
    )
    focus = reports[args.policy]
    print(
        format_table(
            focus.island_rows(),
            title="per-island runtime under %s" % focus.policy,
        )
    )
    for v in focus.violations[:10]:
        print("VIOLATION: %s" % v.describe())
    if args.csv:
        save_csv(rows, args.csv)
        print("wrote %s" % args.csv)
    if args.baseline:
        oblivious = synthesize_vi_oblivious(spec, config=SynthesisConfig(seed=args.seed))
        pinned = sorted(statically_pinned_islands(oblivious.topology))
        orep = certified_policy_comparison(oblivious.topology, trace)
        orows = policy_comparison_rows(list(orep.values()))
        print(
            format_table(
                orows,
                title="VI-oblivious baseline, certified controller "
                "(islands %s pinned awake by third-party routes)"
                % (",".join(map(str, pinned)) or "none"),
            )
        )
        aware_sav = focus.savings_vs(reports["never"])
        obl_sav = orep[args.policy].savings_vs(orep["never"])
        print(
            "runtime savings under %s: VI-aware %s vs certified VI-oblivious %s"
            % (args.policy, percent(aware_sav), percent(obl_sav))
        )
    return 0 if focus.routable else 1


def _cmd_resilience(args: argparse.Namespace) -> int:
    spec = _partitioned(args.benchmark, args.islands, args.strategy)
    space = synthesize(spec, config=SynthesisConfig(seed=args.seed))
    best = space.best_by_power()
    scenarios_kind = args.fault_model
    rates = None
    if args.availability:
        rates = FitRates(
            link_fit=args.link_fit,
            switch_fit=args.switch_fit,
            island_fit=args.island_fit,
            repair_hours=args.repair_hours,
        )
    base_report = analyze_model(best.topology, scenarios_kind, rates=rates)
    prot = protect_design_point(
        best,
        k=args.spare_k,
        config=SparePathConfig(node_disjoint=args.node_disjoint),
    )
    prot_report = analyze_model(
        prot.topology, scenarios_kind, plan=prot.plan, rates=rates
    )
    overhead_mw = prot.power_overhead_mw
    rows = [
        {
            "design": "unprotected",
            "scenarios": base_report.num_scenarios,
            "coverage": percent(base_report.coverage),
            "worst_scenario": percent(base_report.worst_scenario_coverage),
            "uncovered_flows": len(base_report.uncovered_flows),
            "spare_links": 0,
            "power_mw": round(best.power_mw, 2),
            "overhead": "-",
        },
        {
            "design": "k=%d protected" % args.spare_k,
            "scenarios": prot_report.num_scenarios,
            "coverage": percent(prot_report.coverage),
            "worst_scenario": percent(prot_report.worst_scenario_coverage),
            "uncovered_flows": len(prot_report.uncovered_flows),
            "spare_links": prot.plan.links_opened,
            "power_mw": round(prot.noc_power.fig2_dynamic_mw, 2),
            "overhead": percent(overhead_mw / best.power_mw)
            if best.power_mw > 0
            else "-",
        },
    ]
    print(
        format_table(
            rows,
            title="%s, %d islands: %s fault coverage (point %s)"
            % (args.benchmark, args.islands, args.fault_model, best.label()),
        )
    )
    if args.per_scenario:
        print(
            format_table(
                prot_report.rows(), title="protected per-scenario coverage"
            )
        )
    if prot.plan.unprotected:
        for key in prot.plan.unprotected:
            print("UNPROTECTED: flow %s->%s" % key)
    if rates is not None:
        for label, rep in (
            ("unprotected", base_report),
            ("k=%d protected" % args.spare_k, prot_report),
        ):
            print(
                "expected availability (%s): %.9f "
                "(%.4f min/year flow downtime)"
                % (
                    label,
                    rep.expected_availability(args.repair_hours),
                    rep.downtime_minutes_per_year(args.repair_hours),
                )
            )
    if args.csv:
        save_csv(prot_report.rows(), args.csv)
        print("wrote %s" % args.csv)
    return 0 if prot_report.coverage >= args.min_coverage - 1e-12 else 1


def _pick_scenario(scenarios, requested, topology):
    """Resolve a fault scenario by name, index, or the live default."""
    if requested is not None:
        by_name = {sc.name: sc for sc in scenarios}
        if requested in by_name:
            return by_name[requested]
        try:
            return scenarios[int(requested)]
        except (ValueError, IndexError):
            raise ReproError(
                "unknown scenario %r (%d scenarios: %s ...)"
                % (requested, len(scenarios), scenarios[0].name)
            )
    # Default to the first scenario that actually hits a primary
    # route — a fault nothing uses makes a boring demo.
    return next(
        (
            sc
            for sc in scenarios
            if any(
                route_affected(sc, topology, r)
                for r in topology.routes.values()
            )
        ),
        scenarios[0],
    )


def _controlled_replay(args: argparse.Namespace):
    """Synthesize, protect, and replay under the controller.

    The shared setup of ``control`` and ``obs``: returns
    ``(trace, scenario, event, report)`` for the benchmark's best
    design point with a single injected fault scenario.
    """
    spec = _partitioned(args.benchmark, args.islands, args.strategy)
    best = synthesize(spec, config=SynthesisConfig(seed=args.seed)).best_by_power()
    prot = protect_design_point(best, k=args.spare_k)
    topology = prot.topology
    trace = markov_trace(
        use_cases_for(spec),
        n_segments=args.segments,
        seed=args.seed,
        mean_dwell_ms=args.dwell_ms,
    )
    scenarios = enumerate_scenarios(topology, args.fault_model)
    if not scenarios:
        raise ReproError(
            "no %s scenarios on this topology" % args.fault_model
        )
    scenario = _pick_scenario(scenarios, args.scenario, topology)
    event = FaultEvent(
        scenario=scenario,
        start_ms=args.fault_start * trace.total_ms,
        end_ms=args.fault_end * trace.total_ms,
    )
    latency = ControlLatencyModel(
        detection_base_ms=args.detection_ms,
        install_base_ms=args.install_ms,
    )
    controller = ReconfigurationController(
        topology, spare_plan=prot.plan, latency=latency
    )
    report = simulate_trace(
        topology,
        trace,
        make_policy(args.policy),
        fault_events=[event],
        spare_plan=prot.plan,
        controller=controller,
    )
    return trace, scenario, event, report


def _cmd_control(args: argparse.Namespace) -> int:
    if args.stream:
        # Live mode: every controller observation prints the moment it
        # is emitted (per-fault emission order), before the post-hoc
        # tables below — the CLI face of the streaming event bus.
        from .obs import CallbackSink, EventBus, streaming

        def _print_live(ev) -> None:
            if ev.kind != "telemetry":
                return
            a = ev.attrs
            t_ms = a.get("t_ms")
            flow = " %s" % a["flow"] if a.get("flow") else ""
            detail = " (%s)" % a["detail"] if a.get("detail") else ""
            print(
                "[%10.4f ms] %-17s %s%s%s"
                % (
                    t_ms if isinstance(t_ms, (int, float)) else float("nan"),
                    ev.name,
                    a.get("scenario", ""),
                    flow,
                    detail,
                )
            )

        with streaming(EventBus(sinks=[CallbackSink(_print_live)])):
            trace, scenario, event, report = _controlled_replay(args)
    else:
        trace, scenario, event, report = _controlled_replay(args)
    print(
        format_table(
            recovery_rows(report.recoveries),
            title="%s, %d islands: controller recovery of %s "
            "(fault window %.1f-%.1f ms of %.0f ms trace)"
            % (
                args.benchmark,
                args.islands,
                scenario.name,
                event.start_ms,
                event.end_ms,
                trace.total_ms,
            ),
        )
    )
    if args.telemetry:
        for ev in report.telemetry:
            print(ev.describe())
    if args.telemetry_out:
        from .obs import telemetry_log_lines, write_lines

        n = write_lines(args.telemetry_out, telemetry_log_lines(report.telemetry))
        print("wrote %s (%d events)" % (args.telemetry_out, n))
    print(
        "worst recovery %.4f ms | lost traffic %.3f Mbit | "
        "degraded-mode energy %+.6f mJ | routable %s | deadlock-free %s"
        % (
            report.worst_recovery_ms,
            report.lost_traffic_mbits,
            report.fault_delta_mj,
            report.routable,
            report.recoveries_deadlock_free,
        )
    )
    return 0 if report.routable and report.recoveries_deadlock_free else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.follow:
        # Follow mode tails a JSONL event feed another process writes
        # (e.g. `repro-noc sweep --events F --live` elsewhere); no
        # replay happens here, so the benchmark argument is unused.
        from .obs import follow_render, status_lines

        status = follow_render(
            args.follow,
            stream=sys.stderr,
            idle_timeout_s=args.follow_timeout,
        )
        print("followed %s: %d events" % (args.follow, status.events))
        for line in status_lines(status):
            print(line)
        return 0
    if args.benchmark is None:
        raise ReproError("benchmark is required unless --follow is given")
    from .obs import (
        MetricsRegistry,
        SpanRecorder,
        chrome_trace_json,
        prometheus_text,
        record_cache_metrics,
        record_control_metrics,
        record_runtime_metrics,
        render_dashboard,
        render_html,
        span_log_lines,
        telemetry_log_lines,
        tracing,
        write_lines,
    )
    from .perf import PerfRecorder, recording

    scope, store = _cache_scope(args)
    with scope, recording(PerfRecorder()) as rec, tracing(SpanRecorder()) as tracer:
        trace, scenario, event, report = _controlled_replay(args)
    registry = MetricsRegistry()
    registry.absorb_perf(rec)
    record_runtime_metrics(registry, report)
    record_control_metrics(registry, report)
    if store is not None:
        record_cache_metrics(registry, store)
    title = "%s, %d islands: %s under fault %s (%.1f-%.1f ms of %.0f ms)" % (
        args.benchmark,
        args.islands,
        trace.name,
        scenario.name,
        event.start_ms,
        event.end_ms,
        trace.total_ms,
    )
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(
                render_html(
                    tracer=tracer, registry=registry, report=report,
                    title=title, top=args.top,
                )
            )
        print("wrote %s" % args.html)
    else:
        print(
            render_dashboard(
                tracer=tracer, registry=registry, report=report,
                title=title, top=args.top,
            )
        )
    if args.chrome_trace:
        with open(args.chrome_trace, "w", encoding="utf-8") as fh:
            fh.write(chrome_trace_json(tracer))
        print("wrote %s (load in ui.perfetto.dev)" % args.chrome_trace)
    if args.events:
        lines = span_log_lines(tracer) + telemetry_log_lines(report.telemetry)
        n = write_lines(args.events, lines)
        print("wrote %s (%d events)" % (args.events, n))
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(prometheus_text(registry))
        print("wrote %s" % args.prom)
    return 0 if report.routable and report.recoveries_deadlock_free else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    directory = args.cache_dir or str(default_cache_dir())
    store = CacheStore.open(directory)
    disk = store.disk
    assert disk is not None
    if args.action == "stats":
        kinds: dict = {}
        total_bytes = 0
        entries = 0
        unreadable = 0
        for key, header in disk.scan_headers():
            entries += 1
            if header is None:
                unreadable += 1
                continue
            kind = str(header.get("kind", "?"))
            size = int(header.get("size", 0))
            count, nbytes = kinds.get(kind, (0, 0))
            kinds[kind] = (count + 1, nbytes + size)
            total_bytes += size
        print("cache %s" % directory)
        print("  entries: %d  payload bytes: %d" % (entries, total_bytes))
        for kind in sorted(kinds):
            count, nbytes = kinds[kind]
            print("  %-12s %6d entries  %10d bytes" % (kind, count, nbytes))
        if unreadable:
            print("  unreadable headers: %d (run `cache verify`)" % unreadable)
        return 0
    if args.action == "clear":
        removed = disk.clear()
        print("cleared %s: removed %d entries" % (directory, removed))
        return 0
    if args.action == "verify":
        report = disk.verify(remove=args.remove)
        print(
            "verified %s: %d checked, %d ok, %d corrupt, %d stale, %d removed"
            % (
                directory,
                report["checked"],
                report["ok"],
                len(report["corrupt"]),
                len(report["stale"]),
                report["removed"],
            )
        )
        for key in report["corrupt"]:
            print("  corrupt: %s" % key)
        for key in report["stale"]:
            print("  stale:   %s" % key)
        return 0 if not report["corrupt"] else 1
    raise AssertionError("unreachable action %r" % args.action)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-noc`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-noc",
        description="Voltage-island-aware NoC topology synthesis (DAC'09 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list built-in benchmarks")
    p_list.set_defaults(func=_cmd_list)

    def common(
        p: argparse.ArgumentParser, optional_benchmark: bool = False
    ) -> None:
        if optional_benchmark:
            p.add_argument(
                "benchmark",
                nargs="?",
                default=None,
                help="benchmark name (see `list`; optional with --follow)",
            )
        else:
            p.add_argument("benchmark", help="benchmark name (see `list`)")
        p.add_argument("--islands", type=int, default=4, help="voltage island count")
        p.add_argument(
            "--strategy",
            choices=("logical", "communication"),
            default="logical",
            help="island assignment strategy",
        )
        p.add_argument("--seed", type=int, default=0, help="deterministic seed")

    p_synth = sub.add_parser("synth", help="synthesize one design")
    common(p_synth)
    p_synth.add_argument("--alpha", type=float, default=0.6, help="VCG weight alpha")
    p_synth.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default="auto",
        help="routing kernel (auto resolves via $%s, default vector)" % KERNEL_ENV_VAR,
    )
    p_synth.add_argument(
        "--no-intermediate", action="store_true", help="forbid the intermediate NoC island"
    )
    p_synth.add_argument("--dot", help="write best topology as Graphviz DOT")
    p_synth.add_argument("--svg", help="write best floorplan as SVG")
    p_synth.add_argument("--json", help="write best topology as JSON")
    p_synth.add_argument(
        "--ascii-floorplan", action="store_true", help="print ASCII floorplan"
    )
    _add_objective_args(p_synth)
    _add_cache_args(p_synth)
    p_synth.set_defaults(func=_cmd_synth)

    p_sweep = sub.add_parser("sweep", help="island-count sweep (Fig. 2/3 data)")
    p_sweep.add_argument("benchmark")
    p_sweep.add_argument("--counts", default="1,2,3,4,5,6,7", help="comma-separated island counts")
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--csv", help="also write rows as CSV")
    p_sweep.add_argument(
        "--workers", type=int, default=1, help="parallel synthesis workers"
    )
    p_sweep.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default="auto",
        help="routing kernel (auto resolves via $%s, default vector)" % KERNEL_ENV_VAR,
    )
    p_sweep.add_argument(
        "--live",
        action="store_true",
        help="render live sweep progress (stderr) from the event stream",
    )
    p_sweep.add_argument(
        "--events",
        help="append the event stream as tail-able JSON lines "
        "(follow with `repro-noc obs --follow PATH`)",
    )
    p_sweep.add_argument(
        "--no-timing",
        action="store_true",
        help="strip wall-clock fields from --events (byte-deterministic)",
    )
    _add_objective_args(p_sweep)
    _add_cache_args(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_shut = sub.add_parser("shutdown", help="shutdown capability vs baseline")
    common(p_shut)
    p_shut.set_defaults(func=_cmd_shutdown)

    p_rt = sub.add_parser(
        "runtime", help="trace-driven runtime shutdown simulation"
    )
    p_rt.add_argument(
        "--benchmark", required=True, help="benchmark name (see `list`)"
    )
    p_rt.add_argument("--islands", type=int, default=4, help="voltage island count")
    p_rt.add_argument(
        "--strategy",
        choices=("logical", "communication"),
        default="logical",
        help="island assignment strategy",
    )
    p_rt.add_argument("--seed", type=int, default=0, help="deterministic seed")
    p_rt.add_argument(
        "--policy",
        choices=POLICY_NAMES,
        default="break_even",
        help="policy for the per-island detail (all four are compared)",
    )
    p_rt.add_argument(
        "--trace",
        choices=("markov", "day"),
        default="markov",
        help="trace generator: seeded Markov chain or deterministic day-in-the-life",
    )
    p_rt.add_argument(
        "--segments",
        type=int,
        default=96,
        help="trace length in segments (day traces round to whole passes "
        "over the use-case set)",
    )
    p_rt.add_argument(
        "--dwell-ms", type=float, default=40.0, help="mean mode dwell time"
    )
    p_rt.add_argument(
        "--baseline",
        action="store_true",
        help="also replay the trace on the VI-oblivious baseline",
    )
    p_rt.add_argument("--csv", help="also write the policy table as CSV")
    p_rt.set_defaults(func=_cmd_runtime)

    p_res = sub.add_parser(
        "resilience",
        help="fault coverage of the protected vs unprotected design",
    )
    common(p_res)
    _add_fault_args(p_res)
    p_res.add_argument(
        "--node-disjoint",
        action="store_true",
        help="backups avoid the primary's transit switches too",
    )
    p_res.add_argument(
        "--per-scenario",
        action="store_true",
        help="print the per-scenario coverage table",
    )
    p_res.add_argument("--csv", help="write per-scenario coverage rows as CSV")
    p_res.add_argument(
        "--availability",
        action="store_true",
        help="annotate scenarios with FIT rates and report the "
        "expected flow availability (see docs/resilience.md)",
    )
    p_res.add_argument(
        "--link-fit",
        type=float,
        default=10.0,
        help="per-link failure rate in FIT (failures per 1e9 hours)",
    )
    p_res.add_argument(
        "--switch-fit", type=float, default=25.0, help="per-switch FIT rate"
    )
    p_res.add_argument(
        "--island-fit",
        type=float,
        default=5.0,
        help="whole-island hard-failure FIT rate",
    )
    p_res.add_argument(
        "--repair-hours",
        type=float,
        default=8.0,
        help="mean time to repair a failed component",
    )
    p_res.set_defaults(func=_cmd_resilience)

    def control_knobs(
        p: argparse.ArgumentParser, optional_benchmark: bool = False
    ) -> None:
        """Controlled-replay knobs shared by ``control`` and ``obs``."""
        common(p, optional_benchmark=optional_benchmark)
        _add_fault_args(p)
        p.add_argument(
            "--scenario",
            help="fault scenario to inject, by name or index "
            "(default: first scenario hitting a primary route)",
        )
        p.add_argument(
            "--policy",
            choices=POLICY_NAMES,
            default="break_even",
            help="gating policy the trace replays under",
        )
        p.add_argument(
            "--segments", type=int, default=96, help="trace length in segments"
        )
        p.add_argument(
            "--dwell-ms", type=float, default=40.0, help="mean mode dwell time"
        )
        p.add_argument(
            "--fault-start",
            type=float,
            default=0.25,
            help="fault onset as a fraction of the trace length",
        )
        p.add_argument(
            "--fault-end",
            type=float,
            default=0.6,
            help="component repair time as a fraction of the trace length",
        )
        p.add_argument(
            "--detection-ms",
            type=float,
            default=0.02,
            help="base telemetry detection latency",
        )
        p.add_argument(
            "--install-ms",
            type=float,
            default=0.01,
            help="base routing-table install latency",
        )

    p_ctl = sub.add_parser(
        "control",
        help="closed-loop fault recovery on a runtime trace",
    )
    control_knobs(p_ctl)
    p_ctl.add_argument(
        "--telemetry",
        action="store_true",
        help="print the controller's full telemetry stream",
    )
    p_ctl.add_argument(
        "--telemetry-out",
        help="write the telemetry stream as a JSON-lines event log",
    )
    p_ctl.add_argument(
        "--stream",
        action="store_true",
        help="print controller observations live as they are emitted",
    )
    p_ctl.set_defaults(func=_cmd_control)

    p_obs = sub.add_parser(
        "obs",
        help="observability dashboard over a traced, controlled replay",
    )
    control_knobs(p_obs, optional_benchmark=True)
    p_obs.add_argument(
        "--follow",
        metavar="EVENTS_JSONL",
        help="tail a live JSONL event feed from another process "
        "instead of running a replay",
    )
    p_obs.add_argument(
        "--follow-timeout",
        type=float,
        default=5.0,
        help="stop following after this many idle seconds",
    )
    p_obs.add_argument(
        "--html", help="write the dashboard as a static HTML page instead"
    )
    p_obs.add_argument(
        "--chrome-trace",
        help="write the span trace as Chrome/Perfetto trace_event JSON",
    )
    p_obs.add_argument(
        "--events",
        help="write spans + telemetry as a JSON-lines event log",
    )
    p_obs.add_argument(
        "--prom", help="write the metrics registry in Prometheus text format"
    )
    p_obs.add_argument(
        "--top", type=int, default=10, help="counters shown in the top-N panel"
    )
    _add_cache_args(p_obs)
    p_obs.set_defaults(func=_cmd_obs)

    p_cache = sub.add_parser(
        "cache", help="inspect or maintain the content-addressed result store"
    )
    p_cache.add_argument(
        "action",
        choices=("stats", "clear", "verify"),
        help="stats: entry/byte counts per kind; clear: delete all entries; "
        "verify: re-hash stored blobs and report corrupt/stale ones",
    )
    p_cache.add_argument(
        "--cache-dir",
        help="store directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-noc)",
    )
    p_cache.add_argument(
        "--remove",
        action="store_true",
        help="with verify: delete corrupt and stale entries",
    )
    p_cache.set_defaults(func=_cmd_cache)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-noc`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
