"""Online reconfiguration control plane (closed-loop fault recovery).

PR 5 made the design statically fault-tolerant (enumerated scenarios,
k-disjoint spare paths, coverage audits); this package adds the
missing temporal dimension — an SDN-style controller that runs inside
the trace simulation loop and walks every injected fault through the
staged repair pipeline

    failed -> detected -> rerouted (degraded) -> repaired (restored)

with modeled detection and installation latencies, live flow
migration (spare activation first, online reroute on surviving
hardware second, degraded-lost last) and a deadlock-freedom audit of
every routing it installs.

``latency``
    :class:`ControlLatencyModel` — deterministic detection /
    installation delays (per-scenario jitter keyed on a stable hash).
``telemetry``
    :class:`TelemetryEvent` stream and the per-fault
    :class:`FaultRecovery` / :class:`FlowRecovery` timelines.
``controller``
    :class:`ReconfigurationController` (observe / decide / install)
    and :class:`ControlOutcome`, merged into the runtime report by
    :func:`repro.runtime.simulate.simulate_trace` via ``controller=``.
``objective``
    :class:`RecoveryObjective` — worst-case detection-to-recovery time
    as a lexicographic cost after the base objective.

See ``docs/control_plane.md``.
"""

from .controller import (
    ControlDecision,
    ControlOutcome,
    FlowDecision,
    ReconfigurationController,
    controlled_simulation_check,
)
from .latency import ControlLatencyModel
from .objective import RecoveryObjective
from .telemetry import (
    ACTION_LOST,
    ACTION_REROUTE,
    ACTION_SPARE,
    TELEMETRY_KINDS,
    FaultRecovery,
    FlowRecovery,
    TelemetryEvent,
    recovery_rows,
    recovery_summary,
    sort_telemetry,
    telemetry_summary,
)

__all__ = [
    "ACTION_LOST",
    "ACTION_REROUTE",
    "ACTION_SPARE",
    "ControlDecision",
    "ControlLatencyModel",
    "ControlOutcome",
    "FaultRecovery",
    "FlowDecision",
    "FlowRecovery",
    "ReconfigurationController",
    "RecoveryObjective",
    "TELEMETRY_KINDS",
    "TelemetryEvent",
    "controlled_simulation_check",
    "recovery_rows",
    "recovery_summary",
    "sort_telemetry",
    "telemetry_summary",
]
