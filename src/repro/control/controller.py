"""The SDN-style reconfiguration controller: observe, decide, install.

:class:`ReconfigurationController` closes the loop the runtime
simulator was missing: instead of replaying faults as omniscient
same-tick energy deltas, each injected
:class:`~repro.resilience.faults.FaultEvent` now walks the staged
repair pipeline

    failed -> detected -> rerouted (degraded) -> repaired (restored)

under the deterministic :class:`~repro.control.latency.ControlLatencyModel`:

* **observe** — the fault raised at ``t0`` is seen at
  ``t0 + detection_ms(scenario)`` through the modeled telemetry
  channel; until then every affected flow runs into the dead
  component and delivers nothing (the outage window).
* **decide** — for every affected routed flow, in sorted key order:
  activate the first surviving backup of the PR-5
  :class:`~repro.resilience.spare_paths.SparePlan` (``spare``); when
  no spare covers the fault, compute a fresh reroute on the surviving
  hardware via :meth:`repro.core.paths.PathAllocator.route_around`
  (``reroute`` — new links cannot be fabbed at runtime, so
  ``allow_open=False``); when neither works the flow is declared
  ``lost`` until repair.
* **install** — the new routing state takes effect at
  ``detected + install_ms(#migrated)`` and is audited for deadlock
  freedom on the *installed* route map
  (:func:`repro.arch.routing.find_cdg_cycle` with ``routes=``);
  if the activated alternates close a channel-dependency cycle, the
  smallest-keyed contributing flows are deterministically demoted to
  ``lost`` until the installed routing is acyclic — a correct
  controller never installs a deadlockable state.
* **repair** — when the fault window ends, the repair is observed
  (lazier detection), primaries are re-installed, and the restored
  routing is audited again.

Every stage's window feeds the trace energy/stall accounting in
:func:`repro.runtime.simulate.simulate_trace` (pass the controller via
``controller=``), and the whole episode is recorded as a
:class:`~repro.control.telemetry.FaultRecovery` timeline plus a
:class:`~repro.control.telemetry.TelemetryEvent` stream on the
:class:`~repro.runtime.report.RuntimeReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..arch.routing import find_cdg_cycle, is_deadlock_free
from ..arch.topology import FlowKey, Route, Topology
from ..core.paths import PathAllocator
from ..exceptions import SpecError
from ..obs.spans import span
from ..power.noc_power import route_traffic_power_mw
from ..resilience.faults import (
    FaultEvent,
    FaultScenario,
    endpoint_failed,
    route_affected,
)
from ..resilience.spare_paths import SparePlan
from ..runtime.report import FaultImpact
from ..sim.zero_load import route_latency_cycles
from .latency import ControlLatencyModel
from .telemetry import (
    ACTION_LOST,
    ACTION_REROUTE,
    ACTION_SPARE,
    FaultRecovery,
    FlowRecovery,
    TelemetryEvent,
    publish_telemetry,
    sort_telemetry,
)


@dataclass(frozen=True)
class FlowDecision:
    """The controller's routing answer for one affected flow."""

    flow: FlowKey
    action: str  # ACTION_SPARE | ACTION_REROUTE | ACTION_LOST
    backup_index: int = -1
    route: Optional[Route] = None
    added_cycles: int = 0


@dataclass(frozen=True)
class ControlDecision:
    """The full decision for one fault scenario (pure in the scenario).

    ``installed_routes`` is the route map the controller installs:
    primaries for unaffected flows, activated alternates for recovered
    flows, lost flows dropped — the map the deadlock audit ran on.
    """

    scenario: FaultScenario
    actions: Tuple[FlowDecision, ...]
    installed_routes: Mapping[FlowKey, Route]
    deadlock_free: bool
    demoted: Tuple[FlowKey, ...] = ()

    @property
    def migrated(self) -> int:
        return sum(1 for a in self.actions if a.action != ACTION_LOST)


@dataclass(frozen=True)
class ControlOutcome:
    """What the controller did over one trace replay.

    Merged into the :class:`~repro.runtime.report.RuntimeReport` by
    :func:`~repro.runtime.simulate.simulate_trace`; energies are µJ
    (mW x ms) at this level, converted to mJ by the simulator.
    """

    impacts: Tuple[FaultImpact, ...]
    recoveries: Tuple[FaultRecovery, ...]
    telemetry: Tuple[TelemetryEvent, ...]
    delta_uj: float
    stall_ms: float
    flow_stall_ms: Mapping[FlowKey, float]


def _overlap(lo: float, hi: float, start: float, end: float) -> float:
    return max(0.0, min(hi, end) - max(lo, start))


class ReconfigurationController:
    """Closed-loop fault recovery over one protected topology.

    ``spare_plan`` is the PR-5 plan whose backups the controller
    activates first; without one every affected flow goes straight to
    the online reroute (or is lost).  Decisions are memoized per
    scenario — they are pure in (topology, plan, scenario).
    """

    def __init__(
        self,
        topology: Topology,
        spare_plan: Optional[SparePlan] = None,
        latency: Optional[ControlLatencyModel] = None,
        allocator: Optional[PathAllocator] = None,
    ) -> None:
        self.topology = topology
        self.spare_plan = spare_plan
        self.latency = latency or ControlLatencyModel()
        self._allocator = allocator
        self._decisions: Dict[FaultScenario, ControlDecision] = {}
        self._primary_deadlock_free: Optional[bool] = None

    # -- decide ---------------------------------------------------------

    def _alloc(self) -> PathAllocator:
        if self._allocator is None:
            self._allocator = PathAllocator.for_topology(self.topology)
        return self._allocator

    def _primary_cycles(self, key: FlowKey) -> int:
        if self.spare_plan is not None:
            cached = self.spare_plan.primary_cycles.get(key)
            if cached is not None:
                return cached
        return route_latency_cycles(self.topology, key)

    def decide(self, scenario: FaultScenario) -> ControlDecision:
        """Routing answer for one scenario, with the deadlock audit."""
        memo = self._decisions.get(scenario)
        if memo is not None:
            return memo
        with span("control.decide", scenario=scenario.name) as s:
            out = self._decide(scenario)
            if s is not None:
                s.set(
                    deadlock_free=out.deadlock_free,
                    lost=sum(1 for a in out.actions if a.action == ACTION_LOST),
                )
            return out

    def _decide(self, scenario: FaultScenario) -> ControlDecision:
        topo = self.topology
        plan = self.spare_plan
        actions: List[FlowDecision] = []
        for key, route in sorted(topo.routes.items()):
            dead_end = endpoint_failed(scenario, topo, key)
            if not dead_end and not route_affected(scenario, topo, route):
                continue
            decision = None
            if not dead_end and plan is not None:
                for idx, backup in enumerate(plan.backups_for(key)):
                    if not route_affected(scenario, topo, backup):
                        decision = FlowDecision(
                            flow=key,
                            action=ACTION_SPARE,
                            backup_index=idx,
                            route=backup,
                            added_cycles=plan.backup_cycles[key][idx]
                            - self._primary_cycles(key),
                        )
                        break
            if decision is None and not dead_end:
                found = self._alloc().route_around(
                    topo,
                    key,
                    forbidden_links=scenario.failed_links,
                    blocked_switches=scenario.failed_switches,
                    reserved=plan.reserved_mbps if plan is not None else None,
                )
                if found is not None:
                    alt, cycles = found
                    decision = FlowDecision(
                        flow=key,
                        action=ACTION_REROUTE,
                        route=alt,
                        added_cycles=cycles - self._primary_cycles(key),
                    )
            if decision is None:
                decision = FlowDecision(flow=key, action=ACTION_LOST)
            actions.append(decision)

        installed: Dict[FlowKey, Route] = dict(topo.routes)
        for a in actions:
            if a.action == ACTION_LOST:
                installed.pop(a.flow, None)
            else:
                installed[a.flow] = a.route

        # Never install a deadlockable routing: while the installed map
        # has a channel-dependency cycle, demote the smallest-keyed
        # recovered flow whose alternate touches the cycle.
        demoted: List[FlowKey] = []
        deadlock_free = True
        for _ in range(len(actions) + 1):
            cycle = find_cdg_cycle(topo, routes=installed)
            if cycle is None:
                break
            on_cycle = set(cycle)
            candidates = sorted(
                a.flow
                for a in actions
                if a.action != ACTION_LOST
                and a.flow not in demoted
                and any(lid in on_cycle for lid in installed[a.flow].links)
            )
            if not candidates:
                deadlock_free = False  # cycle not closed by an alternate
                break
            victim = candidates[0]
            demoted.append(victim)
            installed.pop(victim, None)
        else:  # pragma: no cover - bounded by construction
            deadlock_free = find_cdg_cycle(topo, routes=installed) is None
        if demoted:
            dem = set(demoted)
            actions = [
                FlowDecision(flow=a.flow, action=ACTION_LOST)
                if a.flow in dem
                else a
                for a in actions
            ]
        out = ControlDecision(
            scenario=scenario,
            actions=tuple(actions),
            installed_routes=installed,
            deadlock_free=deadlock_free,
            demoted=tuple(demoted),
        )
        self._decisions[scenario] = out
        return out

    # -- run ------------------------------------------------------------

    def _restore_deadlock_free(self) -> bool:
        if self._primary_deadlock_free is None:
            self._primary_deadlock_free = is_deadlock_free(self.topology)
        return self._primary_deadlock_free

    def run(
        self,
        events: Sequence[FaultEvent],
        boundaries: Sequence[Tuple[float, float, object]],
        profiles: Mapping[str, object],
        seg_wake: Mapping[Tuple[int, FlowKey], float],
        total_ms: float,
    ) -> ControlOutcome:
        """Drive the control loop over canonical fault events.

        Called by :func:`repro.runtime.simulate.simulate_trace` with
        its own segment ``boundaries``, per-use-case ``profiles`` and
        the per-(segment, flow) wake-stall map ``seg_wake`` — failover
        stalls run concurrent with wake ramps, so only the increment
        beyond the wake stall is charged to the fault.
        """
        with span("control.run", events=len(events)) as s:
            outcome = self._run(events, boundaries, profiles, seg_wake, total_ms)
            if s is not None:
                s.set(recoveries=len(outcome.recoveries))
            return outcome

    def _run(
        self,
        events: Sequence[FaultEvent],
        boundaries: Sequence[Tuple[float, float, object]],
        profiles: Mapping[str, object],
        seg_wake: Mapping[Tuple[int, FlowKey], float],
        total_ms: float,
    ) -> ControlOutcome:
        lat = self.latency
        topo = self.topology
        spec = topo.spec
        active_by_case = {
            name: frozenset(key for key, _ in prof.flow_islands)
            for name, prof in profiles.items()
        }
        impacts: List[FaultImpact] = []
        recoveries: List[FaultRecovery] = []
        telemetry: List[TelemetryEvent] = []
        delta_uj = 0.0
        stall_total = 0.0
        flow_stall: Dict[FlowKey, float] = {}

        def emit(t_ms: float, kind: str, flow=None, detail: str = "") -> None:
            if t_ms <= total_ms + 1e-12:
                event = TelemetryEvent(
                    t_ms=t_ms,
                    kind=kind,
                    scenario=sc.name,
                    flow=flow,
                    detail=detail,
                )
                telemetry.append(event)
                publish_telemetry(event)

        for ev_idx, event in enumerate(events):
            sc = event.scenario
            dec = self.decide(sc)
            n_migrated = dec.migrated
            t0 = event.start_ms
            t_detect = t0 + lat.detection_ms(sc)
            t_install = t_detect + lat.install_ms(n_migrated)
            if math.isfinite(event.end_ms):
                t_repair = event.end_ms
                t_restore = (
                    t_repair
                    + lat.repair_detection_ms(sc)
                    + lat.install_ms(n_migrated)
                )
                # A repair observed before the failover completed:
                # restore rides the same install transaction.
                t_restore = max(t_restore, t_install)
            else:
                t_repair = t_restore = math.inf
            restore_ok = (
                self._restore_deadlock_free()
                if math.isfinite(t_restore)
                else True
            )

            emit(t0, "fault_raised", detail=sc.kind)
            emit(
                t_detect,
                "fault_detected",
                detail="%d flows affected" % len(dec.actions),
            )
            for a in dec.actions:
                if a.action == ACTION_SPARE:
                    emit(
                        t_detect,
                        "spare_activated",
                        a.flow,
                        "backup %d, +%d cycles" % (a.backup_index, a.added_cycles),
                    )
                elif a.action == ACTION_REROUTE:
                    emit(
                        t_detect,
                        "reroute_computed",
                        a.flow,
                        "+%d cycles on existing links" % a.added_cycles,
                    )
                else:
                    emit(
                        t_detect,
                        "flow_lost",
                        a.flow,
                        "demoted by deadlock audit"
                        if a.flow in dec.demoted
                        else "no surviving route",
                    )
            emit(
                t_install,
                "routing_installed",
                detail="%d flows migrated" % n_migrated,
            )
            emit(
                t_install,
                "deadlock_audit",
                detail="pass"
                if dec.deadlock_free and not dec.demoted
                else (
                    "pass after demoting %d flow(s)" % len(dec.demoted)
                    if dec.deadlock_free
                    else "FAIL"
                ),
            )
            if math.isfinite(t_repair):
                emit(
                    t_repair + lat.repair_detection_ms(sc),
                    "repair_observed",
                    detail="component repaired at %.4f ms" % t_repair,
                )
                emit(
                    t_restore,
                    "primary_restored",
                    detail="audit %s" % ("pass" if restore_ok else "FAIL"),
                )

            # --- per-flow energy / stall / lost-traffic accounting ----
            flow_recs: List[FlowRecovery] = []
            for a in dec.actions:
                bw = spec.flow(*a.flow).bandwidth_mbps
                primary = topo.routes[a.flow]
                down_mw = -route_traffic_power_mw(
                    topo, bw, primary.links, include_ni=True
                )
                if a.action != ACTION_LOST:
                    deg_mw = route_traffic_power_mw(
                        topo, bw, a.route.links
                    ) - route_traffic_power_mw(topo, bw, primary.links)
                    down_hi = t_install
                else:
                    deg_mw = 0.0
                    down_hi = t_restore  # lost until primaries return
                outage = degraded = 0.0
                first_seg = -1
                for idx, (start, end, seg) in enumerate(boundaries):
                    if a.flow not in active_by_case[seg.use_case]:
                        continue
                    d = _overlap(t0, down_hi, start, end)
                    if d > 1e-12:
                        outage += d
                        delta_uj += down_mw * d
                        if first_seg < 0:
                            first_seg = idx
                        if a.action != ACTION_LOST:
                            wake = seg_wake.get((idx, a.flow), 0.0)
                            stall_total += max(0.0, d - wake)
                    if a.action != ACTION_LOST:
                        g = _overlap(t_install, t_restore, start, end)
                        if g > 1e-12:
                            degraded += g
                            delta_uj += deg_mw * g
                            if first_seg < 0:
                                first_seg = idx
                stall_ms = outage if a.action != ACTION_LOST else 0.0
                if stall_ms > 1e-12:
                    flow_stall[a.flow] = max(
                        flow_stall.get(a.flow, 0.0), stall_ms
                    )
                flow_recs.append(
                    FlowRecovery(
                        flow=a.flow,
                        action=a.action,
                        backup_index=a.backup_index,
                        added_cycles=a.added_cycles,
                        outage_ms=outage,
                        degraded_ms=degraded,
                        lost_mbits=bw * outage * 1e-3,
                        stall_ms=stall_ms,
                    )
                )
                if first_seg >= 0:
                    seg_obj = boundaries[first_seg][2]
                    impacts.append(
                        FaultImpact(
                            event_index=ev_idx,
                            scenario=sc.name,
                            segment_index=first_seg,
                            use_case=seg_obj.use_case,
                            flow=a.flow,
                            fate="rerouted"
                            if a.action != ACTION_LOST
                            else "lost",
                            backup_index=a.backup_index,
                            added_cycles=a.added_cycles,
                            stall_ms=stall_ms,
                        )
                    )

            recoveries.append(
                FaultRecovery(
                    event_index=ev_idx,
                    scenario=sc.name,
                    kind=sc.kind,
                    fault_ms=t0,
                    detected_ms=t_detect,
                    installed_ms=t_install,
                    repaired_ms=t_repair,
                    restored_ms=t_restore,
                    degraded_window_ms=max(
                        0.0, min(t_restore, total_ms) - min(t_install, total_ms)
                    ),
                    flows=tuple(flow_recs),
                    deadlock_free=dec.deadlock_free,
                    restore_deadlock_free=restore_ok,
                    demoted_flows=dec.demoted,
                )
            )

        return ControlOutcome(
            impacts=tuple(impacts),
            recoveries=tuple(recoveries),
            telemetry=sort_telemetry(telemetry),
            delta_uj=delta_uj,
            stall_ms=stall_total,
            flow_stall_ms=flow_stall,
        )


def controlled_simulation_check(
    topology: Topology,
    controller: ReconfigurationController,
    scenarios: Sequence[FaultScenario],
) -> bool:
    """True when every scenario's installed routing is deadlock-free.

    A pre-flight audit over a whole scenario set: decisions are
    memoized on the controller, so a subsequent trace replay reuses
    them for free.
    """
    if controller.topology is not topology:
        raise SpecError("controller was built for a different topology")
    return all(controller.decide(sc).deadlock_free for sc in scenarios)
