"""Deterministic latency model of the reconfiguration control plane.

The controller is *not* omniscient: a fault raised at ``t`` is only
observed after a detection latency (heartbeat loss, credit timeout,
CRC escalation — whatever the transport detects with), and a routing
decision only takes effect after an installation latency (programming
route tables switch by switch).  Both are modeled deterministically so
two replays of the same trace produce byte-identical telemetry:

* **detection** — a base latency plus a per-scenario jitter term keyed
  on a stable hash of the scenario name (``zlib.crc32``), standing in
  for where in the polling period the fault lands.  No RNG state, no
  call-order dependence: the same scenario always detects after the
  same delay.
* **installation** — a base latency plus a per-migrated-flow term: the
  more route-table entries the decision touches, the longer the
  install transaction takes.

Repair observation reuses the detection model scaled by
``repair_detection_factor`` (detecting a link coming *back* is
typically a lazier, polled path than detecting it going away).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..exceptions import SpecError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.faults import FaultScenario


def _stable_fraction(name: str) -> float:
    """Deterministic value in [0, 1] from a scenario name."""
    return (zlib.crc32(name.encode("utf-8")) % 1000) / 999.0


@dataclass(frozen=True)
class ControlLatencyModel:
    """Detection / installation latencies of the control loop (ms)."""

    #: Minimum time from fault to the controller observing it.
    detection_base_ms: float = 0.02
    #: Span of the per-scenario detection jitter (where in the polling
    #: period the fault lands); keyed on the scenario name.
    detection_jitter_ms: float = 0.01
    #: Fixed cost of one routing-install transaction.
    install_base_ms: float = 0.01
    #: Added install cost per migrated flow (route-table entries).
    install_per_flow_ms: float = 0.002
    #: Repair observation latency as a multiple of fault detection.
    repair_detection_factor: float = 2.0

    def __post_init__(self) -> None:
        for field in (
            "detection_base_ms",
            "detection_jitter_ms",
            "install_base_ms",
            "install_per_flow_ms",
            "repair_detection_factor",
        ):
            if getattr(self, field) < 0:
                raise SpecError(
                    "latency model %s must be >= 0, got %r"
                    % (field, getattr(self, field))
                )

    def detection_ms(self, scenario: "FaultScenario") -> float:
        """Fault-to-observation latency of one scenario."""
        return (
            self.detection_base_ms
            + self.detection_jitter_ms * _stable_fraction(scenario.name)
        )

    def install_ms(self, migrated_flows: int) -> float:
        """Decision-to-installed latency for a given migration size."""
        return self.install_base_ms + self.install_per_flow_ms * max(
            0, migrated_flows
        )

    def repair_detection_ms(self, scenario: "FaultScenario") -> float:
        """Repair-to-observation latency (lazier than fault detection)."""
        return self.detection_ms(scenario) * self.repair_detection_factor

    def recovery_ms(self, scenario: "FaultScenario", migrated_flows: int) -> float:
        """Worst-case fault-to-recovered time: detect + install."""
        return self.detection_ms(scenario) + self.install_ms(migrated_flows)
