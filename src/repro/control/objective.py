"""Recovery-time objective: cost the worst detection-to-recovery window.

Static resilience (:class:`~repro.resilience.coverage.ResilienceObjective`)
asks "does a live route exist after the fault"; this objective asks
"how long until the controller has it installed".  For every scenario
of the fault model it evaluates the modeled recovery time

    detection_ms(scenario) + install_ms(#flows the scenario migrates)

on the k-spare-protected topology, vetoes points whose protected
coverage misses the target, and ranks survivors by the base
objective's cost vector followed lexicographically by the worst-case
recovery time and the protection power overhead — among
base-equivalent points, the one the control plane can heal fastest
wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..core.objective import Objective, ObjectiveResult, StaticPowerObjective
from ..exceptions import SpecError
from ..resilience.coverage import analyze_model
from ..resilience.faults import (
    FAULT_MODEL_NAMES,
    endpoint_failed,
    enumerate_scenarios,
    route_affected,
)
from ..resilience.spare_paths import SparePathConfig, protect_design_point
from .latency import ControlLatencyModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.design_point import DesignPoint


@dataclass(frozen=True)
class RecoveryObjective(Objective):
    """Veto under-covered points; cost worst-case recovery time."""

    name = "recovery"

    fault_model: str = "single_link"
    k: int = 1
    min_coverage: float = 1.0
    base: Optional[Objective] = None
    latency: Optional[ControlLatencyModel] = None
    spare_config: Optional[SparePathConfig] = None

    def __post_init__(self) -> None:
        if self.fault_model not in FAULT_MODEL_NAMES:
            raise SpecError(
                "unknown fault model %r (choose from %s)"
                % (self.fault_model, ", ".join(FAULT_MODEL_NAMES))
            )
        if self.k < 0:
            raise SpecError("spare-path k must be >= 0, got %r" % self.k)
        if not (0.0 <= self.min_coverage <= 1.0):
            raise SpecError(
                "min_coverage must be in [0, 1], got %r" % self.min_coverage
            )

    def _base(self) -> Objective:
        return self.base if self.base is not None else StaticPowerObjective()

    def _latency(self) -> ControlLatencyModel:
        return self.latency if self.latency is not None else ControlLatencyModel()

    def evaluate(self, point: "DesignPoint") -> ObjectiveResult:
        base_result = self._base().evaluate(point)
        if not base_result.feasible:
            return ObjectiveResult(
                cost=(math.inf,),
                feasible=False,
                reason="%s: %s"
                % (self._base().name, base_result.reason or "rejected"),
                metrics=dict(base_result.metrics),
            )
        prot = protect_design_point(point, k=self.k, config=self.spare_config)
        topo = prot.topology
        scenarios = enumerate_scenarios(topo, self.fault_model)
        report = analyze_model(topo, self.fault_model, plan=prot.plan)
        lat = self._latency()
        worst_recovery = 0.0
        for sc in scenarios:
            migrated = sum(
                1
                for key, route in topo.routes.items()
                if route_affected(sc, topo, route)
                and not endpoint_failed(sc, topo, key)
            )
            worst_recovery = max(worst_recovery, lat.recovery_ms(sc, migrated))
        metrics = dict(base_result.metrics)
        metrics.update(
            {
                "coverage": report.coverage,
                "worst_recovery_ms": worst_recovery,
                "spare_links": float(prot.plan.links_opened),
                "spare_overhead_mw": prot.power_overhead_mw,
            }
        )
        if report.coverage < self.min_coverage - 1e-12:
            return ObjectiveResult(
                cost=(math.inf,),
                feasible=False,
                reason="recovery: coverage %.3f below target %.3f under %s"
                % (report.coverage, self.min_coverage, self.fault_model),
                metrics=metrics,
            )
        cost = base_result.cost + (worst_recovery, prot.power_overhead_mw)
        return ObjectiveResult(cost=cost, metrics=metrics)

    def partial_cost(self, point: "DesignPoint") -> Optional[Tuple[float, ...]]:
        """The base's exact cost prefix — recovery only appends cost."""
        return self._base().partial_cost(point)

    def column_names(self) -> Tuple[str, ...]:
        return self._base().column_names() + ("coverage", "recovery_ms")

    def columns(self, point: "DesignPoint") -> Dict[str, object]:
        out = self._base().columns(point)
        result = self.evaluate(point)
        out["coverage"] = round(result.metrics.get("coverage", 0.0), 4)
        out["recovery_ms"] = round(
            result.metrics.get("worst_recovery_ms", 0.0), 4
        )
        return out

    def describe(self) -> str:
        return "%s(%s, k=%d, min=%.2f, base=%s)" % (
            self.name,
            self.fault_model,
            self.k,
            self.min_coverage,
            self._base().describe(),
        )
