"""Telemetry stream and recovery timelines of the control plane.

Everything the controller observes or does is recorded as
:class:`TelemetryEvent` s — a flat, time-ordered stream a dashboard
(or the ``repro-noc control`` CLI) can consume — and rolled up per
fault into a :class:`FaultRecovery` timeline: when the fault was
raised, when the controller saw it, when the new routing was
installed, and when the repaired primary was restored.

The stream is deterministic by construction: events are emitted in a
fixed order per fault and sorted by ``(t_ms, kind rank, flow)``, so
two replays of the same trace serialize byte-identically (pinned by
the control-plane tests and the ``control_plane`` bench section).
``math.inf`` timestamps mean "never happened inside the trace" (e.g.
a fault that is never repaired); the JSON summaries map them to
``None``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..arch.topology import FlowKey
from ..obs.stream import active_bus as _active_bus

#: Telemetry event kinds, in per-timestamp presentation order.
TELEMETRY_KINDS: Tuple[str, ...] = (
    "fault_raised",
    "fault_detected",
    "spare_activated",
    "reroute_computed",
    "flow_lost",
    "routing_installed",
    "deadlock_audit",
    "repair_observed",
    "primary_restored",
)

_KIND_RANK = {kind: i for i, kind in enumerate(TELEMETRY_KINDS)}

#: Flow recovery actions.
ACTION_SPARE = "spare"
ACTION_REROUTE = "reroute"
ACTION_LOST = "lost"


@dataclass(frozen=True)
class TelemetryEvent:
    """One observation or action of the controller, timestamped."""

    t_ms: float
    kind: str
    scenario: str
    flow: Optional[FlowKey] = None
    detail: str = ""

    def describe(self) -> str:
        flow = " %s->%s" % self.flow if self.flow else ""
        detail = " (%s)" % self.detail if self.detail else ""
        return "[%10.4f ms] %-17s %s%s%s" % (
            self.t_ms,
            self.kind,
            self.scenario,
            flow,
            detail,
        )


def publish_telemetry(event: TelemetryEvent, bus=None) -> bool:
    """Stream ``event`` onto the obs event bus, if one is active.

    The controller calls this as it emits — live observers see the
    stream in *emission* order (per fault, deterministic), while the
    post-hoc report keeps the canonical :func:`sort_telemetry` order.
    ``t_ms`` is simulated trace time, fully deterministic, so it rides
    in ``attrs`` rather than the droppable ``timing`` block.  Returns
    whether an event was published.
    """
    target = bus if bus is not None else _active_bus()
    if target is None:
        return False
    target.emit(
        "telemetry",
        event.kind,
        attrs={
            "t_ms": round(event.t_ms, 6) if math.isfinite(event.t_ms) else None,
            "kind": event.kind,
            "scenario": event.scenario,
            "flow": "%s->%s" % event.flow if event.flow else None,
            "detail": event.detail,
        },
    )
    return True


def sort_telemetry(events: Sequence[TelemetryEvent]) -> Tuple[TelemetryEvent, ...]:
    """Canonical stream order: time, then kind rank, then flow."""
    return tuple(
        sorted(
            events,
            key=lambda e: (
                e.t_ms,
                _KIND_RANK.get(e.kind, len(TELEMETRY_KINDS)),
                e.scenario,
                e.flow or ("", ""),
            ),
        )
    )


@dataclass(frozen=True)
class FlowRecovery:
    """One affected flow's path through a fault's repair stages."""

    flow: FlowKey
    #: ``spare`` (pre-provisioned backup), ``reroute`` (freshly computed
    #: on surviving hardware) or ``lost`` (no routing answer).
    action: str
    #: Index into the spare plan's backup tuple (``spare`` only).
    backup_index: int = -1
    #: Zero-load latency penalty of the alternate route (cycles).
    added_cycles: int = 0
    #: Active time with no service before the alternate was installed.
    outage_ms: float = 0.0
    #: Active time served on the alternate route.
    degraded_ms: float = 0.0
    #: Traffic the flow could not deliver while down (Mbit).
    lost_mbits: float = 0.0
    #: Failover stall charged to the flow (= its active outage).
    stall_ms: float = 0.0

    @property
    def recovered(self) -> bool:
        return self.action in (ACTION_SPARE, ACTION_REROUTE)


@dataclass(frozen=True)
class FaultRecovery:
    """Per-fault recovery timeline through the staged repair loop.

    Stage timestamps are absolute trace times (ms); ``math.inf`` means
    the stage never happened inside the trace (an unrepaired fault has
    ``repaired_ms == restored_ms == inf``).  Windows (``*_window_ms``)
    are clamped to the trace, so they sum into the energy accounting.
    """

    event_index: int
    scenario: str
    kind: str
    #: Fault raised (failed stage).
    fault_ms: float
    #: Controller observed the fault (detected stage).
    detected_ms: float
    #: New routing installed — degraded service begins (rerouted stage).
    installed_ms: float
    #: Physical repair of the component (end of the fault window).
    repaired_ms: float
    #: Controller restored primaries (repaired stage complete).
    restored_ms: float
    #: Degraded-mode window inside the trace: installed -> restored.
    degraded_window_ms: float
    flows: Tuple[FlowRecovery, ...]
    #: Install-time channel-dependency audit of the degraded routing.
    deadlock_free: bool = True
    #: Audit of the restored (primary) routing.
    restore_deadlock_free: bool = True
    #: Recovered flows demoted to lost by the deadlock audit.
    demoted_flows: Tuple[FlowKey, ...] = ()

    @property
    def detection_ms(self) -> float:
        """Fault-to-observation latency."""
        return self.detected_ms - self.fault_ms

    @property
    def failover_ms(self) -> float:
        """Fault-to-installed latency (the service-impact window)."""
        return self.installed_ms - self.fault_ms

    @property
    def lost_traffic_mbits(self) -> float:
        return sum(f.lost_mbits for f in self.flows)

    @property
    def recovered_flows(self) -> int:
        return sum(1 for f in self.flows if f.recovered)

    @property
    def lost_flows(self) -> int:
        return sum(1 for f in self.flows if f.action == ACTION_LOST)

    @property
    def repaired(self) -> bool:
        return math.isfinite(self.restored_ms)


def _finite(value: float) -> Optional[float]:
    return round(value, 6) if math.isfinite(value) else None


def recovery_rows(recoveries: Sequence[FaultRecovery]) -> List[Dict[str, object]]:
    """Per-fault table rows for :func:`repro.io.report.format_table`."""
    rows: List[Dict[str, object]] = []
    for rec in recoveries:
        rows.append(
            {
                "scenario": rec.scenario,
                "fault_ms": round(rec.fault_ms, 4),
                "detect_ms": round(rec.detection_ms, 4),
                "failover_ms": round(rec.failover_ms, 4),
                "degraded_ms": round(rec.degraded_window_ms, 4),
                "restored_ms": _finite(rec.restored_ms) or "-",
                "recovered": rec.recovered_flows,
                "lost": rec.lost_flows,
                "lost_mbits": round(rec.lost_traffic_mbits, 4),
                "deadlock_free": rec.deadlock_free
                and rec.restore_deadlock_free,
            }
        )
    return rows


def recovery_summary(rec: FaultRecovery) -> Dict[str, Any]:
    """Flat, deterministic JSON summary of one recovery timeline."""
    return {
        "event_index": rec.event_index,
        "scenario": rec.scenario,
        "kind": rec.kind,
        "fault_ms": round(rec.fault_ms, 6),
        "detected_ms": round(rec.detected_ms, 6),
        "installed_ms": round(rec.installed_ms, 6),
        "repaired_ms": _finite(rec.repaired_ms),
        "restored_ms": _finite(rec.restored_ms),
        "detection_ms": round(rec.detection_ms, 6),
        "failover_ms": round(rec.failover_ms, 6),
        "degraded_window_ms": round(rec.degraded_window_ms, 6),
        "lost_traffic_mbits": round(rec.lost_traffic_mbits, 6),
        "deadlock_free": rec.deadlock_free,
        "restore_deadlock_free": rec.restore_deadlock_free,
        "demoted_flows": ["%s->%s" % f for f in rec.demoted_flows],
        "flows": [
            {
                "flow": "%s->%s" % f.flow,
                "action": f.action,
                "backup_index": f.backup_index,
                "added_cycles": f.added_cycles,
                "outage_ms": round(f.outage_ms, 6),
                "degraded_ms": round(f.degraded_ms, 6),
                "lost_mbits": round(f.lost_mbits, 6),
                "stall_ms": round(f.stall_ms, 6),
            }
            for f in rec.flows
        ],
    }


def telemetry_summary(
    events: Sequence[TelemetryEvent],
) -> List[Dict[str, Any]]:
    """JSON-safe dump of a telemetry stream (already canonical order)."""
    return [
        {
            "t_ms": round(e.t_ms, 6),
            "kind": e.kind,
            "scenario": e.scenario,
            "flow": "%s->%s" % e.flow if e.flow else None,
            "detail": e.detail,
        }
        for e in events
    ]
