"""The paper's contribution: VI-aware NoC topology synthesis.

Modules: problem spec (`spec`), VI communication graphs (`vcg`),
island frequency planning (`frequency`), k-way min-cut partitioning
(`partition`), least-cost path allocation (`paths`), the Algorithm-1
driver (`synthesis`), design points (`design_point`) and DSE sweeps
(`explore`).
"""
