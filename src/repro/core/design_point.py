"""Design points and the design space (the paper's trade-off curves).

Each feasible combination of per-island switch counts and intermediate
switch count that routes all flows becomes a :class:`DesignPoint` with
its measured power, latency, area and floorplan.  "Our method produces
several design points that meet the application constraints ... The
designer can then choose the best design point from the trade-off
curves obtained" (Section 3.2) — :class:`DesignSpace` provides exactly
those selection helpers, including the Pareto front over (power,
latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from ..arch.topology import Topology
from ..exceptions import InfeasibleError
from ..floorplan.placer import Floorplan
from ..floorplan.wires import WireReport
from ..power.noc_power import NocPower
from ..power.soc_power import SocPower
from ..sim.zero_load import LatencyReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .objective import Objective, ObjectiveResult


@dataclass(frozen=True)
class DesignPoint:
    """One feasible synthesized NoC with its evaluated metrics."""

    #: Sequential index within the synthesis run.
    index: int
    #: Per-island direct switch counts, keyed by island id.
    switch_counts: Mapping[int, int]
    #: Indirect switches requested in the intermediate island.
    num_intermediate_requested: int
    #: Indirect switches actually used after pruning.
    num_intermediate_used: int
    topology: Topology
    floorplan: Floorplan
    wires: WireReport
    noc_power: NocPower
    soc_power: SocPower
    latency: LatencyReport
    #: Score under the synthesis objective, when one was configured
    #: (``SynthesisConfig(objective=...)``); ``None`` otherwise.
    objective_result: Optional["ObjectiveResult"] = None

    @property
    def objective_cost(self) -> Optional[Tuple[float, ...]]:
        """Cost vector under the synthesis objective, if one was set."""
        return None if self.objective_result is None else self.objective_result.cost

    @property
    def total_switches(self) -> int:
        """Direct plus used intermediate switches."""
        return sum(self.switch_counts.values()) + self.num_intermediate_used

    @property
    def power_mw(self) -> float:
        """Primary power objective (Figure 2 metric)."""
        return self.noc_power.fig2_dynamic_mw

    @property
    def avg_latency_cycles(self) -> float:
        """Primary latency objective (Figure 3 metric)."""
        return self.latency.average_cycles

    def label(self) -> str:
        """Compact human-readable identity of the point."""
        counts = "/".join(
            str(self.switch_counts[i]) for i in sorted(self.switch_counts)
        )
        return "dp%d[sw=%s,mid=%d]" % (self.index, counts, self.num_intermediate_used)


@dataclass
class DesignSpace:
    """All feasible design points of one synthesis run."""

    spec_name: str
    points: List[DesignPoint] = field(default_factory=list)
    #: (switch counts, k_mid) combinations that failed, with reasons.
    failures: List[Tuple[Tuple[Tuple[int, int], ...], int, str]] = field(
        default_factory=list
    )
    #: The objective the space was synthesized under (co-synthesis);
    #: ``None`` means the default static-power objective.
    objective: Optional["Objective"] = None

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def feasible(self) -> bool:
        """True when at least one design point exists."""
        return bool(self.points)

    def require_feasible(self) -> None:
        """Raise :class:`InfeasibleError` when the space is empty."""
        if not self.points:
            reasons = "; ".join(sorted({r for _, _, r in self.failures})[:3])
            raise InfeasibleError(
                "no feasible design point for %s (%s)" % (self.spec_name, reasons or "no attempts")
            )

    def best(self, objective: Optional["Objective"] = None) -> DesignPoint:
        """The best point under ``objective`` (default: the space's own).

        The one selection entry point every caller shares: falls back
        to the objective the space was synthesized under, then to the
        static-power default.  Raises :class:`InfeasibleError` when the
        space is empty or the objective rejects every point.
        """
        from .objective import StaticPowerObjective

        obj = objective if objective is not None else self.objective
        if obj is None:
            obj = StaticPowerObjective()
        return obj.select(self)

    def best_by_power(self) -> DesignPoint:
        """Lowest NoC dynamic power (Figure 2 picks this per island count)."""
        from .objective import StaticPowerObjective

        return StaticPowerObjective().select(self)

    def best_by_latency(self) -> DesignPoint:
        """Lowest average zero-load latency."""
        from .objective import StaticLatencyObjective

        return StaticLatencyObjective().select(self)

    def pareto_front(self) -> List[DesignPoint]:
        """Non-dominated points in the (power, latency) plane.

        A point dominates another when it is no worse in both
        objectives and strictly better in at least one.
        """
        front: List[DesignPoint] = []
        for p in sorted(self.points, key=lambda q: (q.power_mw, q.avg_latency_cycles)):
            dominated = False
            for q in self.points:
                if q is p:
                    continue
                if (
                    q.power_mw <= p.power_mw + 1e-12
                    and q.avg_latency_cycles <= p.avg_latency_cycles + 1e-12
                    and (
                        q.power_mw < p.power_mw - 1e-12
                        or q.avg_latency_cycles < p.avg_latency_cycles - 1e-12
                    )
                ):
                    dominated = True
                    break
            if not dominated:
                front.append(p)
        return front

    def summary_rows(self) -> List[Dict[str, object]]:
        """Tabular summary (one dict per point) for reports."""
        rows = []
        for p in self.points:
            rows.append(
                {
                    "point": p.label(),
                    "switches": p.total_switches,
                    "intermediate": p.num_intermediate_used,
                    "noc_power_mw": round(p.power_mw, 3),
                    "avg_latency_cycles": round(p.avg_latency_cycles, 3),
                    "noc_area_mm2": round(p.soc_power.noc_area_mm2, 4),
                    "wire_mm": round(p.wires.total_length_mm, 2),
                }
            )
        return rows
