"""Design-space exploration drivers.

One level above :func:`repro.core.synthesis.synthesize`: structured
sweeps over the knobs a system architect actually turns — island count
and assignment strategy (the paper's Figures 2/3 axis), the VCG weight
``alpha``, and the link data width.  Each sweep returns plain records
so benches, examples and notebooks share one implementation instead of
re-rolling loops.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import InfeasibleError, SpecError
from ..power.library import DEFAULT_LIBRARY, NocLibrary
from ..soc.partitioning import communication_partitioning, logical_partitioning
from .design_point import DesignPoint, DesignSpace
from .spec import SoCSpec
from .synthesis import SynthesisConfig, synthesize


@dataclass(frozen=True)
class SweepRecord:
    """One point of a sweep: the knob values plus the chosen design."""

    knobs: Mapping[str, object]
    point: Optional[DesignPoint]
    design_points: int
    elapsed_s: float
    failure: Optional[str] = None

    @property
    def feasible(self) -> bool:
        return self.point is not None

    def row(self) -> Dict[str, object]:
        """Flat dict for :func:`repro.io.report.format_table`."""
        out: Dict[str, object] = dict(self.knobs)
        if self.point is not None:
            out.update(
                {
                    "noc_power_mw": round(self.point.power_mw, 2),
                    "avg_latency_cycles": round(self.point.avg_latency_cycles, 2),
                    "switches": self.point.total_switches,
                    "converters": self.point.topology.num_converters(),
                }
            )
        else:
            out.update({"noc_power_mw": "infeasible"})
        out["design_points"] = self.design_points
        out["seconds"] = round(self.elapsed_s, 3)
        return out


def _run_one(
    spec: SoCSpec,
    library: NocLibrary,
    config: SynthesisConfig,
    knobs: Mapping[str, object],
    select: Callable[[DesignSpace], DesignPoint],
) -> SweepRecord:
    t0 = time.perf_counter()
    try:
        space = synthesize(spec, library, config)
        point = select(space)
        return SweepRecord(
            knobs=dict(knobs),
            point=point,
            design_points=len(space),
            elapsed_s=time.perf_counter() - t0,
        )
    except InfeasibleError as exc:
        return SweepRecord(
            knobs=dict(knobs),
            point=None,
            design_points=0,
            elapsed_s=time.perf_counter() - t0,
            failure=str(exc),
        )


def island_count_exploration(
    spec: SoCSpec,
    counts: Sequence[int],
    strategies: Sequence[str] = ("logical", "communication"),
    library: NocLibrary = DEFAULT_LIBRARY,
    config: Optional[SynthesisConfig] = None,
    select: Callable[[DesignSpace], DesignPoint] = DesignSpace.best_by_power,
) -> List[SweepRecord]:
    """The Figures 2/3 sweep: island count x assignment strategy."""
    cfg = config or SynthesisConfig(max_intermediate=1)
    records = []
    for strategy in strategies:
        if strategy == "logical":
            partition = logical_partitioning
        elif strategy == "communication":
            partition = communication_partitioning
        else:
            raise SpecError("unknown strategy %r" % strategy)
        for n in counts:
            part = partition(spec, n)
            records.append(
                _run_one(
                    part,
                    library,
                    cfg,
                    {"islands": n, "strategy": strategy},
                    select,
                )
            )
    return records


def alpha_exploration(
    spec: SoCSpec,
    alphas: Sequence[float],
    library: NocLibrary = DEFAULT_LIBRARY,
    config: Optional[SynthesisConfig] = None,
    select: Callable[[DesignSpace], DesignPoint] = DesignSpace.best_by_power,
) -> List[SweepRecord]:
    """Sweep the Definition-1 weight between bandwidth and latency."""
    cfg = config or SynthesisConfig(max_intermediate=1)
    records = []
    for alpha in alphas:
        records.append(
            _run_one(
                spec,
                library,
                dataclasses.replace(cfg, alpha=alpha),
                {"alpha": alpha},
                select,
            )
        )
    return records


def data_width_exploration(
    spec: SoCSpec,
    widths: Sequence[int],
    library: NocLibrary = DEFAULT_LIBRARY,
    config: Optional[SynthesisConfig] = None,
    select: Callable[[DesignSpace], DesignPoint] = DesignSpace.best_by_power,
) -> List[SweepRecord]:
    """Sweep the NoC link data width ("could be varied in a range")."""
    cfg = config or SynthesisConfig(max_intermediate=1)
    records = []
    for width in widths:
        if width <= 0:
            raise SpecError("link width must be positive, got %r" % width)
        lib = dataclasses.replace(library, data_width_bits=width)
        records.append(
            _run_one(spec, lib, cfg, {"width_bits": width}, select)
        )
    return records


def pareto_records(space: DesignSpace) -> List[Dict[str, object]]:
    """The (power, latency) Pareto front as table rows."""
    return [
        {
            "point": p.label(),
            "noc_power_mw": round(p.power_mw, 2),
            "avg_latency_cycles": round(p.avg_latency_cycles, 2),
            "switches": p.total_switches,
            "intermediate": p.num_intermediate_used,
        }
        for p in space.pareto_front()
    ]
