"""Design-space exploration drivers.

One level above :func:`repro.core.synthesis.synthesize`: structured
sweeps over the knobs a system architect actually turns — island count
and assignment strategy (the paper's Figures 2/3 axis), the VCG weight
``alpha``, and the link data width.  Each sweep returns plain records
so benches, examples and notebooks share one implementation instead of
re-rolling loops.

Sweep points are independent synthesis runs, so :class:`ExplorationEngine`
can fan them out across a *persistent* worker pool (``workers > 1``):
the :class:`~concurrent.futures.ProcessPoolExecutor` is created once,
its initializer installs the sweep-invariant context (the distinct
specs, base library/config, selector) in each worker — shared for free
via copy-on-write under the ``fork`` start method, shipped once per
worker otherwise — and each task then travels as a small descriptor
(spec index, knob labels, config/library field diffs) instead of a full
pickled :class:`SweepTask`.  Results come back in submission order, so
parallel and serial sweeps produce identical record lists; ``workers=1``
never touches the pool machinery at all.  The module-level sweep
functions are thin wrappers over a default engine and accept the same
``workers`` knob.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import InfeasibleError, SpecError
from ..obs.spans import SpanRecorder, active_tracer, span, tracing
from ..obs.stream import EventBus, active_bus, streaming
from ..perf.instrument import PerfRecorder, active_recorder, recording
from ..power.gating import GatingModel
from ..power.library import DEFAULT_LIBRARY, NocLibrary
from ..runtime.trace import UseCaseTrace
from ..soc.partitioning import communication_partitioning, logical_partitioning
from .design_point import DesignPoint, DesignSpace
from .objective import Objective, TraceEnergyObjective
from .spec import SoCSpec
from .synthesis import SynthesisConfig, synthesize

#: Placeholder emitted for metric columns of infeasible sweep rows so
#: feasible and infeasible rows keep identical key sets (column
#: alignment in :func:`repro.io.report.format_table` depends on it).
INFEASIBLE = "infeasible"


@dataclass(frozen=True)
class SweepRecord:
    """One point of a sweep: the knob values plus the chosen design."""

    knobs: Mapping[str, object]
    point: Optional[DesignPoint]
    design_points: int
    elapsed_s: float
    failure: Optional[str] = None
    #: Objective-contributed columns (e.g. ``trace_mj``); infeasible
    #: records carry the same keys with the :data:`INFEASIBLE`
    #: placeholder so mixed sweeps keep aligned columns.
    extras: Mapping[str, object] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return self.point is not None

    def row(self) -> Dict[str, object]:
        """Flat dict for :func:`repro.io.report.format_table`.

        Feasible and infeasible records emit the same keys — metric
        columns of infeasible rows hold the :data:`INFEASIBLE`
        placeholder — so mixed sweeps tabulate with aligned columns.
        """
        out: Dict[str, object] = dict(self.knobs)
        if self.point is not None:
            out.update(
                {
                    "noc_power_mw": round(self.point.power_mw, 2),
                    "avg_latency_cycles": round(self.point.avg_latency_cycles, 2),
                    "switches": self.point.total_switches,
                    "converters": self.point.topology.num_converters(),
                }
            )
        else:
            out.update(
                {
                    "noc_power_mw": INFEASIBLE,
                    "avg_latency_cycles": INFEASIBLE,
                    "switches": INFEASIBLE,
                    "converters": INFEASIBLE,
                }
            )
        out.update(self.extras)
        out["design_points"] = self.design_points
        out["seconds"] = round(self.elapsed_s, 3)
        return out


@dataclass(frozen=True)
class SweepTask:
    """One synthesis run of a sweep, ready to execute anywhere.

    Fully self-contained (spec, library, config, knob labels, selector)
    so the engine can ship it to a pool worker; every field must be
    picklable when ``workers > 1``.
    """

    spec: SoCSpec
    library: NocLibrary
    config: SynthesisConfig
    knobs: Mapping[str, object]
    select: Callable[[DesignSpace], DesignPoint]


def _selector_columns(
    select: Callable[[DesignSpace], DesignPoint], point: DesignPoint
) -> Dict[str, object]:
    """Objective-contributed sweep columns of a selected point."""
    columns = getattr(select, "columns", None)
    return dict(columns(point)) if callable(columns) else {}


def _selector_column_names(
    select: Callable[[DesignSpace], DesignPoint],
) -> Tuple[str, ...]:
    """Column keys a selector contributes (for infeasible placeholders)."""
    names = getattr(select, "column_names", None)
    return tuple(names()) if callable(names) else ()


def _run_one(
    spec: SoCSpec,
    library: NocLibrary,
    config: SynthesisConfig,
    knobs: Mapping[str, object],
    select: Callable[[DesignSpace], DesignPoint],
) -> SweepRecord:
    t0 = time.perf_counter()
    design_points = 0
    with span("explore.task", **dict(knobs)):
        try:
            space = synthesize(spec, library, config)
            design_points = len(space)
            point = select(space)
            return SweepRecord(
                knobs=dict(knobs),
                point=point,
                design_points=design_points,
                elapsed_s=time.perf_counter() - t0,
                extras=_selector_columns(select, point),
            )
        except InfeasibleError as exc:
            # Either the sweep found no routable candidate, or the
            # objective rejected every one (QoS): both are infeasible rows.
            return SweepRecord(
                knobs=dict(knobs),
                point=None,
                design_points=design_points,
                elapsed_s=time.perf_counter() - t0,
                failure=str(exc),
                extras={k: INFEASIBLE for k in _selector_column_names(select)},
            )


def _execute_task(task: SweepTask) -> SweepRecord:
    """Module-level task runner (picklable for the process pool)."""
    return _run_one(task.spec, task.library, task.config, task.knobs, task.select)


# ----------------------------------------------------------------------
# Persistent worker pool plumbing
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _TaskDescriptor:
    """Slim wire format of one pool task.

    The sweep-invariant context (specs, base library/config, selector)
    lives in the worker already (see :func:`_pool_init`); a descriptor
    carries only what differs for this task: the spec's index into the
    shared spec table, the knob labels, and either a field diff against
    the base config/library (reconstructed with ``dataclasses.replace``)
    or — when a diff cannot represent the change — the full object.
    At most one of ``config_diff`` / ``config_full`` is set; both
    ``None`` means "use the base" (same for the library and selector).
    """

    spec_index: int
    knobs: Mapping[str, object]
    config_diff: Optional[Mapping[str, object]] = None
    config_full: Optional[SynthesisConfig] = None
    library_diff: Optional[Mapping[str, object]] = None
    library_full: Optional[NocLibrary] = None
    select: Optional[Callable[[DesignSpace], DesignPoint]] = None
    #: When set, the worker records the task under fresh perf/span
    #: recorders and ships their snapshots home alongside the record —
    #: the parent merges them so parallel sweeps lose no observability.
    collect_obs: bool = False


#: Per-worker sweep context installed by :func:`_pool_init`:
#: ``(specs, base_library, base_config, base_select)``.
_WORKER_CONTEXT: Optional[tuple] = None


def _pool_init(
    specs: Sequence[SoCSpec],
    library: NocLibrary,
    config: SynthesisConfig,
    select: Callable[[DesignSpace], DesignPoint],
    cache_store=None,
) -> None:
    """Worker initializer: install the shared read-only sweep context.

    Runs once per worker process at pool start-up; under the ``fork``
    start method the argument pickle is the only per-worker cost and the
    large objects behind it stay copy-on-write shared with the parent.

    ``cache_store`` carries the parent's active
    :class:`~repro.cache.store.CacheStore` into the worker.  Under
    ``fork`` the worker inherits the parent's store module-global —
    including its warm in-memory tier, copy-on-write shared — so the
    shipped store only installs itself where nothing is active yet
    (spawn platforms, whose pickled copy drops memory-tier contents
    and re-reads from disk).
    """
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = (list(specs), library, config, select)
    if cache_store is not None:
        from ..cache.context import active_store, set_store

        if active_store() is None:
            set_store(cache_store)


def _execute_descriptor(desc: _TaskDescriptor):
    """Rehydrate a descriptor against the worker context and run it.

    Returns ``(record, obs_payload)``: the payload is ``None`` unless
    the descriptor asked for observability capture or a cache store is
    active.  It carries the worker-side :class:`PerfRecorder` /
    :class:`SpanRecorder` snapshots and the cache hit/miss counter
    delta this task produced, for the parent to merge.
    """
    assert _WORKER_CONTEXT is not None, "worker pool not initialized"
    specs, base_library, base_config, base_select = _WORKER_CONTEXT
    spec = specs[desc.spec_index]
    config = base_config
    if desc.config_full is not None:
        config = desc.config_full
    elif desc.config_diff:
        config = dataclasses.replace(base_config, **dict(desc.config_diff))
    library = base_library
    if desc.library_full is not None:
        library = desc.library_full
    elif desc.library_diff:
        library = dataclasses.replace(base_library, **dict(desc.library_diff))
    select = desc.select if desc.select is not None else base_select
    from ..cache.context import active_store

    store = active_store()
    stats_before = store.stats.snapshot() if store is not None else None
    if not desc.collect_obs:
        record = _run_one(spec, library, config, desc.knobs, select)
        if store is None:
            return record, None
        return record, {"cache": store.stats.diff(stats_before)}
    with recording(PerfRecorder()) as rec, tracing(SpanRecorder()) as tracer, \
            streaming(EventBus(process="worker")) as bus:
        bus.emit(
            "heartbeat",
            "task",
            attrs={"phase": "start", "knobs": dict(desc.knobs)},
        )
        record = _run_one(spec, library, config, desc.knobs, select)
        bus.emit(
            "heartbeat",
            "task",
            attrs={"phase": "end", "feasible": record.feasible},
        )
        # Drain (not snapshot): each result ships exactly this task's
        # events; the parent relabels the batch ``task<i>`` on ingest.
        events = bus.drain_snapshot()
    payload = {"perf": rec.snapshot(), "spans": tracer.snapshot(), "events": events}
    if store is not None:
        payload["cache"] = store.stats.diff(stats_before)
    return record, payload


def _dataclass_diff(base: object, value: object):
    """``(diff, full)`` decomposition of ``value`` against ``base``.

    Returns a field-name -> value dict of the init fields that differ
    (possibly empty, meaning ``value`` equals ``base``) and ``None``,
    or ``(None, value)`` when no faithful diff exists (different types,
    a differing non-init field, or a comparison that refuses) and the
    full object must ship instead.
    """
    if value is base:
        return {}, None
    if type(value) is not type(base) or not dataclasses.is_dataclass(base):
        return None, value
    diff: Dict[str, object] = {}
    for f in dataclasses.fields(base):  # type: ignore[arg-type]
        a = getattr(base, f.name)
        b = getattr(value, f.name)
        if a is b:
            continue
        try:
            if bool(a == b):
                continue
        except Exception:
            return None, value
        if not f.init:
            return None, value
        diff[f.name] = b
    return diff, None


def pareto_merge(records: Sequence[SweepRecord]) -> List[SweepRecord]:
    """Non-dominated feasible records in the (power, latency) plane.

    The cross-sweep analogue of :meth:`DesignSpace.pareto_front`: each
    record contributes its chosen point, and a record survives unless
    another feasible record is no worse in both objectives and strictly
    better in one.  Output order is (power, latency) ascending with the
    original sweep position as the deterministic tiebreak.
    """
    feasible = [(i, r) for i, r in enumerate(records) if r.point is not None]
    front: List[Tuple[int, SweepRecord]] = []
    for i, r in feasible:
        p = r.point
        dominated = False
        for _, q in feasible:
            if q is r:
                continue
            qp = q.point
            if (
                qp.power_mw <= p.power_mw + 1e-12
                and qp.avg_latency_cycles <= p.avg_latency_cycles + 1e-12
                and (
                    qp.power_mw < p.power_mw - 1e-12
                    or qp.avg_latency_cycles < p.avg_latency_cycles - 1e-12
                )
            ):
                dominated = True
                break
        if not dominated:
            front.append((i, r))
    front.sort(key=lambda ir: (ir[1].point.power_mw, ir[1].point.avg_latency_cycles, ir[0]))
    return [r for _, r in front]


class ExplorationEngine:
    """Executes sweep tasks serially or across a persistent worker pool.

    ``workers=1`` (the default) runs every task inline — no pool, no
    pickling requirements, identical to the historical serial loops.
    ``workers>1`` fans tasks out to a persistent
    :class:`~concurrent.futures.ProcessPoolExecutor`: the pool is
    created lazily on the first parallel :meth:`run`, seeds every
    worker with the sweep-invariant context (the distinct specs, base
    library/config, selector) via its initializer, and is then reused
    by subsequent runs over the same context — repeated sweeps pay the
    worker start-up cost once, and each task crosses the process
    boundary as a :class:`_TaskDescriptor` of a few small fields.
    Results are collected in submission order so the returned records
    match the serial run element for element.  With a pool, task fields
    — including a custom ``select`` — must be picklable (module-level
    functions; lambdas only work serially).

    The engine owns the pool: call :meth:`close` (or use the engine as
    a context manager) to release the worker processes; a dropped
    engine cleans up on garbage collection as a fallback.

    The engine carries the sweep-invariant context (library, base
    config, selector) so call sites only name the knob values.
    """

    def __init__(
        self,
        workers: int = 1,
        library: NocLibrary = DEFAULT_LIBRARY,
        config: Optional[SynthesisConfig] = None,
        select: Callable[[DesignSpace], DesignPoint] = DesignSpace.best_by_power,
        objective: Optional[Objective] = None,
    ) -> None:
        if workers < 1:
            raise SpecError("workers must be >= 1, got %r" % workers)
        self.workers = workers
        self.library = library
        self.config = config or SynthesisConfig(max_intermediate=1)
        if objective is not None:
            if select is not DesignSpace.best_by_power:
                raise SpecError(
                    "pass either select= or objective=, not both "
                    "(a custom selector would be silently ignored)"
                )
            select = ObjectiveSelector(objective)
        self.select = select
        self.objective = objective
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Context the live pool was initialized with — identity key
        #: plus strong references that keep the ``id()`` values stable.
        self._pool_key: Optional[tuple] = None
        self._pool_refs: tuple = ()
        #: In-flight futures of the current parallel :meth:`run`, with
        #: their deterministic ``task<i>`` labels and a merged flag —
        #: :meth:`close` flushes the obs payloads of completed tasks
        #: the result loop never reached (mid-sweep teardown).
        self._inflight: List[Dict[str, object]] = []
        self._obs_targets: Optional[tuple] = None

    # -- pool lifecycle ------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool (idempotent; serial engines no-op).

        Tasks still queued are cancelled, running ones are allowed to
        finish, and the obs payloads (perf/span/event/cache snapshots)
        of any *completed but unmerged* tasks are flushed into the
        recorders that were active when the sweep started — a pool torn
        down mid-sweep loses no observability.
        """
        pool, self._pool = self._pool, None
        self._pool_key = None
        self._pool_refs = ()
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        self._flush_inflight()

    def _flush_inflight(self) -> int:
        """Merge obs payloads of completed-but-unmerged tasks; count them."""
        inflight, self._inflight = self._inflight, []
        targets, self._obs_targets = self._obs_targets, None
        if not inflight or targets is None:
            return 0
        flushed = 0
        for entry in inflight:
            if entry["merged"]:
                continue
            future = entry["future"]
            if (
                not future.done()  # type: ignore[attr-defined]
                or future.cancelled()  # type: ignore[attr-defined]
                or future.exception() is not None  # type: ignore[attr-defined]
            ):
                continue
            _, payload = future.result()  # type: ignore[attr-defined]
            self._merge_payload(str(entry["label"]), payload, targets)
            flushed += 1
        return flushed

    @staticmethod
    def _merge_payload(label: str, payload, targets: tuple) -> None:
        """Fold one worker obs payload into the parent-side recorders."""
        if payload is None:
            return
        parent_rec, parent_tracer, parent_bus, parent_store = targets
        if parent_rec is not None and "perf" in payload:
            parent_rec.merge_snapshot(payload["perf"])
        if parent_tracer is not None and "spans" in payload:
            parent_tracer.merge(payload["spans"], process=label)
        if parent_bus is not None and "events" in payload:
            parent_bus.ingest(payload["events"], process=label)
        if parent_store is not None and "cache" in payload:
            # Worker hit/miss deltas fold into the parent store's
            # stats, so sweep-level cache accounting covers the
            # whole pool, not just the parent process.
            parent_store.stats.merge(payload["cache"])

    def __enter__(self) -> "ExplorationEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def _ensure_pool(self, specs: Sequence[SoCSpec]) -> ProcessPoolExecutor:
        """The persistent pool, (re)created when the context changes.

        The context key is identity-based (the spec objects and the
        engine's library/config/selector); the engine holds strong
        references to the keyed objects so the ids cannot be recycled
        while the pool lives.  Re-running the same sweep — the common
        case for benchmarks and iterative exploration — reuses the
        warm pool and ships only descriptors.
        """
        from ..cache.context import active_store

        store = active_store()
        key = (
            self.workers,
            id(self.library),
            id(self.config),
            id(self.select),
            id(store),
            tuple(id(s) for s in specs),
        )
        if self._pool is not None and self._pool_key == key:
            return self._pool
        self.close()
        self._pool_refs = (self.library, self.config, self.select, tuple(specs), store)
        self._pool_key = key
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_pool_init,
            initargs=(tuple(specs), self.library, self.config, self.select, store),
        )
        return self._pool

    # -- execution -----------------------------------------------------

    def run(self, tasks: Sequence[SweepTask]) -> List[SweepRecord]:
        """Execute tasks, preserving input order in the output.

        When the caller has an active :func:`~repro.perf.active_recorder`
        or :func:`~repro.obs.active_tracer`, parallel runs ask each
        worker to capture its own perf/span snapshots and merge them
        back here — serial and parallel sweeps then observe the same
        counters (workers used to drop them silently).  Merged worker
        span streams are relabelled ``task<i>`` by submission index, so
        the combined trace stays deterministic even though worker pids
        and scheduling are not.
        """
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) <= 1:
            bus = active_bus()
            if bus is None:
                return [_execute_task(t) for t in tasks]
            # Streaming serial sweep: same progress feed as the pool
            # path, so live observers need not care about ``workers``.
            bus.emit(
                "progress",
                "sweep.start",
                attrs={"tasks": len(tasks), "workers": 1},
            )
            from ..cache.context import active_store

            store = active_store()
            records = []
            for i, t in enumerate(tasks):
                before = store.stats.snapshot() if store is not None else None
                record = _execute_task(t)
                records.append(record)
                self._emit_task_progress(
                    bus,
                    i,
                    len(tasks),
                    record,
                    cache=store.stats.diff(before) if store is not None else None,
                )
            bus.emit(
                "progress",
                "sweep.done",
                attrs={
                    "tasks": len(tasks),
                    "feasible": sum(1 for r in records if r.feasible),
                },
            )
            return records
        from ..cache.context import active_store

        parent_rec = active_recorder()
        parent_tracer = active_tracer()
        parent_bus = active_bus()
        parent_store = active_store()
        collect = (
            parent_rec is not None
            or parent_tracer is not None
            or parent_bus is not None
        )
        specs: List[SoCSpec] = []
        spec_index: Dict[int, int] = {}
        descriptors: List[_TaskDescriptor] = []
        for t in tasks:
            i = spec_index.get(id(t.spec))
            if i is None:
                i = len(specs)
                spec_index[id(t.spec)] = i
                specs.append(t.spec)
            cfg_diff, cfg_full = _dataclass_diff(self.config, t.config)
            lib_diff, lib_full = _dataclass_diff(self.library, t.library)
            descriptors.append(
                _TaskDescriptor(
                    spec_index=i,
                    knobs=dict(t.knobs),
                    config_diff=cfg_diff or None,
                    config_full=cfg_full,
                    library_diff=lib_diff or None,
                    library_full=lib_full,
                    select=None if t.select is self.select else t.select,
                    collect_obs=collect,
                )
            )
        pool = self._ensure_pool(specs)
        targets = (parent_rec, parent_tracer, parent_bus, parent_store)
        futures = [pool.submit(_execute_descriptor, d) for d in descriptors]
        self._inflight = [
            {"future": f, "label": "task%d" % i, "merged": False}
            for i, f in enumerate(futures)
        ]
        self._obs_targets = targets
        if parent_bus is not None:
            parent_bus.emit(
                "progress",
                "sweep.start",
                attrs={"tasks": len(tasks), "workers": self.workers},
            )
        records: List[SweepRecord] = []
        try:
            # Results are consumed in submission order: the merge (and
            # every progress event the parent emits) happens at a
            # deterministic point in the stream even though worker
            # scheduling is not.
            for i, future in enumerate(futures):
                record, payload = future.result()
                self._inflight[i]["merged"] = True
                self._merge_payload("task%d" % i, payload, targets)
                records.append(record)
                if parent_bus is not None:
                    self._emit_task_progress(
                        parent_bus,
                        i,
                        len(tasks),
                        record,
                        cache=payload.get("cache") if payload else None,
                    )
        except Exception:
            # A broken pool (worker crash, unpicklable payload) stays
            # broken; drop it so the next run starts clean.  close()
            # flushes the obs payloads of tasks that did complete.
            self.close()
            raise
        self._inflight = []
        self._obs_targets = None
        if parent_bus is not None:
            parent_bus.emit(
                "progress",
                "sweep.done",
                attrs={
                    "tasks": len(tasks),
                    "feasible": sum(1 for r in records if r.feasible),
                },
            )
        return records

    @staticmethod
    def _emit_task_progress(
        bus: EventBus,
        index: int,
        total: int,
        record: SweepRecord,
        cache: Optional[Mapping[str, int]] = None,
    ) -> None:
        """One ``progress`` event per finished sweep point.

        Wall-clock (the point's ``elapsed_s``) rides in ``timing`` so
        the stream stays byte-deterministic under ``timing=False``;
        ``cache`` is the task's hit/miss counter delta (live view of
        the store's effectiveness per point).
        """
        attrs: Dict[str, object] = {
            "index": index,
            "total": total,
            "knobs": dict(record.knobs),
            "feasible": record.feasible,
            "design_points": record.design_points,
        }
        if cache is not None:
            attrs["cache_hits"] = sum(
                v for k, v in cache.items() if k.startswith("hits.")
            )
            attrs["cache_misses"] = sum(
                v for k, v in cache.items() if k.startswith("misses.")
            )
        bus.emit(
            "progress",
            "sweep.task",
            attrs=attrs,
            timing={"elapsed_s": record.elapsed_s},
        )

    def task(
        self,
        spec: SoCSpec,
        knobs: Mapping[str, object],
        library: Optional[NocLibrary] = None,
        config: Optional[SynthesisConfig] = None,
    ) -> SweepTask:
        """One sweep task carrying the engine's context (public: call
        sites with pre-partitioned specs build task lists directly)."""
        return SweepTask(
            spec=spec,
            library=library if library is not None else self.library,
            config=config if config is not None else self.config,
            knobs=dict(knobs),
            select=self.select,
        )

    # Historical private name, used by older call sites.
    _task = task

    # -- single-axis sweeps --------------------------------------------

    def island_count_tasks(
        self,
        spec: SoCSpec,
        counts: Sequence[int],
        strategies: Sequence[str] = ("logical", "communication"),
    ) -> List[SweepTask]:
        """Tasks of the Figures 2/3 sweep: island count x strategy."""
        tasks = []
        for strategy in strategies:
            partition = _strategy_fn(strategy)
            for n in counts:
                tasks.append(
                    self._task(
                        partition(spec, n), {"islands": n, "strategy": strategy}
                    )
                )
        return tasks

    def island_count_exploration(
        self,
        spec: SoCSpec,
        counts: Sequence[int],
        strategies: Sequence[str] = ("logical", "communication"),
    ) -> List[SweepRecord]:
        return self.run(self.island_count_tasks(spec, counts, strategies))

    def alpha_exploration(
        self, spec: SoCSpec, alphas: Sequence[float]
    ) -> List[SweepRecord]:
        """Sweep the Definition-1 weight between bandwidth and latency."""
        return self.run(
            [
                self._task(
                    spec,
                    {"alpha": alpha},
                    config=dataclasses.replace(self.config, alpha=alpha),
                )
                for alpha in alphas
            ]
        )

    def data_width_exploration(
        self, spec: SoCSpec, widths: Sequence[int]
    ) -> List[SweepRecord]:
        """Sweep the NoC link data width ("could be varied in a range")."""
        tasks = []
        for width in widths:
            if width <= 0:
                raise SpecError("link width must be positive, got %r" % width)
            tasks.append(
                self._task(
                    spec,
                    {"width_bits": width},
                    library=dataclasses.replace(self.library, data_width_bits=width),
                )
            )
        return self.run(tasks)

    # -- runtime-energy objective --------------------------------------

    def runtime_exploration(
        self,
        spec: SoCSpec,
        counts: Sequence[int],
        trace: UseCaseTrace,
        strategies: Sequence[str] = ("logical",),
        policy: str = "break_even",
        model: Optional[GatingModel] = None,
    ) -> List[SweepRecord]:
        """Island-count sweep selecting by *trace energy*, not mW snapshot.

        Each sweep point synthesizes as usual but the chosen design
        point is the one with the lowest simulated energy over
        ``trace`` under ``policy`` (:class:`RuntimeEnergySelector`) —
        the dynamic analogue of ``best_by_power``.  The trace's use
        cases must validate against every partitioned spec, so traces
        built from curated scenario sets require partitionings that
        keep the benchmark name (see ``cli._partitioned``).
        """
        select = RuntimeEnergySelector(trace=trace, policy=policy, model=model)
        tasks = [
            dataclasses.replace(t, select=select)
            for t in self.island_count_tasks(spec, counts, strategies)
        ]
        return self.run(tasks)

    # -- cross-product sweep -------------------------------------------

    def grid_exploration(
        self,
        spec: SoCSpec,
        islands: Optional[Sequence[int]] = None,
        strategies: Sequence[str] = ("logical",),
        alphas: Optional[Sequence[float]] = None,
        widths: Optional[Sequence[int]] = None,
    ) -> "GridResult":
        """Sweep the cross-product of every provided knob axis.

        Axes left as ``None`` are pinned at the engine config's value
        and omitted from the knob labels.  ``islands=None`` uses the
        spec's existing island assignment (then ``strategies`` is
        ignored).  Returns every record plus the Pareto-merged subset
        (:func:`pareto_merge`) over the whole grid.
        """
        isl_axis: Sequence[Tuple[Optional[str], Optional[int]]]
        if islands is None:
            isl_axis = [(None, None)]
        else:
            isl_axis = [(s, n) for s in strategies for n in islands]
            for s in strategies:
                _strategy_fn(s)  # validate up front, before any synthesis
        alpha_axis: Sequence[Optional[float]] = (
            [None] if alphas is None else list(alphas)
        )
        width_axis: Sequence[Optional[int]] = [None] if widths is None else list(widths)
        for width in width_axis:
            if width is not None and width <= 0:
                raise SpecError("link width must be positive, got %r" % width)

        tasks = []
        partitioned: Dict[Tuple[str, int], SoCSpec] = {}
        for (strategy, n), alpha, width in itertools.product(
            isl_axis, alpha_axis, width_axis
        ):
            knobs: Dict[str, object] = {}
            task_spec = spec
            if strategy is not None:
                key = (strategy, n)
                if key not in partitioned:
                    partitioned[key] = _strategy_fn(strategy)(spec, n)
                task_spec = partitioned[key]
                knobs["islands"] = n
                knobs["strategy"] = strategy
            config = self.config
            if alpha is not None:
                knobs["alpha"] = alpha
                config = dataclasses.replace(config, alpha=alpha)
            library = self.library
            if width is not None:
                knobs["width_bits"] = width
                library = dataclasses.replace(library, data_width_bits=width)
            tasks.append(self._task(task_spec, knobs, library=library, config=config))
        records = self.run(tasks)
        return GridResult(records=records, pareto=pareto_merge(records))


@dataclass(frozen=True)
class GridResult:
    """Outcome of :meth:`ExplorationEngine.grid_exploration`."""

    #: Every sweep point, in deterministic grid order.
    records: List[SweepRecord]
    #: Non-dominated feasible records over the whole grid.
    pareto: List[SweepRecord]

    def rows(self) -> List[Dict[str, object]]:
        """All records as table rows (aligned keys, see ``row``)."""
        return [r.row() for r in self.records]

    def pareto_rows(self) -> List[Dict[str, object]]:
        """The Pareto-merged records as table rows."""
        return [r.row() for r in self.pareto]


@dataclass(frozen=True)
class ObjectiveSelector:
    """Adapt any :class:`~repro.core.objective.Objective` to a selector.

    The pickling-friendly bridge between the objective layer and
    :class:`SweepTask`: selection delegates to
    :meth:`Objective.select` (deterministic cost-then-index
    tie-breaking), and the objective's sweep columns flow into
    :attr:`SweepRecord.extras`.
    """

    objective: Objective

    def __call__(self, space: DesignSpace) -> DesignPoint:
        return self.objective.select(space)

    def columns(self, point: DesignPoint) -> Dict[str, object]:
        return self.objective.columns(point)

    def column_names(self) -> Tuple[str, ...]:
        return self.objective.column_names()


@dataclass(frozen=True)
class RuntimeEnergySelector:
    """Pick the design point with the lowest trace energy.

    Historical name for the trace-energy sweep objective, kept as a
    thin shim over
    :class:`~repro.core.objective.TraceEnergyObjective` (identical
    selection, including the static-power-then-index tie-break); new
    code should pass ``objective=TraceEnergyObjective(...)`` to the
    engine instead (see ``docs/objectives.md``).
    """

    trace: UseCaseTrace
    policy: str = "break_even"
    model: Optional[GatingModel] = None

    def _objective(self) -> TraceEnergyObjective:
        return TraceEnergyObjective(
            trace=self.trace, policy=self.policy, model=self.model
        )

    def __call__(self, space: DesignSpace) -> DesignPoint:
        return self._objective().select(space)

    def columns(self, point: DesignPoint) -> Dict[str, object]:
        return self._objective().columns(point)

    def column_names(self) -> Tuple[str, ...]:
        return self._objective().column_names()


def runtime_exploration(
    spec: SoCSpec,
    counts: Sequence[int],
    trace: UseCaseTrace,
    strategies: Sequence[str] = ("logical",),
    policy: str = "break_even",
    model: Optional[GatingModel] = None,
    library: NocLibrary = DEFAULT_LIBRARY,
    config: Optional[SynthesisConfig] = None,
    workers: int = 1,
) -> List[SweepRecord]:
    """Module-level wrapper over :meth:`ExplorationEngine.runtime_exploration`."""
    with ExplorationEngine(workers, library, config) as engine:
        return engine.runtime_exploration(spec, counts, trace, strategies, policy, model)


def _strategy_fn(strategy: str) -> Callable[[SoCSpec, int], SoCSpec]:
    if strategy == "logical":
        return logical_partitioning
    if strategy == "communication":
        return communication_partitioning
    raise SpecError("unknown strategy %r" % strategy)


# ----------------------------------------------------------------------
# Module-level wrappers (historical API, plus the ``workers`` knob)
# ----------------------------------------------------------------------


def island_count_exploration(
    spec: SoCSpec,
    counts: Sequence[int],
    strategies: Sequence[str] = ("logical", "communication"),
    library: NocLibrary = DEFAULT_LIBRARY,
    config: Optional[SynthesisConfig] = None,
    select: Callable[[DesignSpace], DesignPoint] = DesignSpace.best_by_power,
    workers: int = 1,
    objective: Optional[Objective] = None,
) -> List[SweepRecord]:
    """The Figures 2/3 sweep: island count x assignment strategy."""
    with ExplorationEngine(workers, library, config, select, objective) as engine:
        return engine.island_count_exploration(spec, counts, strategies)


def alpha_exploration(
    spec: SoCSpec,
    alphas: Sequence[float],
    library: NocLibrary = DEFAULT_LIBRARY,
    config: Optional[SynthesisConfig] = None,
    select: Callable[[DesignSpace], DesignPoint] = DesignSpace.best_by_power,
    workers: int = 1,
    objective: Optional[Objective] = None,
) -> List[SweepRecord]:
    """Sweep the Definition-1 weight between bandwidth and latency."""
    with ExplorationEngine(workers, library, config, select, objective) as engine:
        return engine.alpha_exploration(spec, alphas)


def data_width_exploration(
    spec: SoCSpec,
    widths: Sequence[int],
    library: NocLibrary = DEFAULT_LIBRARY,
    config: Optional[SynthesisConfig] = None,
    select: Callable[[DesignSpace], DesignPoint] = DesignSpace.best_by_power,
    workers: int = 1,
    objective: Optional[Objective] = None,
) -> List[SweepRecord]:
    """Sweep the NoC link data width ("could be varied in a range")."""
    with ExplorationEngine(workers, library, config, select, objective) as engine:
        return engine.data_width_exploration(spec, widths)


def grid_exploration(
    spec: SoCSpec,
    islands: Optional[Sequence[int]] = None,
    strategies: Sequence[str] = ("logical",),
    alphas: Optional[Sequence[float]] = None,
    widths: Optional[Sequence[int]] = None,
    library: NocLibrary = DEFAULT_LIBRARY,
    config: Optional[SynthesisConfig] = None,
    select: Callable[[DesignSpace], DesignPoint] = DesignSpace.best_by_power,
    workers: int = 1,
    objective: Optional[Objective] = None,
) -> GridResult:
    """Cross-product sweep over island/strategy/alpha/width knobs."""
    with ExplorationEngine(workers, library, config, select, objective) as engine:
        return engine.grid_exploration(spec, islands, strategies, alphas, widths)


def pareto_records(space: DesignSpace) -> List[Dict[str, object]]:
    """The (power, latency) Pareto front as table rows."""
    return [
        {
            "point": p.label(),
            "noc_power_mw": round(p.power_mw, 2),
            "avg_latency_cycles": round(p.avg_latency_cycles, 2),
            "switches": p.total_switches,
            "intermediate": p.num_intermediate_used,
        }
        for p in space.pareto_front()
    ]
