"""Island frequency planning (Algorithm 1, steps 1–2).

For a fixed link data width, the frequency of the NoC inside a voltage
island is set by the single NI link that must carry the most bandwidth:
"the frequency of the switches in an island is determined by the link
that has to carry the highest bandwidth from or to a core in the
island" (Section 4).

The chosen frequency then bounds the switch size — a larger crossbar
has a longer critical path — yielding ``max_sw_size_j`` and from it the
minimum switch count ``min_sw_j = ceil(|VCG_j| / max_sw_size_j)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

from .. import units
from ..exceptions import SpecError
from ..power.library import NocLibrary
from .spec import SoCSpec


@dataclass(frozen=True)
class IslandPlan:
    """Frequency and switch-size budget for one voltage island.

    Attributes
    ----------
    island:
        Island id.
    num_cores:
        Cores assigned to the island.
    peak_ni_bandwidth_mbps:
        Largest per-core NI-link bandwidth in the island.
    freq_mhz:
        Chosen NoC clock for the island (quantized up).
    max_switch_size:
        ``max_sw_size_j``: largest port count per direction a switch in
        this island may have and still close timing at ``freq_mhz``.
    min_switches:
        ``min_sw_j``: fewest switches able to host all cores under the
        size bound.
    """

    island: int
    num_cores: int
    peak_ni_bandwidth_mbps: float
    freq_mhz: float
    max_switch_size: int
    min_switches: int

    @property
    def max_switches(self) -> int:
        """One switch per core is the upper end of the sweep."""
        return max(1, self.num_cores)


def plan_island(
    spec: SoCSpec,
    island: int,
    library: NocLibrary,
    freq_step_mhz: float = 25.0,
    min_freq_mhz: float = 100.0,
) -> IslandPlan:
    """Compute the :class:`IslandPlan` for one island.

    ``min_freq_mhz`` is a practical floor: islands whose cores only
    trickle data still get a usable NoC clock rather than a pathological
    few-MHz domain.
    """
    cores = spec.cores_in_island(island)
    if not cores:
        raise SpecError("island %r of spec %r has no cores" % (island, spec.name))
    peak_bw = spec.island_peak_bandwidth_mbps(island)
    needed = library.required_freq_mhz(peak_bw)
    freq = units.quantize_frequency(max(needed, min_freq_mhz), freq_step_mhz)
    max_size = library.max_switch_size_for_freq(freq)
    min_switches = max(1, int(math.ceil(len(cores) / float(max_size))))
    return IslandPlan(
        island=island,
        num_cores=len(cores),
        peak_ni_bandwidth_mbps=peak_bw,
        freq_mhz=freq,
        max_switch_size=max_size,
        min_switches=min_switches,
    )


def plan_all_islands(
    spec: SoCSpec,
    library: NocLibrary,
    freq_step_mhz: float = 25.0,
    min_freq_mhz: float = 100.0,
) -> Dict[int, IslandPlan]:
    """Island plans for every island in the spec (Algorithm 1 step 1)."""
    return {
        isl: plan_island(spec, isl, library, freq_step_mhz, min_freq_mhz)
        for isl in spec.islands
    }


def intermediate_island_freq_mhz(plans: Mapping[int, IslandPlan]) -> float:
    """Clock for the intermediate NoC island.

    The intermediate island aggregates cross-island traffic from every
    other island, so it must keep up with the fastest of them; we run it
    at the maximum island frequency (DESIGN.md decision 6.2).
    """
    if not plans:
        raise SpecError("no island plans given")
    return max(p.freq_mhz for p in plans.values())
