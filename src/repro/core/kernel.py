"""Routing-kernel selection: ``auto`` / ``vector`` / ``scalar``.

The Algorithm-1 hot path has two interchangeable implementations (see
:mod:`repro.core.paths`):

* ``scalar`` — the historical per-edge Python loop, kept byte-for-byte
  as the reference implementation;
* ``vector`` — the batched, array-backed kernel: a provable
  direct-open dominance shortcut that answers most searches in O(1),
  plus whole-frontier edge-cost evaluation over flat arrays
  (``numpy`` when importable, a pure-Python flat-array walk
  otherwise).  Produces byte-identical design points, routes and
  objective costs (pinned by ``tests/test_kernel_parity.py``).

``auto`` resolves to ``vector`` — the fallback path keeps it correct
without numpy — unless the ``REPRO_KERNEL`` environment variable names
an explicit kernel (the CI matrix uses this to force each
implementation across the whole test suite without touching configs).

numpy is an *optional* dependency (the ``repro[fast]`` extra): every
import in the package goes through :data:`HAVE_NUMPY` /
:func:`numpy_or_none` so the base install stays dependency-free.
"""

from __future__ import annotations

import os
from typing import Optional

from ..exceptions import SpecError

#: Valid values of the ``kernel`` knob everywhere it appears
#: (SynthesisConfig, PathAllocator, ExplorationEngine, CLI).
KERNEL_CHOICES = ("auto", "vector", "scalar")

#: Environment override consulted when the configured kernel is
#: ``auto`` (used by the CI matrix to force one implementation).
KERNEL_ENV_VAR = "REPRO_KERNEL"

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAVE_NUMPY = False


def numpy_or_none():
    """The ``numpy`` module when importable, else ``None``.

    Callers branch on the return value instead of re-importing, so the
    import cost (and the absence handling) lives in one place.
    """
    return _np


def resolve_kernel(kernel: str = "auto") -> str:
    """Resolve a kernel knob value to a concrete implementation name.

    ``auto`` honours :data:`KERNEL_ENV_VAR` when it names a concrete
    kernel and otherwise picks ``vector`` (which internally falls back
    to pure-Python array walks when numpy is absent — the choice is
    about the algorithm, not the numerics backend).  Explicit
    ``vector`` / ``scalar`` values pass through untouched, so a config
    pin always beats the environment.
    """
    if kernel not in KERNEL_CHOICES:
        raise SpecError(
            "unknown kernel %r (choose from %s)" % (kernel, ", ".join(KERNEL_CHOICES))
        )
    if kernel == "auto":
        env = os.environ.get(KERNEL_ENV_VAR, "").strip().lower()
        if env in ("vector", "scalar"):
            return env
        return "vector"
    return kernel
