"""Unified objective layer: pluggable cost models for synthesis and DSE.

Every layer of the flow used to score design points its own way:
``DesignSpace.best_by_power`` hard-coded the Figure-2 power snapshot,
``RuntimeEnergySelector`` re-rolled a trace-energy key, and the runtime
policies compared island economics inline.  This module extracts the
one abstraction they all share — *given a design point, produce a
deterministic cost vector and a feasibility verdict* — so new objective
families (trace energy, wake-latency QoS, weighted composites) plug
into Algorithm 1, the sweep engine and the CLI without touching them.

Contract
--------

An :class:`Objective` maps a
:class:`~repro.core.design_point.DesignPoint` to an
:class:`ObjectiveResult`:

* ``cost`` — a tuple of floats compared lexicographically, lower is
  better.  Every built-in appends enough tie-break components that
  equal-cost points resolve deterministically; selection always appends
  the point index as the final tie-break.
* ``feasible`` — objectives may *reject* points outright (the QoS
  family does), not just rank them.  Rejected points never win
  selection, and under co-synthesis
  (``SynthesisConfig(objective=...)``) they are dropped from the design
  space mid-sweep, exactly like a routing failure.
* ``metrics`` — named numbers for reports (trace energy, worst stall).

Objectives must be deterministic, side-effect free, and picklable
(frozen dataclasses), so sweeps can fan them out across process pools.

Built-ins
---------

:class:`StaticPowerObjective`
    The paper's Algorithm-1 objective: Figure-2 dynamic power, with
    average zero-load latency as tie-break.  The default everywhere —
    selection under it is byte-identical to the historical
    ``best_by_power`` path.
:class:`StaticLatencyObjective`
    The Figure-3 metric, with power as tie-break (``best_by_latency``).
:class:`StaticAreaObjective` / :class:`WireLengthObjective`
    Floorplan-quality objectives over ``soc_power.noc_area_mm2`` and
    ``wires.total_length_mm``; the resilience subsystem reuses their
    metrics to cost spare-path overhead.
:class:`TraceEnergyObjective`
    Replays a use-case trace through the runtime shutdown simulator
    (:func:`repro.runtime.simulate.simulate_trace`) and scores total
    trace energy.  Passing it to ``SynthesisConfig(objective=...)``
    makes Algorithm 1 spend its switch-count/partition choices on
    *gating opportunity* instead of the static snapshot — trace-driven
    co-synthesis, not post-selection.
:class:`WakeLatencyQoSObjective`
    A constraint wrapper: per-island wake stalls are propagated into
    per-flow wake-latency budgets, and any point (or gating policy)
    whose worst-case flow stall exceeds its budget is rejected as
    infeasible — energy alone never overrides a deadline.  Scoring of
    surviving points delegates to a base objective.
:class:`MultiTraceObjective`
    Worst-case (or mean) trace energy over a *set* of traces, so
    co-synthesis stops overfitting a single Markov walk.
:class:`CompositeObjective`
    Weighted sum over the primary cost components of several
    objectives; feasibility is the conjunction.

:class:`repro.resilience.coverage.ResilienceObjective` joins the
registry from the resilience package: it vetoes points whose
k-protected fault coverage misses a target and costs the spare-path
overhead lexicographically after a base objective (see
``docs/resilience.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import InfeasibleError, SpecError
from ..power.gating import GatingModel
from ..runtime.policies import make_policy
from ..runtime.simulate import simulate_trace
from ..runtime.trace import UseCaseTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .design_point import DesignPoint, DesignSpace

#: Canonical objective names, in presentation order (CLI choices).
OBJECTIVE_NAMES: Tuple[str, ...] = (
    "static_power",
    "static_latency",
    "static_area",
    "wire_length",
    "trace_energy",
    "multi_trace",
    "wake_qos",
    "resilience",
    "recovery",
)

#: Default per-flow wake-latency budget (ms) when none is specified.
#: Island wake ramps in the default :class:`GatingModel` are tens of
#: microseconds, so 50 µs passes well-behaved break-even gating on the
#: built-in benches while still catching pathological policies; real
#: QoS work should pass explicit per-flow budgets.
DEFAULT_WAKE_BUDGET_MS = 0.05


@dataclass(frozen=True)
class ObjectiveResult:
    """Outcome of evaluating one objective on one design point."""

    #: Lexicographic cost vector; lower is better.  Meaningless when
    #: ``feasible`` is False (by convention ``(inf,)``).
    cost: Tuple[float, ...]
    #: False when the objective *rejects* the point (constraint family).
    feasible: bool = True
    #: Human-readable rejection reason (None when feasible).
    reason: Optional[str] = None
    #: Named metrics for reports and sweep columns.
    metrics: Mapping[str, float] = field(default_factory=dict)


class Objective:
    """Base cost model: scores (and may reject) design points.

    Subclasses implement :meth:`evaluate`; everything else — selection,
    tie-breaking, sweep columns — is shared.  Subclasses should be
    frozen dataclasses so sweep tasks carrying them stay picklable.
    """

    #: Canonical objective name; subclasses override.
    name = "abstract"

    def evaluate(self, point: "DesignPoint") -> ObjectiveResult:
        """Score one design point."""
        raise NotImplementedError

    def key(self, point: "DesignPoint") -> Tuple[float, ...]:
        """Deterministic comparison key: cost vector plus point index."""
        return self.evaluate(point).cost + (float(point.index),)

    def partial_cost(self, point: "DesignPoint") -> Optional[Tuple[float, ...]]:
        """A cheap *exact prefix* of :meth:`evaluate`'s cost vector.

        The objective-aware sweep pruning hook
        (``SynthesisConfig(prune_sweep=True)``): when the returned
        prefix already compares strictly greater than the incumbent's
        cost over its length, the candidate can never win selection
        and the expensive remainder of the evaluation (trace replay,
        spare-path protection) is skipped.  Contract: the returned
        tuple must equal ``evaluate(point).cost[:len(prefix)]`` for
        every feasible point — a *bound* is not enough, only an exact
        prefix preserves lexicographic comparability.  Return ``None``
        (the default) when no cheap prefix exists; such objectives are
        never pruned.
        """
        return None

    def select(self, space: "DesignSpace") -> "DesignPoint":
        """The best feasible point of a design space under this objective.

        Raises :class:`InfeasibleError` when the space is empty or the
        objective rejects every point.  Ties resolve by cost vector
        then point index, so selection is deterministic whatever order
        equal-cost points were synthesized in.
        """
        space.require_feasible()
        # Co-synthesis already scored every point under the space's
        # objective; reuse those results instead of re-evaluating
        # (for trace objectives that halves the simulation count).
        reuse = space.objective is self
        best: Optional["DesignPoint"] = None
        best_key: Optional[Tuple[float, ...]] = None
        reasons: List[str] = []
        for point in space.points:
            if reuse and point.objective_result is not None:
                result = point.objective_result
            else:
                result = self.evaluate(point)
            if not result.feasible:
                reasons.append(result.reason or "rejected")
                continue
            k = result.cost + (float(point.index),)
            if best_key is None or k < best_key:
                best, best_key = point, k
        if best is None:
            raise InfeasibleError(
                "objective %s rejected all %d design points of %s (%s)"
                % (
                    self.describe(),
                    len(space.points),
                    space.spec_name,
                    "; ".join(sorted(set(reasons))[:3]),
                )
            )
        return best

    def column_names(self) -> Tuple[str, ...]:
        """Names of the sweep columns this objective contributes."""
        return ()

    def columns(self, point: "DesignPoint") -> Dict[str, object]:
        """Sweep-row columns for a selected point (see ``column_names``)."""
        return {}

    def describe(self) -> str:
        """Human-readable one-liner for reports and error messages."""
        return self.name


@dataclass(frozen=True)
class StaticPowerObjective(Objective):
    """Figure-2 dynamic power, latency tie-break (the paper's default)."""

    name = "static_power"

    def evaluate(self, point: "DesignPoint") -> ObjectiveResult:
        return ObjectiveResult(cost=(point.power_mw, point.avg_latency_cycles))

    def partial_cost(self, point: "DesignPoint") -> Tuple[float, ...]:
        return (point.power_mw, point.avg_latency_cycles)


@dataclass(frozen=True)
class StaticLatencyObjective(Objective):
    """Figure-3 zero-load latency, power tie-break."""

    name = "static_latency"

    def evaluate(self, point: "DesignPoint") -> ObjectiveResult:
        return ObjectiveResult(cost=(point.avg_latency_cycles, point.power_mw))

    def partial_cost(self, point: "DesignPoint") -> Tuple[float, ...]:
        return (point.avg_latency_cycles, point.power_mw)


@dataclass(frozen=True)
class StaticAreaObjective(Objective):
    """NoC silicon area, power then latency tie-breaks.

    The floorplan-quality objective the ROADMAP asked for: selection
    minimizes ``soc_power.noc_area_mm2`` (crossbars, NIs, converters),
    so area-frugal topologies win even when a bigger crossbar would
    shave a few mW.  The resilience objective reuses the same metric to
    cost spare-port area overhead.
    """

    name = "static_area"

    def evaluate(self, point: "DesignPoint") -> ObjectiveResult:
        return ObjectiveResult(
            cost=(
                point.soc_power.noc_area_mm2,
                point.power_mw,
                point.avg_latency_cycles,
            ),
            metrics={"noc_area_mm2": point.soc_power.noc_area_mm2},
        )

    def partial_cost(self, point: "DesignPoint") -> Tuple[float, ...]:
        return (
            point.soc_power.noc_area_mm2,
            point.power_mw,
            point.avg_latency_cycles,
        )

    def column_names(self) -> Tuple[str, ...]:
        return ("noc_area_mm2",)

    def columns(self, point: "DesignPoint") -> Dict[str, object]:
        return {"noc_area_mm2": round(point.soc_power.noc_area_mm2, 4)}


@dataclass(frozen=True)
class WireLengthObjective(Objective):
    """Total placed wire length, power then latency tie-breaks.

    Minimizes ``wires.total_length_mm`` over the placed design — the
    routability/congestion proxy.  Like :class:`StaticAreaObjective`
    this is a pure selection objective (no veto) whose metric the
    spare-path overhead costing reuses.
    """

    name = "wire_length"

    def evaluate(self, point: "DesignPoint") -> ObjectiveResult:
        return ObjectiveResult(
            cost=(
                point.wires.total_length_mm,
                point.power_mw,
                point.avg_latency_cycles,
            ),
            metrics={"wire_mm": point.wires.total_length_mm},
        )

    def partial_cost(self, point: "DesignPoint") -> Tuple[float, ...]:
        return (
            point.wires.total_length_mm,
            point.power_mw,
            point.avg_latency_cycles,
        )

    def column_names(self) -> Tuple[str, ...]:
        return ("wire_mm",)

    def columns(self, point: "DesignPoint") -> Dict[str, object]:
        return {"wire_mm": round(point.wires.total_length_mm, 2)}


@dataclass(frozen=True)
class TraceEnergyObjective(Objective):
    """Total simulated energy over a use-case trace under a gating policy.

    The co-synthesis objective: static power only enters as tie-break,
    so a topology that looks worse in mW can win by letting more
    islands gate more often on the actual mode sequence.  Simulation
    runs without the routability audit by default (selection-speed
    parity with the historical ``RuntimeEnergySelector``); QoS-style
    rejection belongs to :class:`WakeLatencyQoSObjective`.
    """

    name = "trace_energy"

    trace: UseCaseTrace = None  # type: ignore[assignment]
    policy: str = "break_even"
    model: Optional[GatingModel] = None
    check_routability: bool = False

    def __post_init__(self) -> None:
        if self.trace is None:
            raise SpecError("trace_energy objective needs a trace")

    def evaluate(self, point: "DesignPoint") -> ObjectiveResult:
        report = simulate_trace(
            point.topology,
            self.trace,
            make_policy(self.policy),
            model=self.model,
            check_routability=self.check_routability,
        )
        return ObjectiveResult(
            cost=(report.total_mj, point.power_mw),
            metrics={
                "trace_mj": report.total_mj,
                "trace_avg_mw": report.average_power_mw,
            },
        )

    def column_names(self) -> Tuple[str, ...]:
        return ("trace_mj",)

    def columns(self, point: "DesignPoint") -> Dict[str, object]:
        return {"trace_mj": round(self.evaluate(point).metrics["trace_mj"], 4)}

    def describe(self) -> str:
        return "%s(%s, %s)" % (self.name, self.trace.name, self.policy)


@dataclass(frozen=True)
class MultiTraceObjective(Objective):
    """Worst-case (or mean) trace energy over a *set* of traces.

    Co-synthesis against a single Markov walk can overfit its
    particular mode sequence; scoring each point over several seeded
    traces and ranking by the worst (default) or mean energy keeps the
    chosen topology robust to which walk the device actually takes.
    The cost vector carries both aggregates — worst first under
    ``aggregate="worst"``, mean first under ``"mean"`` — then static
    power, so equal-robustness points still resolve deterministically.
    """

    name = "multi_trace"

    traces: Tuple[UseCaseTrace, ...] = ()
    policy: str = "break_even"
    model: Optional[GatingModel] = None
    check_routability: bool = False
    #: "worst" ranks by max energy over the traces, "mean" by average.
    aggregate: str = "worst"

    def __post_init__(self) -> None:
        if not self.traces:
            raise SpecError("multi_trace objective needs at least one trace")
        if self.aggregate not in ("worst", "mean"):
            raise SpecError(
                "multi_trace aggregate must be 'worst' or 'mean', got %r"
                % self.aggregate
            )
        names = [t.name for t in self.traces]
        if len(set(names)) != len(names):
            raise SpecError("multi_trace objective: duplicate trace names")

    def energies(self, point: "DesignPoint") -> Dict[str, float]:
        """Per-trace simulated energy (mJ), keyed by trace name."""
        policy = make_policy(self.policy)
        return {
            trace.name: simulate_trace(
                point.topology,
                trace,
                policy,
                model=self.model,
                check_routability=self.check_routability,
            ).total_mj
            for trace in self.traces
        }

    def evaluate(self, point: "DesignPoint") -> ObjectiveResult:
        energies = self.energies(point)
        worst = max(energies.values())
        mean = sum(energies.values()) / len(energies)
        if self.aggregate == "worst":
            cost = (worst, mean, point.power_mw)
        else:
            cost = (mean, worst, point.power_mw)
        metrics = {"trace_worst_mj": worst, "trace_mean_mj": mean}
        for name, mj in energies.items():
            metrics["trace_mj.%s" % name] = mj
        return ObjectiveResult(cost=cost, metrics=metrics)

    def column_names(self) -> Tuple[str, ...]:
        return ("trace_worst_mj", "trace_mean_mj")

    def columns(self, point: "DesignPoint") -> Dict[str, object]:
        metrics = self.evaluate(point).metrics
        return {
            "trace_worst_mj": round(metrics["trace_worst_mj"], 4),
            "trace_mean_mj": round(metrics["trace_mean_mj"], 4),
        }

    def describe(self) -> str:
        return "%s(%d traces, %s, %s)" % (
            self.name,
            len(self.traces),
            self.policy,
            self.aggregate,
        )


@dataclass(frozen=True)
class QoSViolation:
    """One flow whose worst-case wake stall exceeds its budget."""

    flow: Tuple[str, str]
    stall_ms: float
    budget_ms: float

    def describe(self) -> str:
        return "flow %s->%s stalled %.3f ms > budget %.3f ms" % (
            self.flow[0],
            self.flow[1],
            self.stall_ms,
            self.budget_ms,
        )


@dataclass(frozen=True)
class WakeLatencyQoSObjective(Objective):
    """Per-flow wake-latency deadlines as a hard synthesis constraint.

    Replays ``trace`` under ``policy`` with the routability audit on,
    reads the per-flow worst-case wake stall the simulator recorded
    (:attr:`repro.runtime.report.RuntimeReport.flow_stall_ms`), and
    rejects the point when any flow stalls longer than its budget — or
    when any routability violation occurs (a flow crossing a gated
    island has effectively unbounded latency).  Surviving points are
    scored by ``base`` (default: trace energy on the same trace and
    policy), so the objective *composes*: QoS constrains, the base
    ranks.

    Budgets are wake-latency budgets in milliseconds: ``budgets`` maps
    ``(src, dst)`` flow keys to per-flow deadlines, every other flow
    gets ``budget_ms``.
    """

    name = "wake_qos"

    trace: UseCaseTrace = None  # type: ignore[assignment]
    policy: str = "break_even"
    model: Optional[GatingModel] = None
    budget_ms: float = DEFAULT_WAKE_BUDGET_MS
    budgets: Optional[Mapping[Tuple[str, str], float]] = None
    base: Optional[Objective] = None

    def __post_init__(self) -> None:
        if self.trace is None:
            raise SpecError("wake_qos objective needs a trace")
        if self.budget_ms < 0:
            raise SpecError(
                "wake budget must be >= 0 ms, got %r" % self.budget_ms
            )

    def _base(self) -> Objective:
        if self.base is not None:
            return self.base
        return TraceEnergyObjective(
            trace=self.trace, policy=self.policy, model=self.model
        )

    def flow_budget_ms(self, flow: Tuple[str, str]) -> float:
        """The wake-latency budget of one flow."""
        if self.budgets is not None and flow in self.budgets:
            return self.budgets[flow]
        return self.budget_ms

    def _simulate(self, topology):
        """One trace replay with the routability/stall audit on."""
        return simulate_trace(
            topology,
            self.trace,
            make_policy(self.policy),
            model=self.model,
            check_routability=True,
        )

    def violations(self, topology) -> List[QoSViolation]:
        """Per-flow deadline violations of ``policy`` on one topology.

        The policy-admission check: a gating policy whose wake stalls
        break any flow's deadline is rejected here even when it wins on
        energy.  Routability violations are reported as zero-budget
        QoS violations with an infinite stall (no wake ever repairs a
        flow routed through a gated third-party island).
        """
        return self._violations_from(self._simulate(topology))

    def _violations_from(self, report) -> List[QoSViolation]:
        out: List[QoSViolation] = []
        seen = set()
        for v in report.violations:
            if v.flow in seen:
                continue
            seen.add(v.flow)
            out.append(
                QoSViolation(
                    flow=v.flow,
                    stall_ms=math.inf,
                    budget_ms=self.flow_budget_ms(v.flow),
                )
            )
        for flow in sorted(report.flow_stall_ms):
            stall = report.flow_stall_ms[flow]
            budget = self.flow_budget_ms(flow)
            if flow not in seen and stall > budget + 1e-12:
                out.append(
                    QoSViolation(flow=flow, stall_ms=stall, budget_ms=budget)
                )
        return out

    def evaluate(self, point: "DesignPoint") -> ObjectiveResult:
        report = self._simulate(point.topology)
        violations = self._violations_from(report)
        if violations:
            worst = max(violations, key=lambda v: v.stall_ms)
            return ObjectiveResult(
                cost=(math.inf,),
                feasible=False,
                reason="wake QoS: %s%s"
                % (
                    worst.describe(),
                    " (+%d more)" % (len(violations) - 1)
                    if len(violations) > 1
                    else "",
                ),
                metrics={"qos_violations": float(len(violations))},
            )
        if self.base is None:
            # Default base is trace energy on the same trace/policy —
            # the audit replay above already integrated it (the
            # routability check never changes the energy terms), so
            # skip the second simulation a separate base would run.
            base_result = ObjectiveResult(
                cost=(report.total_mj, point.power_mw),
                metrics={
                    "trace_mj": report.total_mj,
                    "trace_avg_mw": report.average_power_mw,
                },
            )
        else:
            base_result = self.base.evaluate(point)
        metrics = dict(base_result.metrics)
        metrics["qos_violations"] = 0.0
        return ObjectiveResult(
            cost=base_result.cost,
            feasible=base_result.feasible,
            reason=base_result.reason,
            metrics=metrics,
        )

    def column_names(self) -> Tuple[str, ...]:
        return self._base().column_names() + ("qos_violations",)

    def columns(self, point: "DesignPoint") -> Dict[str, object]:
        if self.base is None:
            # One audit replay yields both columns (see evaluate()).
            report = self._simulate(point.topology)
            return {
                "trace_mj": round(report.total_mj, 4),
                "qos_violations": len(self._violations_from(report)),
            }
        out = self.base.columns(point)
        out["qos_violations"] = len(self.violations(point.topology))
        return out

    def describe(self) -> str:
        return "%s(%s, %s, %.2fms, base=%s)" % (
            self.name,
            self.trace.name,
            self.policy,
            self.budget_ms,
            self._base().describe(),
        )


@dataclass(frozen=True)
class CompositeObjective(Objective):
    """Weighted sum over the primary cost components of several parts.

    ``cost[0]`` of each part is scaled by its weight and summed; the
    parts' own tie-break components are appended in order so equal
    sums still resolve deterministically.  A point is feasible only
    when *every* part accepts it — constraint objectives keep their
    veto inside a composite.
    """

    parts: Tuple[Objective, ...] = ()
    weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not self.parts:
            raise SpecError("composite objective needs at least one part")
        if self.weights is not None and len(self.weights) != len(self.parts):
            raise SpecError(
                "composite objective: %d weights for %d parts"
                % (len(self.weights), len(self.parts))
            )

    @property
    def name(self) -> str:  # type: ignore[override]
        return "+".join(p.name for p in self.parts)

    def _weights(self) -> Tuple[float, ...]:
        return self.weights if self.weights is not None else (1.0,) * len(self.parts)

    def evaluate(self, point: "DesignPoint") -> ObjectiveResult:
        total = 0.0
        tail: List[float] = []
        metrics: Dict[str, float] = {}
        for part, weight in zip(self.parts, self._weights()):
            result = part.evaluate(point)
            if not result.feasible:
                return ObjectiveResult(
                    cost=(math.inf,),
                    feasible=False,
                    reason="%s: %s" % (part.name, result.reason or "rejected"),
                    metrics=dict(result.metrics),
                )
            total += weight * result.cost[0]
            tail.extend(result.cost)
            for k, v in result.metrics.items():
                metrics["%s.%s" % (part.name, k)] = v
        return ObjectiveResult(cost=(total,) + tuple(tail), metrics=metrics)

    def column_names(self) -> Tuple[str, ...]:
        names: List[str] = []
        for part in self.parts:
            for col in part.column_names():
                if col not in names:
                    names.append(col)
        return tuple(names)

    def columns(self, point: "DesignPoint") -> Dict[str, object]:
        out: Dict[str, object] = {}
        for part in self.parts:
            for k, v in part.columns(point).items():
                out.setdefault(k, v)
        return out

    def describe(self) -> str:
        return "+".join(
            "%.3g*%s" % (w, p.describe())
            for p, w in zip(self.parts, self._weights())
        )


def make_objective(
    name: str,
    trace: Optional[UseCaseTrace] = None,
    policy: str = "break_even",
    model: Optional[GatingModel] = None,
    budget_ms: float = DEFAULT_WAKE_BUDGET_MS,
    budgets: Optional[Mapping[Tuple[str, str], float]] = None,
    traces: Optional[Sequence[UseCaseTrace]] = None,
    aggregate: str = "worst",
    fault_model: str = "single_link",
    spare_k: int = 1,
    min_coverage: float = 1.0,
    base: Optional[Objective] = None,
) -> Objective:
    """Instantiate an objective by canonical name (CLI plumbing).

    Hyphens are accepted as underscores; the trace-driven objectives
    (``trace_energy``, ``wake_qos``) require ``trace``, ``multi_trace``
    requires ``traces``, and ``resilience`` takes the fault-model knobs
    (``fault_model``, ``spare_k``, ``min_coverage``) plus an optional
    ``base`` objective to rank the surviving points.
    """
    key = name.strip().lower().replace("-", "_")
    if key == "static_power":
        return StaticPowerObjective()
    if key == "static_latency":
        return StaticLatencyObjective()
    if key == "static_area":
        return StaticAreaObjective()
    if key == "wire_length":
        return WireLengthObjective()
    if key == "multi_trace":
        if not traces:
            raise SpecError("objective %r needs a set of traces" % name)
        return MultiTraceObjective(
            traces=tuple(traces), policy=policy, model=model, aggregate=aggregate
        )
    if key == "resilience":
        # Deferred import: the resilience package sits above the core
        # objective layer (its coverage module imports this one).
        from ..resilience.coverage import ResilienceObjective

        return ResilienceObjective(
            fault_model=fault_model,
            k=spare_k,
            min_coverage=min_coverage,
            base=base,
        )
    if key == "recovery":
        # Deferred import: the control package sits above both the
        # resilience layer and this module.
        from ..control.objective import RecoveryObjective

        return RecoveryObjective(
            fault_model=fault_model,
            k=spare_k,
            min_coverage=min_coverage,
            base=base,
        )
    if key in ("trace_energy", "wake_qos"):
        if trace is None:
            raise SpecError("objective %r needs a use-case trace" % name)
        if key == "trace_energy":
            return TraceEnergyObjective(trace=trace, policy=policy, model=model)
        return WakeLatencyQoSObjective(
            trace=trace,
            policy=policy,
            model=model,
            budget_ms=budget_ms,
            budgets=budgets,
        )
    raise SpecError(
        "unknown objective %r (choose from %s)"
        % (name, ", ".join(OBJECTIVE_NAMES))
    )
