"""Weighted k-way min-cut graph partitioning.

Step 11 of Algorithm 1 performs "k min-cut partitions of VCG(V, E, j)":
cores that communicate heavily (or under tight latency constraints) end
up in the same partition and therefore share a switch, which cuts both
power and hop count.

This module implements the classic EDA recipe the 2009-era tools used:

* **recursive bisection** to go from 2-way to k-way, splitting target
  sizes proportionally so non-power-of-two ``k`` works;
* a **Fiduccia–Mattheyses (FM) style refinement** on each bisection —
  single-node moves ordered by gain, with a balance constraint, taking
  the best prefix of the move sequence (allowing hill-climbing out of
  local minima);
* deterministic, seeded tie-breaking so synthesis results are
  reproducible run to run.

The graph is undirected with non-negative edge weights; callers
symmetrize directed communication graphs first (see
:func:`repro.core.vcg.symmetric_weights`).

A greedy agglomerative variant (:func:`partition_graph` with
``method="greedy"``) is included as an ablation hook (DESIGN.md item 6.1).
"""

from __future__ import annotations

import math
import random
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..exceptions import PartitionError

Node = Hashable
Weights = Mapping[Tuple[Node, Node], float]
Adjacency = Dict[Node, Dict[Node, float]]


def build_adjacency(nodes: Iterable[Node], weights: Weights) -> Adjacency:
    """Build a symmetric adjacency map from an edge-weight mapping.

    Both ``(u, v)`` and ``(v, u)`` entries are accepted; weights for the
    same unordered pair accumulate.  Self-loops are ignored (they never
    affect a cut).
    """
    adj: Adjacency = {n: {} for n in nodes}
    for (u, v), w in weights.items():
        if u == v:
            continue
        if u not in adj or v not in adj:
            raise PartitionError("edge (%r, %r) references unknown node" % (u, v))
        if w < 0:
            raise PartitionError("edge (%r, %r) has negative weight %r" % (u, v, w))
        adj[u][v] = adj[u].get(v, 0.0) + w
        adj[v][u] = adj[v].get(u, 0.0) + w
    return adj


def cut_weight(adj: Adjacency, parts: Sequence[Set[Node]]) -> float:
    """Total weight of edges crossing between different parts.

    Each undirected edge is counted once.
    """
    owner: Dict[Node, int] = {}
    for i, part in enumerate(parts):
        for n in part:
            owner[n] = i
    total = 0.0
    seen: Set[FrozenSet[Node]] = set()
    for u, nbrs in adj.items():
        for v, w in nbrs.items():
            key = frozenset((u, v))
            if key in seen:
                continue
            seen.add(key)
            if owner.get(u) != owner.get(v):
                total += w
    return total


def partition_graph(
    nodes: Sequence[Node],
    weights: Weights,
    k: int,
    max_part_size: Optional[int] = None,
    seed: int = 0,
    method: str = "fm",
) -> List[Set[Node]]:
    """Partition ``nodes`` into ``k`` parts minimizing the cut weight.

    Parameters
    ----------
    nodes:
        The vertex set (order matters only for deterministic
        tie-breaking).
    weights:
        Edge weights; directed duplicates are symmetrized.
    k:
        Number of parts.  Must satisfy ``1 <= k <= len(nodes)``.
    max_part_size:
        Upper bound on any part's cardinality (the paper's
        ``max_sw_size`` constraint: a switch cannot host more cores than
        it has ports).  ``None`` means unbounded.
    seed:
        Seed for tie-breaking; identical inputs and seeds give
        identical outputs.
    method:
        ``"fm"`` (recursive bisection + FM refinement, default) or
        ``"greedy"`` (agglomerative merging, ablation baseline).

    Returns
    -------
    list of sets
        Exactly ``k`` non-empty, disjoint sets covering ``nodes``,
        sorted by their smallest member for determinism.
    """
    node_list = list(nodes)
    n = len(node_list)
    if k < 1:
        raise PartitionError("part count must be >= 1, got %d" % k)
    if k > n:
        raise PartitionError("cannot split %d nodes into %d non-empty parts" % (n, k))
    if len(set(node_list)) != n:
        raise PartitionError("duplicate nodes in partition input")
    if max_part_size is not None:
        if max_part_size < 1:
            raise PartitionError("max_part_size must be >= 1, got %d" % max_part_size)
        if k * max_part_size < n:
            raise PartitionError(
                "%d parts of <= %d nodes cannot cover %d nodes" % (k, max_part_size, n)
            )
    if method not in ("fm", "greedy"):
        raise PartitionError("unknown partition method %r" % method)
    adj = build_adjacency(node_list, weights)
    if k == 1:
        return [set(node_list)]
    if k == n:
        return sorted(({x} for x in node_list), key=_part_sort_key)
    rng = random.Random(seed)
    if method == "fm":
        parts = _recursive_bisect(node_list, adj, k, max_part_size, rng)
    else:
        parts = _greedy_agglomerate(node_list, adj, k, max_part_size)
    parts = [set(p) for p in parts if p]
    if len(parts) != k:
        raise PartitionError(
            "internal error: produced %d parts, expected %d" % (len(parts), k)
        )
    return sorted(parts, key=_part_sort_key)


def _part_sort_key(part: Set[Node]) -> str:
    return min(str(x) for x in part)


# ----------------------------------------------------------------------
# Recursive bisection
# ----------------------------------------------------------------------


def _recursive_bisect(
    nodes: List[Node],
    adj: Adjacency,
    k: int,
    max_part_size: Optional[int],
    rng: random.Random,
) -> List[Set[Node]]:
    """Split ``nodes`` into ``k`` parts by repeated balanced bisection."""
    if k == 1:
        return [set(nodes)]
    n = len(nodes)
    k_left = k // 2
    k_right = k - k_left
    # Target sizes proportional to part counts, adjusted to remain
    # coverable under the per-part size bound on both sides.
    target_left = int(round(n * k_left / float(k)))
    target_left = max(k_left, min(n - k_right, target_left))
    if max_part_size is not None:
        # Each side must be able to hold its nodes within its parts.
        target_left = min(target_left, k_left * max_part_size)
        target_left = max(target_left, n - k_right * max_part_size)
    left, right = _bisect(nodes, adj, target_left, rng)
    sub_adj_left = _induced(adj, left)
    sub_adj_right = _induced(adj, right)
    out = _recursive_bisect(sorted(left, key=str), sub_adj_left, k_left, max_part_size, rng)
    out += _recursive_bisect(sorted(right, key=str), sub_adj_right, k_right, max_part_size, rng)
    return out


def _induced(adj: Adjacency, keep: Set[Node]) -> Adjacency:
    """Adjacency restricted to ``keep`` nodes."""
    return {
        u: {v: w for v, w in nbrs.items() if v in keep}
        for u, nbrs in adj.items()
        if u in keep
    }


def _bisect(
    nodes: List[Node],
    adj: Adjacency,
    target_left: int,
    rng: random.Random,
) -> Tuple[Set[Node], Set[Node]]:
    """Two-way partition with ``target_left`` nodes on the left side.

    Seeding: grow the left side greedily from the highest-connectivity
    node, always absorbing the frontier node with the strongest ties to
    the current left side (a BFS flavoured by weight).  Refinement: FM
    passes until no improving prefix exists.
    """
    n = len(nodes)
    if target_left <= 0 or target_left >= n:
        raise PartitionError(
            "bisection target %d out of range for %d nodes" % (target_left, n)
        )
    order = sorted(nodes, key=lambda u: (-_strength(adj, u), str(u)))
    order_ix = {u: i for i, u in enumerate(order)}
    seed_node = order[0]
    left: Set[Node] = {seed_node}
    # Greedy weighted growth.
    gain: Dict[Node, float] = {}
    for v, w in adj[seed_node].items():
        gain[v] = gain.get(v, 0.0) + w
    while len(left) < target_left:
        candidates = [u for u in nodes if u not in left]
        if not candidates:
            break
        best = max(candidates, key=lambda u: (gain.get(u, 0.0), -order_ix[u]))
        left.add(best)
        for v, w in adj[best].items():
            if v not in left:
                gain[v] = gain.get(v, 0.0) + w
        gain.pop(best, None)
    right = set(nodes) - left
    left, right = _fm_refine(nodes, adj, left, right, target_left, rng)
    return left, right


def _strength(adj: Adjacency, u: Node) -> float:
    return sum(adj[u].values())


def _fm_refine(
    nodes: List[Node],
    adj: Adjacency,
    left: Set[Node],
    right: Set[Node],
    target_left: int,
    rng: random.Random,
    max_passes: int = 8,
    balance_slack: int = 1,
) -> Tuple[Set[Node], Set[Node]]:
    """Fiduccia–Mattheyses refinement of a bisection.

    Repeats passes of tentative single-node moves (each node moved at
    most once per pass, always the highest-gain feasible move) and
    commits the best prefix, until a pass yields no improvement.

    ``balance_slack`` lets the left side deviate from ``target_left`` by
    at most that many nodes, which gives FM room to climb out of local
    minima without destroying the size targets the recursion needs.
    """
    n = len(nodes)
    lo = max(1, target_left - balance_slack)
    hi = min(n - 1, target_left + balance_slack)
    # Int-indexed mirrors of the graph: the pass below runs the gain /
    # lock / best-prefix loop over flat lists instead of hashing nodes.
    # Neighbour lists keep adjacency dict order, so every float
    # accumulates in the historical order; the deterministic string
    # tie-break becomes a precomputed rank (the stable sort leaves
    # equal strings in scan order, which reproduces the strict ``<``
    # comparison on string forms exactly).
    ix = {u: i for i, u in enumerate(nodes)}
    nbrs: List[List[Tuple[int, float]]] = [
        [(ix[v], w) for v, w in adj[u].items()] for u in nodes
    ]
    srank = [0] * n
    for r, i in enumerate(sorted(range(n), key=lambda i: str(nodes[i]))):
        srank[i] = r
    in_left = [u in left for u in nodes]  # committed sides

    for _ in range(max_passes):
        side = in_left[:]  # tentative sides for this pass
        len_l = sum(side)
        locked = [False] * n
        n_locked = 0
        # gain(u) = (external weight) - (internal weight)
        gains = [0.0] * n
        for i in range(n):
            internal = external = 0.0
            u_left = side[i]
            for j, w in nbrs[i]:
                if side[j] == u_left:
                    internal += w
                else:
                    external += w
            gains[i] = external - internal
        moves: List[int] = []
        cum_gain: List[float] = []
        total = 0.0
        while n_locked < n:
            best_i = -1
            best_gain = -math.inf
            best_rank = -1
            for i in range(n):
                if locked[i]:
                    continue
                new_left_size = len_l + (-1 if side[i] else 1)
                if new_left_size < lo or new_left_size > hi:
                    continue
                g = gains[i]
                if g > best_gain or (g == best_gain and srank[i] < best_rank):
                    best_gain = g
                    best_i = i
                    best_rank = srank[i]
            if best_i < 0:
                break
            # Apply the tentative move and update neighbour gains.
            i = best_i
            if side[i]:
                side[i] = False
                len_l -= 1
            else:
                side[i] = True
                len_l += 1
            locked[i] = True
            n_locked += 1
            total += gains[i]
            moves.append(i)
            cum_gain.append(total)
            gains[i] = -gains[i]
            u_left = side[i]
            for j, w in nbrs[i]:
                if locked[j]:
                    continue
                if side[j] == u_left:
                    gains[j] -= 2 * w
                else:
                    gains[j] += 2 * w
        if not moves:
            break
        best_prefix = max(range(len(moves)), key=lambda i: (cum_gain[i], -i))
        if cum_gain[best_prefix] <= 1e-12:
            break  # no improving prefix: converged
        # Commit moves[0..best_prefix] starting from the original sides.
        for m in moves[: best_prefix + 1]:
            in_left[m] = not in_left[m]
    left = {nodes[i] for i in range(n) if in_left[i]}
    right = {nodes[i] for i in range(n) if not in_left[i]}
    # Restore the exact target size if slack left us off-target: move
    # the cheapest boundary nodes.
    left, right = _rebalance(adj, left, right, target_left)
    return left, right


def _rebalance(
    adj: Adjacency, left: Set[Node], right: Set[Node], target_left: int
) -> Tuple[Set[Node], Set[Node]]:
    """Move lowest-cost nodes until ``len(left) == target_left``."""
    left, right = set(left), set(right)
    while len(left) != target_left:
        if len(left) > target_left:
            src, dst = left, right
        else:
            src, dst = right, left

        def move_cost(u: Node) -> float:
            internal = sum(w for v, w in adj[u].items() if v in src)
            external = sum(w for v, w in adj[u].items() if v in dst)
            return internal - external  # lower = cheaper to move

        u = min(sorted(src, key=str), key=move_cost)
        src.remove(u)
        dst.add(u)
    return left, right


# ----------------------------------------------------------------------
# Greedy agglomerative variant (ablation baseline)
# ----------------------------------------------------------------------


def _greedy_agglomerate(
    nodes: List[Node],
    adj: Adjacency,
    k: int,
    max_part_size: Optional[int],
) -> List[Set[Node]]:
    """Merge the heaviest-connected cluster pair until ``k`` remain.

    Simpler and usually worse than FM; kept as a comparison point for
    the partitioner ablation.
    """
    clusters: List[Set[Node]] = [{u} for u in sorted(nodes, key=str)]

    def inter_weight(a: Set[Node], b: Set[Node]) -> float:
        return sum(adj[u].get(v, 0.0) for u in a for v in b)

    while len(clusters) > k:
        best_pair = None
        best_w = -1.0
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                if max_part_size is not None:
                    if len(clusters[i]) + len(clusters[j]) > max_part_size:
                        continue
                w = inter_weight(clusters[i], clusters[j])
                if w > best_w:
                    best_w = w
                    best_pair = (i, j)
        if best_pair is None:
            # Size bound blocks every merge; merge the two smallest that
            # fit, or fail if really impossible.
            sizes = sorted(range(len(clusters)), key=lambda i: (len(clusters[i]), str(min(map(str, clusters[i])))))
            merged = False
            for a in range(len(sizes)):
                for b in range(a + 1, len(sizes)):
                    i, j = sizes[a], sizes[b]
                    if max_part_size is None or len(clusters[i]) + len(clusters[j]) <= max_part_size:
                        best_pair = (min(i, j), max(i, j))
                        merged = True
                        break
                if merged:
                    break
            if not merged:
                raise PartitionError(
                    "size bound %r makes %d-way agglomeration impossible" % (max_part_size, k)
                )
        i, j = best_pair
        clusters[i] = clusters[i] | clusters[j]
        del clusters[j]
    return clusters
