"""Least-cost path allocation for inter-switch traffic (step 15).

Given the core-to-switch assignment of one design point and a number of
indirect switches in the intermediate NoC island, this module connects
the switches and routes every traffic flow:

* flows are processed in **decreasing bandwidth order** ("Choose flows
  in bandwidth order and find the paths");
* for each flow a Dijkstra search over the allowed switch graph picks
  the cheapest mix of **reusing existing links** and **opening new
  ones**; the edge cost is "a linear combination of the power
  consumption increase in opening a new link or reusing an existing
  link and the latency constraint of the flow";
* link opening respects the per-island **maximum switch size** (ports
  per direction) and the **shutdown-safety rule**: for a flow from
  island *a* to island *b*, only switches in *a*, *b* or the
  intermediate island may appear on the path, and new links may only
  run within *a*, within *b*, from *a* to *b*, or to/between/from
  intermediate switches;
* after routing, a flow whose zero-load latency exceeds its budget
  triggers a latency-greedy re-route; if that still violates, the
  design point is infeasible.

The allocator mutates a fresh :class:`~repro.arch.topology.Topology`
and reports success or the first unroutable flow.

Fast path
---------
The synthesis sweep calls the allocator hundreds of times, so the hot
loop is engineered around five observations:

1. the candidate switch set and the shutdown-safety transition rule
   depend only on the ``(src_island, dst_island)`` pair of a flow —
   :class:`PathAllocator` keeps one lazily-built, integer-indexed
   successor structure per pair (shared across routing attempts)
   instead of re-testing every switch pair on every Dijkstra pop;
2. the power terms of an edge cost are pure functions of a handful of
   switch attributes — the static open cost of ``(u.island, v.island,
   u fresh?, v fresh?)`` and the traffic energy-per-bit of
   ``(crossing?, v.n_in, v.n_out)`` — so the inner loop resolves each
   with one int-keyed dict probe; :class:`EdgeCostCache` is the
   object-level view of the same memos with explicit link-open
   invalidation;
3. every intermediate-count and port-reserve retry routes the same
   switch/NI scaffold — the scaffold is built once and cheaply cloned
   per attempt (:meth:`repro.arch.topology.Topology.clone_scaffold`);
4. every edge cost is strictly positive, so an existing ``src -> dst``
   link with spare capacity is the whole answer (the one-hop reuse
   strictly beats every alternative) — no search needed;
5. for the same reason, if the 0-intermediate attempt finished without
   a single dead edge evaluation, paths through indirect switches are
   strictly dominated everywhere and the k>0 attempts are returned
   from the k=0 result instead of re-routed (the dominance skip).

Cached and uncached (``use_cache=False``) runs share one cost
implementation, so they produce byte-identical allocations; the cache
only changes how often the arithmetic re-runs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .. import units
from ..arch.topology import (
    INTERMEDIATE_ISLAND,
    FlowKey,
    Link,
    Switch,
    Topology,
    ni_id,
)
from ..exceptions import SynthesisError
from ..perf.instrument import active_recorder
from ..power.library import NocLibrary
from .frequency import IslandPlan, intermediate_island_freq_mhz
from .spec import SoCSpec, TrafficFlow


@dataclass(frozen=True)
class PathCostConfig:
    """Knobs of the link-cost linear combination.

    ``latency_cost_mw_per_cycle`` converts cycles into the power-cost
    unit so the two objectives combine linearly; the per-flow latency
    pressure scales it by ``min_lat / lat_flow`` (tight flows feel
    latency more, mirroring the Definition 1 weighting).
    """

    #: Weight (mW per cycle) of the latency term in the edge cost.
    latency_cost_mw_per_cycle: float = 0.40
    #: Assumed wire length of an intra-island link before floorplanning.
    nominal_intra_link_mm: float = 1.5
    #: Assumed wire length of a cross-island link before floorplanning.
    nominal_cross_link_mm: float = 4.0
    #: Multiplier on the static (idle + leakage) cost of opening links.
    open_cost_weight: float = 1.0
    #: Allow opening parallel links between the same switch pair when
    #: the first link saturates.
    allow_parallel_links: bool = True


@dataclass
class AllocationResult:
    """Outcome of path allocation for one design point."""

    topology: Optional[Topology]
    success: bool
    failed_flow: Optional[FlowKey] = None
    reason: Optional[str] = None
    links_opened: int = 0
    flows_via_intermediate: int = 0

    def require_topology(self) -> Topology:
        """Return the topology, raising if allocation failed."""
        if not self.success or self.topology is None:
            raise SynthesisError(
                "allocation failed (%s) — no topology" % (self.reason or "unknown")
            )
        return self.topology


# Edge in the Dijkstra search: either reuse an existing link or open a
# new one between two switches.
_REUSE = "reuse"
_OPEN = "open"


def allocate_paths(
    spec: SoCSpec,
    library: NocLibrary,
    plans: Mapping[int, IslandPlan],
    partitions: Mapping[int, Sequence[Set[str]]],
    num_intermediate: int = 0,
    cost_config: Optional[PathCostConfig] = None,
    use_cache: bool = True,
) -> AllocationResult:
    """Build a topology for one design point and route every flow.

    Greedy bandwidth-ordered allocation can exhaust a switch's ports on
    direct inter-island links and then have no port left to reach the
    intermediate island (the hub-and-spoke failure mode).  When that
    happens and indirect switches are available, the allocation retries
    with 1 then 2 ports per switch *reserved* for indirect
    connectivity — direct cross-island link opening is constrained to
    leave that headroom.

    Thin wrapper over :class:`PathAllocator`; synthesis keeps one
    allocator alive across the intermediate-count sweep instead.

    Parameters
    ----------
    spec:
        The SoC specification.
    library:
        Technology library.
    plans:
        Per-island frequency/size plans from
        :func:`repro.core.frequency.plan_all_islands`.
    partitions:
        For every island, the list of core groups sharing a switch
        (output of min-cut partitioning, step 11).
    num_intermediate:
        Number of indirect switches to instantiate in the intermediate
        NoC island (step 14 sweeps this; 0 disables the island).
    cost_config:
        Cost-function knobs; defaults to :class:`PathCostConfig`.
    use_cache:
        Enable the scaffold-clone and edge-cost memoization fast path
        (identical results either way).
    """
    allocator = PathAllocator(
        spec, library, plans, partitions, cost_config, use_cache=use_cache
    )
    return allocator.allocate(num_intermediate)


# ----------------------------------------------------------------------
# Cost model (shared by cached and uncached paths)
# ----------------------------------------------------------------------


def _allowed_transition(
    src_island: int, dst_island: int, isl_a: int, isl_b: int
) -> bool:
    """Shutdown-safety transition rule for a flow from ``isl_a`` to ``isl_b``.

    Permitted directed moves: within the source island, within the
    destination island, source -> destination, source -> intermediate,
    intermediate -> intermediate, intermediate -> destination.  This is
    exactly the "directly across the source and destination VIs or to
    the switches in the intermediate NoC island" rule, and it also makes
    the search graph a DAG across islands (no ping-pong between
    islands, which could never reduce cost).
    """
    mid = INTERMEDIATE_ISLAND
    if src_island == isl_a:
        return dst_island in (isl_a, isl_b, mid) if isl_a != isl_b else dst_island == isl_a
    if src_island == mid:
        return dst_island in (mid, isl_b)
    if src_island == isl_b:
        return dst_island == isl_b
    return False


def _edge_static_open_cost(
    topo: Topology, u: Switch, v: Switch, cfg: PathCostConfig
) -> float:
    """Static power cost (mW) of opening a new link u->v.

    Counts the incremental idle power of the two new switch ports, the
    converter if the link crosses islands, and the leakage of the new
    wire at its nominal pre-floorplan length.
    """
    lib = topo.library
    crossing = u.island != v.island
    length = cfg.nominal_cross_link_mm if crossing else cfg.nominal_intra_link_mm
    # One new output port on u and one new input port on v.
    static = lib.switch_idle_mw_per_mhz_per_port * (u.freq_mhz + v.freq_mhz)
    static += 2.0 * lib.switch_leak_mw_per_port
    # A previously unconnected switch (fresh intermediate) also brings
    # its fixed clock-tree and leakage floor online.
    if u.n_in == 0 and u.n_out == 0:
        static += lib.switch_idle_mw_per_mhz_base * u.freq_mhz + lib.switch_leak_mw_base
    if v.n_in == 0 and v.n_out == 0:
        static += lib.switch_idle_mw_per_mhz_base * v.freq_mhz + lib.switch_leak_mw_base
    static += lib.link_leakage_mw(length)
    if crossing:
        static += lib.fifo_idle_power_mw(u.freq_mhz, v.freq_mhz) + lib.fifo_leakage_mw()
    return static


def _edge_traffic_ebit(
    topo: Topology, u: Switch, v: Switch, cfg: PathCostConfig
) -> float:
    """Energy per bit (pJ) a flow pays on link u->v plus switch v."""
    lib = topo.library
    crossing = u.island != v.island
    length = cfg.nominal_cross_link_mm if crossing else cfg.nominal_intra_link_mm
    ebit = lib.link_ebit_pj(length)
    ebit += lib.switch_ebit_pj(max(v.n_in, 1), max(v.n_out, 1))
    if crossing:
        ebit += lib.fifo_ebit_pj
    return ebit


def _edge_traffic_cost(
    topo: Topology, flow: TrafficFlow, u: Switch, v: Switch, cfg: PathCostConfig
) -> float:
    """Dynamic power (mW) the flow adds on link u->v plus switch v."""
    return units.traffic_power_mw(
        flow.bandwidth_mbps, _edge_traffic_ebit(topo, u, v, cfg)
    )


class EdgeCostCache:
    """Memoized per-switch-pair cost terms with link-open invalidation.

    Two terms of the edge cost are cached per directed switch pair:

    * the **static open cost** — depends on the pair's islands and
      frequencies (static) and on whether either endpoint is still
      unconnected (its clock-tree/leakage floor is charged on first
      use, the ``n_in/n_out`` degeneracy);
    * the **traffic energy per bit** — depends on the pair's islands
      and on the downstream switch's port counts.

    Both inputs change only when a link opens, so
    :meth:`invalidate_switch` must be called for both endpoints of
    every newly opened link (attaching cores also changes port counts,
    but all NIs are attached before routing starts).  Invalidation is a
    per-switch version bump: a pair entry is valid only while both
    endpoints still carry the version it was stored under, which makes
    invalidating a switch O(1) instead of a scan over its pairs.

    Underneath the pair entries sits a second, parameter-keyed level
    shared across routing attempts: the cost terms are pure functions
    of a handful of switch attributes, so a pair miss usually resolves
    to a dict hit instead of re-running the power-model arithmetic.

    Internally everything is integer-indexed: switches map to their
    position in the topology's insertion order, versions live in a flat
    list, and a directed pair keys as ``u_idx * n + v_idx``.  The
    router's inner loop does not go through this class — it uses the
    allocator's int-keyed pure-function memos directly (same value
    functions, different keying); this class is the object-level view
    for tests and non-hot callers.  The router's keying is guarded by
    the cached-vs-uncached determinism tests, which bypass every memo
    in reference mode.

    Capacity checks are *not* cached — residual bandwidth changes on
    every routed flow and is already O(1) to read.
    """

    __slots__ = (
        "_topo",
        "_cfg",
        "_sw_list",
        "_idx_map",
        "_n",
        "_static",
        "_ebit",
        "_versions",
        "_static_by_param",
        "_ebit_by_param",
        "hits",
        "misses",
    )

    def __init__(
        self,
        topo: Topology,
        cfg: PathCostConfig,
        static_by_param: Optional[Dict[tuple, float]] = None,
        ebit_by_param: Optional[Dict[tuple, float]] = None,
        sw_list: Optional[List[Switch]] = None,
    ) -> None:
        self._topo = topo
        self._cfg = cfg
        self._sw_list = sw_list if sw_list is not None else list(topo.switches.values())
        self._idx_map: Optional[Dict[str, int]] = None  # built on first id lookup
        self._n = len(self._sw_list)
        # u_idx * n + v_idx -> (u_version, v_version, value)
        self._static: Dict[int, Tuple[int, int, float]] = {}
        self._ebit: Dict[int, Tuple[int, int, float]] = {}
        self._versions: List[int] = [0] * self._n
        self._static_by_param = static_by_param if static_by_param is not None else {}
        self._ebit_by_param = ebit_by_param if ebit_by_param is not None else {}
        self.hits = 0
        self.misses = 0

    @property
    def _idx_of(self) -> Dict[str, int]:
        """Switch id -> index, built on first object-API lookup.

        The router's inner loop indexes by integer directly and never
        needs this map, so per-attempt construction skips it.
        """
        m = self._idx_map
        if m is None:
            m = self._idx_map = {sw.id: i for i, sw in enumerate(self._sw_list)}
        return m

    def static_open_cost(self, u: Switch, v: Switch) -> float:
        """Memoized :func:`_edge_static_open_cost` for ``u -> v``."""
        ui = self._idx_of[u.id]
        vi = self._idx_of[v.id]
        vu = self._versions[ui]
        vv = self._versions[vi]
        key = ui * self._n + vi
        entry = self._static.get(key)
        if entry is not None and entry[0] == vu and entry[1] == vv:
            self.hits += 1
            return entry[2]
        self.misses += 1
        param = (
            u.freq_mhz,
            v.freq_mhz,
            u.island != v.island,
            u.n_in == 0 and u.n_out == 0,
            v.n_in == 0 and v.n_out == 0,
        )
        value = self._static_by_param.get(param)
        if value is None:
            value = _edge_static_open_cost(self._topo, u, v, self._cfg)
            self._static_by_param[param] = value
        self._static[key] = (vu, vv, value)
        return value

    def traffic_ebit(self, u: Switch, v: Switch) -> float:
        """Memoized :func:`_edge_traffic_ebit` for ``u -> v``."""
        ui = self._idx_of[u.id]
        vi = self._idx_of[v.id]
        vu = self._versions[ui]
        vv = self._versions[vi]
        key = ui * self._n + vi
        entry = self._ebit.get(key)
        if entry is not None and entry[0] == vu and entry[1] == vv:
            self.hits += 1
            return entry[2]
        self.misses += 1
        param = (u.island != v.island, v.n_in, v.n_out)
        value = self._ebit_by_param.get(param)
        if value is None:
            value = _edge_traffic_ebit(self._topo, u, v, self._cfg)
            self._ebit_by_param[param] = value
        self._ebit[key] = (vu, vv, value)
        return value

    def invalidate_switch(self, switch_id: str) -> None:
        """Invalidate every cached term involving ``switch_id``.

        Call for both endpoints after opening a link: the open changes
        the endpoints' port counts (traffic term of edges into them)
        and clears their first-use degeneracy (static term).
        """
        self._versions[self._idx_of[switch_id]] += 1

    def is_current(self, u_id: str, v_id: str) -> bool:
        """True if the pair entry for ``u_id -> v_id`` is still valid.

        Introspection for tests; the lookup methods perform the same
        check inline.
        """
        ui = self._idx_of[u_id]
        vi = self._idx_of[v_id]
        key = ui * self._n + vi
        for table in (self._static, self._ebit):
            entry = table.get(key)
            if entry is not None and (
                entry[0] != self._versions[ui] or entry[1] != self._versions[vi]
            ):
                return False
        return True

    def __len__(self) -> int:
        return len(self._static) + len(self._ebit)


# ----------------------------------------------------------------------
# Allocation engine
# ----------------------------------------------------------------------


class PathAllocator:
    """Reusable path-allocation engine for one design-point candidate.

    Construction freezes everything that is identical across the
    intermediate-count sweep and the port-reserve retries: the flow
    order, the per-island size bounds, and the switch/NI scaffold
    (built once through the validating construction path, then cloned
    per attempt when ``use_cache`` is on).

    ``use_cache=False`` rebuilds the scaffold from scratch for every
    attempt and recomputes every edge-cost term — the reference mode
    used to prove the fast path changes nothing.
    """

    def __init__(
        self,
        spec: SoCSpec,
        library: NocLibrary,
        plans: Mapping[int, IslandPlan],
        partitions: Mapping[int, Sequence[Set[str]]],
        cost_config: Optional[PathCostConfig] = None,
        use_cache: bool = True,
    ) -> None:
        self.spec = spec
        self.library = library
        self.plans = plans
        self.partitions = partitions
        self.cfg = cost_config or PathCostConfig()
        self.use_cache = use_cache

        self._base_freqs: Dict[int, float] = {
            isl: plan.freq_mhz for isl, plan in plans.items()
        }
        self._mid_freq = intermediate_island_freq_mhz(plans)
        self._max_sizes: Dict[int, int] = {
            isl: plan.max_switch_size for isl, plan in plans.items()
        }
        self._max_sizes[INTERMEDIATE_ISLAND] = library.max_switch_size_for_freq(
            self._mid_freq
        )
        self._init_search_state(plans)

    def _init_search_state(self, islands: Iterable[int]) -> None:
        """State shared by both constructors (memos, stores, counters).

        Everything here depends only on the spec and the island id set
        — ``__init__`` and :meth:`for_topology` derive their frequency
        and size-bound tables differently but share all of this.
        Keeping it in one place means a new field cannot silently go
        missing from one construction path.
        """
        spec = self.spec
        # Flows in decreasing bandwidth order (deterministic tiebreak).
        self._ordered_flows = sorted(
            spec.flows,
            key=lambda f: (-f.bandwidth_mbps, f.latency_cycles, f.key),
        )
        self._min_lat = spec.min_latency_cycles
        # Scaffold (built lazily on first use): either a Topology to
        # clone or an AllocationResult describing why building failed.
        self._scaffold: Optional[Topology] = None
        self._scaffold_failure: Optional[AllocationResult] = None
        # Parameter-keyed cost memos shared across attempts (the cost
        # terms are pure in these parameters; see EdgeCostCache).
        self._static_by_param: Dict[tuple, float] = {}
        self._ebit_by_param: Dict[tuple, float] = {}
        # Int-keyed views of the same pure-function memos for the
        # router's inner loop.  Every switch is clocked at its island's
        # planned frequency, so the static open cost is fully determined
        # by (u.island, v.island, u fresh?, v fresh?) and the traffic
        # energy per bit by (crossing?, v.n_in, v.n_out); the island
        # pair encodes into each edge at adjacency build time, leaving
        # one add/or plus a dict probe per lookup.
        self._island_ix: Dict[int, int] = {
            isl: i
            for i, isl in enumerate(
                sorted(set(islands) | {INTERMEDIATE_ISLAND})
            )
        }
        self._static_by_key: Dict[int, float] = {}
        self._ebit_by_key: Dict[int, float] = {}
        # Pure-function memo: island-pair min frequency -> link capacity.
        self._cap_by_freq: Dict[float, float] = {}
        # Candidate adjacency hoisted across attempts (fast path only):
        # (n_switches, src_island, dst_island) -> per-switch successor
        # tuples.  Edges hold indices and attempt-invariant data only
        # (islands, frequencies and size bounds never change between
        # attempts), so one build serves every clone with the same
        # intermediate count.
        self._adj_store: Dict[Tuple[int, int, int], List[Optional[tuple]]] = {}
        # Dijkstra tie-break tables per switch count: heap entries carry
        # the switch's rank in sorted-id order, which reproduces the
        # historical (cost, switch_id) string comparison exactly.
        self._ranks_store: Dict[int, Tuple[List[int], List[int]]] = {}
        # Per-flow routing plan (endpoint switch indices, NI link ids,
        # latency pressure) — identical for every attempt because the
        # scaffold's ids are deterministic and clones preserve them.
        self._flow_plan: Optional[List[tuple]] = None
        # Intermediate-island dominance skip (fast path only): if the
        # 0-intermediate attempt succeeded without a single capacity or
        # port rejection, every candidate path through an indirect
        # switch is strictly dominated — an x -> mid ... mid -> y
        # segment always collapses to the direct x -> y edge, which was
        # never blocked and is strictly cheaper (fewer hops, fewer
        # converters, no fresh-switch floor).  The k>0 attempts would
        # therefore reproduce the k=0 routing exactly and prune every
        # indirect switch; allocate() returns the k=0 result instead of
        # re-routing.  Any rejection anywhere clears the guarantee.
        self._k0_result: Optional[AllocationResult] = None
        self._k0_unblocked = False
        self._blocked = False
        # Counters flushed to the active PerfRecorder per allocate().
        self._pops = 0
        self._edge_evals = 0
        self._links_opened = 0
        self._scaffold_clones = 0
        self._scaffold_builds = 0
        self._cache_hits = 0
        self._cache_misses = 0

    @classmethod
    def for_topology(
        cls,
        topology: Topology,
        cost_config: Optional[PathCostConfig] = None,
        use_cache: bool = True,
    ) -> "PathAllocator":
        """An allocator view over an already-routed topology.

        Spare-path (backup-route) allocation searches the *finished*
        topology of a design point, long after the plans/partitions
        that built it are gone.  Everything the search needs is
        recoverable from the topology itself: island frequencies are
        stored on it, and the per-island switch-size bound is a pure
        function of the frequency
        (:meth:`~repro.power.library.NocLibrary.max_switch_size_for_freq`
        — exactly how :func:`repro.core.frequency.plan_island` derived
        it).  The returned allocator shares the same int-indexed
        Dijkstra, adjacency store and cost memos as the synthesis fast
        path; it must not be used for primary allocation (it has no
        scaffold or partitions).
        """
        self = cls.__new__(cls)
        self.spec = topology.spec
        self.library = topology.library
        self.plans = {}
        self.partitions = {}
        self.cfg = cost_config or PathCostConfig()
        self.use_cache = use_cache
        self._base_freqs = {
            isl: f
            for isl, f in topology.island_freqs.items()
            if isl != INTERMEDIATE_ISLAND
        }
        self._mid_freq = topology.island_freqs.get(
            INTERMEDIATE_ISLAND, max(self._base_freqs.values(), default=0.0)
        )
        self._max_sizes = {
            isl: topology.library.max_switch_size_for_freq(f)
            for isl, f in topology.island_freqs.items()
        }
        self._init_search_state(topology.island_freqs)
        return self

    # -- public API ----------------------------------------------------

    def allocate(self, num_intermediate: int = 0) -> AllocationResult:
        """Route all flows with ``num_intermediate`` indirect switches.

        Retries with 1 then 2 reserved ports per switch when the greedy
        allocation strands the intermediate island (see
        :func:`allocate_paths`).
        """
        if (
            num_intermediate > 0
            and self.use_cache
            and self._k0_unblocked
            and self._k0_result is not None
            and self._k0_result.success
        ):
            # Dominance skip (see __init__): the k=0 routing was never
            # capacity- or port-constrained, so indirect switches can
            # not appear on any optimal path — this attempt would
            # reproduce the k=0 topology and prune every mid switch.
            recorder = active_recorder()
            if recorder is not None:
                recorder.count("intermediate_attempts_skipped")
            return self._k0_result
        reserves = (0, 1, 2) if num_intermediate > 0 else (0,)
        result: Optional[AllocationResult] = None
        for reserve in reserves:
            attempt = self._build_attempt_topology(num_intermediate)
            if isinstance(attempt, AllocationResult):
                result = attempt
                break  # scaffold failure is independent of the reserve
            self._blocked = False
            result = self._route_all(attempt, reserve)
            if result.success:
                break
        if num_intermediate == 0:
            self._k0_result = result
            # The dominance argument needs every cost term non-negative
            # (physical energies are; the config weights could be
            # zeroed or inverted by exotic configs).
            self._k0_unblocked = (
                bool(result.success)
                and not self._blocked
                and self.cfg.latency_cost_mw_per_cycle >= 0.0
                and self.cfg.open_cost_weight >= 0.0
            )
        self._flush_counters()
        assert result is not None
        return result

    def route_backup(
        self,
        topo: Topology,
        sw_list: List[Switch],
        pair_links: Dict[int, List[Link]],
        flow: TrafficFlow,
        src_i: int,
        dst_i: int,
        forbidden_links: Set[int],
        blocked_switches: Optional[Set[int]] = None,
        reserved: Optional[Mapping[int, float]] = None,
        allow_open: bool = True,
        latency_only: bool = False,
    ) -> Optional[Tuple[List[Tuple[int, int, str, Optional[Link]]], int]]:
        """One backup-route search for ``flow`` avoiding failed-prone parts.

        The k-edge-disjoint entry point (see
        :mod:`repro.resilience.spare_paths`): the same int-indexed
        Dijkstra and cost memos as primary allocation, with the flow's
        primary (and earlier-backup) links forbidden, optional
        intermediate switches blocked (node-disjoint mode), and earlier
        spare reservations counted against link capacity.  The
        shutdown-safety transition rule applies unchanged — a backup
        may not cross a third-party voltage island either.

        ``sw_list``/``pair_links`` are the caller-maintained views of
        ``topo`` (see :meth:`_route_all` for their shape); the caller
        opens the returned ``_OPEN`` hops and keeps both views current.
        Returns ``(hops, zero_load_latency_cycles)`` or ``None``.
        """
        n = len(sw_list)
        min_lat = self._min_lat
        pressure = (
            min_lat / flow.latency_cycles if flow.latency_cycles > 0 else 1.0
        )
        lib = self.library
        unit_intra = self.cfg.latency_cost_mw_per_cycle * (
            lib.link_traversal_cycles + lib.switch_traversal_cycles
        )
        unit_cross = self.cfg.latency_cost_mw_per_cycle * (
            lib.fifo_crossing_cycles + lib.switch_traversal_cycles
        )
        found = self._search(
            topo,
            sw_list,
            n,
            self._adj_store if self.use_cache else {},
            self._ranks(sw_list),
            self.use_cache,
            pair_links,
            flow,
            src_i,
            dst_i,
            unit_intra * pressure,
            unit_cross * pressure,
            0,
            latency_only=latency_only,
            forbidden_links=forbidden_links,
            blocked_switches=blocked_switches,
            reserved=reserved,
            allow_open=allow_open,
        )
        self._flush_counters()
        return found

    # -- scaffold ------------------------------------------------------

    def _build_scaffold(self) -> None:
        """Instantiate switches and attach cores (steps 12–13), once."""
        topo = Topology(self.spec, self.library, self._base_freqs)
        for isl in sorted(self.partitions):
            for idx, group in enumerate(self.partitions[isl]):
                if not group:
                    raise SynthesisError("empty core group in island %r" % isl)
                if len(group) > self._max_sizes[isl]:
                    self._scaffold_failure = AllocationResult(
                        topology=None,
                        success=False,
                        reason="group of %d cores exceeds max switch size %d in island %d"
                        % (len(group), self._max_sizes[isl], isl),
                    )
                    return
                sw = topo.add_switch(isl, idx)
                for core in sorted(group):
                    topo.attach_core(core, sw)
        self._scaffold = topo

    def _build_attempt_topology(self, num_intermediate: int):
        """A fresh topology for one routing attempt (clone or rebuild)."""
        if self._scaffold is None and self._scaffold_failure is None:
            # First call — or reference mode, where each attempt consumes
            # the scaffold below and re-runs the validating construction
            # path here.
            self._build_scaffold()
            self._scaffold_builds += 1
        if self._scaffold_failure is not None:
            return self._scaffold_failure
        assert self._scaffold is not None
        if self.use_cache:
            topo = self._scaffold.clone_scaffold()
            self._scaffold_clones += 1
        else:
            topo = self._scaffold
            self._scaffold = None  # consumed; next attempt rebuilds
        if num_intermediate > 0:
            topo.island_freqs[INTERMEDIATE_ISLAND] = self._mid_freq
            for idx in range(num_intermediate):
                topo.add_switch(INTERMEDIATE_ISLAND, idx)
        return topo

    # -- routing -------------------------------------------------------

    def _build_flow_plan(self, topo: Topology) -> List[tuple]:
        """Per-flow routing endpoints, resolved once for all attempts.

        Scaffold switch ids, NI link ids and core attachments are
        deterministic and preserved by :meth:`Topology.clone_scaffold`,
        so each flow's endpoint switch *indices* (position in switch
        insertion order), NI link ids and latency pressure are
        attempt-invariant.
        """
        idx_of = {sid: i for i, sid in enumerate(topo.switches)}
        min_lat = self._min_lat
        lib = self.library
        # Pressure-weighted hop-latency costs, precomputed per flow with
        # the historical association order ((weight * cycles) * pressure)
        # so the floats match the old per-search computation bit for bit.
        unit_intra = self.cfg.latency_cost_mw_per_cycle * (
            lib.link_traversal_cycles + lib.switch_traversal_cycles
        )
        unit_cross = self.cfg.latency_cost_mw_per_cycle * (
            lib.fifo_crossing_cycles + lib.switch_traversal_cycles
        )
        plan = []
        for flow in self._ordered_flows:
            sw_src = topo.switch_of_core(flow.src)
            sw_dst = topo.switch_of_core(flow.dst)
            ni_src_lid = _ni_link(topo, ni_id(flow.src), sw_src.id).id
            ni_dst_lid = _ni_link(topo, sw_dst.id, ni_id(flow.dst)).id
            pressure = (
                min_lat / flow.latency_cycles if flow.latency_cycles > 0 else 1.0
            )
            plan.append(
                (
                    flow,
                    sw_src.id == sw_dst.id,
                    idx_of[sw_src.id],
                    idx_of[sw_dst.id],
                    ni_src_lid,
                    ni_dst_lid,
                    unit_intra * pressure,
                    unit_cross * pressure,
                )
            )
        return plan

    def _ranks(self, sw_list: List[Switch]) -> Tuple[List[int], List[int]]:
        """Tie-break tables: index -> sorted-id rank and its inverse.

        Heap entries carry ranks instead of id strings; because rank
        order equals lexicographic id order, cost ties pop in exactly
        the order the historical ``(cost, switch_id)`` heap produced.
        """
        n = len(sw_list)
        store = self._ranks_store if self.use_cache else {}
        tables = store.get(n)
        if tables is None:
            idx_by_rank = sorted(range(n), key=lambda i: sw_list[i].id)
            rank_of = [0] * n
            for rank, idx in enumerate(idx_by_rank):
                rank_of[idx] = rank
            tables = (rank_of, idx_by_rank)
            store[n] = tables
        return tables

    def _route_all(
        self, topo: Topology, port_reserve: int
    ) -> AllocationResult:
        """One allocation attempt with a fixed port reservation."""
        cfg = self.cfg
        sw_list = list(topo.switches.values())
        n = len(sw_list)
        use_memo = self.use_cache
        adj_store = self._adj_store if use_memo else {}
        ranks = self._ranks(sw_list)
        # Existing sw2sw links per directed pair (``u_idx * n + v_idx``),
        # in link-id order; maintained incrementally as links open.  The
        # scaffold carries only NI attachment links, so this starts empty.
        pair_links: Dict[int, List[Link]] = {}
        if self._flow_plan is None:
            self._flow_plan = self._build_flow_plan(topo)
        lib = self.library
        sw_cycles = lib.switch_traversal_cycles
        lat_intra_cycles = lib.link_traversal_cycles + sw_cycles
        lat_cross_cycles = lib.fifo_crossing_cycles + sw_cycles
        # The shortcut's strict-dominance argument needs every cost
        # term non-negative; an exotic negative open weight could make
        # opening a parallel link beat reusing an existing one.
        open_weight_ok = cfg.open_cost_weight >= 0.0
        links_opened = 0
        via_mid = 0
        for (
            flow, same_switch, src_i, dst_i, ni_src_lid, ni_dst_lid,
            lat_cost_intra, lat_cost_cross,
        ) in self._flow_plan:
            if same_switch:
                # Same switch: NI -> switch -> NI, one switch traversal.
                topo.assign_route(flow, [ni_src_lid, ni_dst_lid], validate=False)
                continue
            found = None
            # Direct-reuse shortcut: every edge cost is strictly
            # positive (traffic energy, wire/FIFO energy and any
            # non-negative latency weight), so when an existing
            # src->dst link still has capacity, the one-hop reuse path
            # strictly beats every alternative — opening costs extra
            # static power on the same edge, and any multi-hop path
            # pays the destination crossbar *plus* additional hops.
            # The full search would return exactly this path; skip it.
            if open_weight_ok and lat_cost_intra >= 0.0 and lat_cost_cross >= 0.0:
                direct = pair_links.get(src_i * n + dst_i)
                if direct:
                    bw = flow.bandwidth_mbps
                    for link in direct:
                        if link.capacity_mbps - link._used_mbps + 1e-9 >= bw:
                            crossing = (
                                sw_list[src_i].island != sw_list[dst_i].island
                            )
                            found = (
                                [(src_i, dst_i, _REUSE, link)],
                                sw_cycles
                                + (lat_cross_cycles if crossing else lat_intra_cycles),
                            )
                            break
            if found is None:
                found = self._search(
                    topo, sw_list, n, adj_store, ranks, use_memo, pair_links,
                    flow, src_i, dst_i, lat_cost_intra, lat_cost_cross, port_reserve,
                )
            if found is None:
                return AllocationResult(
                    topology=None,
                    success=False,
                    failed_flow=flow.key,
                    reason="no feasible switch path for flow %s->%s" % flow.key,
                    links_opened=links_opened,
                )
            # Latency check against the flow budget; the NI links are
            # free, each switch costs 1 cycle and each hop its link
            # cycles.
            hops, latency = found
            if latency > flow.latency_cycles + 1e-9:
                found2 = self._search(
                    topo, sw_list, n, adj_store, ranks, use_memo, pair_links,
                    flow, src_i, dst_i, lat_cost_intra, lat_cost_cross,
                    port_reserve, latency_only=True,
                )
                if found2 is not None:
                    hops2, lat2 = found2
                    if lat2 < latency:
                        hops, latency = hops2, lat2
                if latency > flow.latency_cycles + 1e-9:
                    return AllocationResult(
                        topology=None,
                        success=False,
                        failed_flow=flow.key,
                        reason="latency %d exceeds budget %.1f for flow %s->%s"
                        % (latency, flow.latency_cycles, flow.src, flow.dst),
                        links_opened=links_opened,
                    )
            link_ids = [ni_src_lid]
            touched_mid = False
            for ui, vi, action, link in hops:
                if action == _OPEN:
                    link = topo.open_link(sw_list[ui].id, sw_list[vi].id)
                    links_opened += 1
                    key = ui * n + vi
                    lst = pair_links.get(key)
                    if lst is None:
                        pair_links[key] = [link]
                    else:
                        lst.append(link)
                link_ids.append(link.id)
                if sw_list[vi].is_intermediate:
                    touched_mid = True
            link_ids.append(ni_dst_lid)
            # Routes are correct by construction here (the search
            # enforced capacity and continuity); the per-point
            # validate_topology pass still audits the final result.
            topo.assign_route(flow, link_ids, validate=False)
            if touched_mid:
                via_mid += 1

        _prune_unused_intermediate(topo)
        self._links_opened += links_opened
        return AllocationResult(
            topology=topo,
            success=True,
            links_opened=links_opened,
            flows_via_intermediate=via_mid,
        )

    def _adjacency(
        self,
        sw_list: List[Switch],
        n: int,
        adj_store: Dict[Tuple[int, int, int], tuple],
        isl_a: int,
        isl_b: int,
    ) -> tuple:
        """Lazy allowed-successor structure for ``isl_a`` -> ``isl_b`` flows.

        Returns ``(candidates, rows)``: the candidate switch indices in
        insertion order and a per-switch row list.  ``rows[u_idx]`` is
        the tuple of successors the shutdown-safety rule permits —
        ``(v_idx, crossing, reserve_applies, v's size bound, new-link
        capacity)`` — or ``None`` while unbuilt; :meth:`_successor_row`
        materializes a row the first time the search pops its switch
        (most candidates are never popped, so eager all-pairs
        construction wasted the bulk of the adjacency work).  Everything
        stored is attempt-invariant, so on the fast path one structure
        serves every clone with the same switch count.
        """
        key = (n, isl_a, isl_b)
        entry = adj_store.get(key)
        if entry is None:
            allowed = {isl_a, isl_b, INTERMEDIATE_ISLAND}
            candidates = tuple(
                i for i, s in enumerate(sw_list) if s.island in allowed
            )
            entry = (candidates, [None] * n)
            adj_store[key] = entry
        return entry

    def _successor_row(
        self,
        sw_list: List[Switch],
        candidates: Tuple[int, ...],
        uidx: int,
        isl_a: int,
        isl_b: int,
    ) -> tuple:
        """Build the successor tuple of one candidate switch."""
        mid = INTERMEDIATE_ISLAND
        max_sizes = self._max_sizes
        cap_by_freq = self._cap_by_freq
        island_ix = self._island_ix
        n_islands = len(island_ix)
        lib = self.library
        u = sw_list[uidx]
        u_isl = u.island
        u_freq = u.freq_mhz
        u_ix = island_ix[u_isl]
        edges = []
        for cj in candidates:
            if cj == uidx:
                continue
            v = sw_list[cj]
            v_isl = v.island
            if not _allowed_transition(u_isl, v_isl, isl_a, isl_b):
                continue
            crossing = u_isl != v_isl
            freq = u_freq if u_freq < v.freq_mhz else v.freq_mhz
            capacity = cap_by_freq.get(freq)
            if capacity is None:
                capacity = lib.link_capacity_mbps(freq)
                cap_by_freq[freq] = capacity
            edges.append(
                (
                    cj,
                    crossing,
                    crossing and u_isl != mid and v_isl != mid,
                    max_sizes[v_isl],
                    capacity,
                    # Memo key bases (see __init__): static cost key is
                    # island-pair * 4 + freshness bits, ebit key is
                    # crossing bit | v's port counts.
                    (u_ix * n_islands + island_ix[v_isl]) * 4,
                    (1 << 23) if crossing else 0,
                )
            )
        return tuple(edges)

    def _search(
        self,
        topo: Topology,
        sw_list: List[Switch],
        n: int,
        adj_store: Dict[Tuple[int, int, int], List[Optional[tuple]]],
        ranks: Tuple[List[int], List[int]],
        use_memo: bool,
        pair_links: Dict[int, List[Link]],
        flow: TrafficFlow,
        src_i: int,
        dst_i: int,
        lat_cost_intra: float,
        lat_cost_cross: float,
        port_reserve: int,
        latency_only: bool = False,
        forbidden_links: Optional[Set[int]] = None,
        blocked_switches: Optional[Set[int]] = None,
        reserved: Optional[Mapping[int, float]] = None,
        allow_open: bool = True,
    ) -> Optional[Tuple[List[Tuple[int, int, str, Optional[Link]]], int]]:
        """Dijkstra over the allowed switch graph.

        Returns ``(hops, zero_load_latency_cycles)`` where hops are
        ``(src_idx, dst_idx, action, link_or_None)`` tuples, or ``None``
        when the destination is unreachable.  ``latency_only`` ignores
        power and minimizes pure hop latency — used as the fallback when
        the cheapest path misses the flow's latency budget.  The
        pressure-weighted hop costs ``lat_cost_intra``/``lat_cost_cross``
        come precomputed from the flow plan.

        The last four parameters serve backup-route allocation
        (:meth:`route_backup`) and default to "off" — primary routing
        passes ``None`` and skips every associated check.
        ``forbidden_links`` bans reusing specific physical links (the
        disjointness constraint), ``blocked_switches`` bans traversing
        specific switch indices (node-disjoint mode), ``reserved``
        charges spare-capacity reservations against link headroom, and
        ``allow_open=False`` restricts backups to existing hardware.
        """
        cfg = self.cfg
        lib = self.library
        isl_a = sw_list[src_i].island
        isl_b = sw_list[dst_i].island
        candidates, adj = self._adjacency(sw_list, n, adj_store, isl_a, isl_b)
        bw = flow.bandwidth_mbps
        allow_parallel = cfg.allow_parallel_links
        open_weight = cfg.open_cost_weight
        # Traffic power is bw-linear in the cached energy-per-bit term;
        # hoisting the bandwidth factor keeps units.traffic_power_mw's
        # exact evaluation order: (bits_per_s * ebit) * unit_constant.
        bits_per_s = bw * units.MEGA * units.BITS_PER_BYTE
        to_mw = units.PJ_PER_BIT_TIMES_BITS_PER_S_TO_MW
        # Hop latencies in cycles, one value per crossing class.
        lat_intra = lib.link_traversal_cycles + lib.switch_traversal_cycles
        lat_cross = lib.fifo_crossing_cycles + lib.switch_traversal_cycles

        # Int-keyed pure-function memos (see __init__): the fast path
        # resolves both cost terms with one integer dict probe each —
        # no invalidation needed because the keys capture every dynamic
        # input (port counts, first-use freshness).  Hit/miss tallies
        # are folded into the cache stats at the end.
        static_by_key = self._static_by_key
        ebit_by_key = self._ebit_by_key
        hits = 0
        misses = 0
        has_reserve = port_reserve != 0
        blocked = False  # any capacity/port rejection voids the mid skip

        max_sizes = self._max_sizes
        rank_of, idx_by_rank = ranks
        inf = float("inf")
        dist = [inf] * n
        dist[src_i] = 0.0
        prev: List[Optional[Tuple[int, str, Optional[Link]]]] = [None] * n
        visited = bytearray(n)
        heap: List[Tuple[float, int]] = [(0.0, rank_of[src_i])]
        pops = 0
        evals = 0
        heappop = heapq.heappop
        heappush = heapq.heappush
        while heap:
            d, urank = heappop(heap)
            uidx = idx_by_rank[urank]
            if visited[uidx]:
                continue
            visited[uidx] = 1
            pops += 1
            if uidx == dst_i:
                break
            edges = adj[uidx]
            if edges is None:
                edges = adj[uidx] = self._successor_row(
                    sw_list, candidates, uidx, isl_a, isl_b
                )
            if not edges:
                continue
            u = sw_list[uidx]
            u_n_in = u.n_in
            u_new_out = u.n_out + 1
            if u_n_in > u_new_out:
                u_new_out = u_n_in
            u_fresh_bit = 2 if u_n_in == 0 and u.n_out == 0 else 0
            lim_u_base = max_sizes[u.island]
            ukey = uidx * n
            for (
                vidx, crossing, reserve_applies, lim_v_base, capacity,
                skey_base, ekey_base,
            ) in edges:
                if visited[vidx]:
                    continue
                if blocked_switches is not None and vidx in blocked_switches:
                    continue
                evals += 1
                if crossing:
                    lat_cycles = lat_cross
                    lat_cost = lat_cost_cross
                else:
                    lat_cycles = lat_intra
                    lat_cost = lat_cost_intra
                best_cost = inf
                best_action = _REUSE
                best_link: Optional[Link] = None
                ebit = -1.0  # computed lazily, at most once per edge
                v = sw_list[vidx]
                v_n_in = v.n_in
                v_n_out = v.n_out
                # Reuse: scan every (possibly parallel) existing link
                # and take the first that fits, by link id — parallel
                # links can differ in residual capacity.
                existing = pair_links.get(ukey + vidx)
                if existing:
                    for link in existing:
                        if forbidden_links is not None and link.id in forbidden_links:
                            continue
                        avail = link.capacity_mbps - link._used_mbps
                        if reserved is not None:
                            avail -= reserved.get(link.id, 0.0)
                        if avail + 1e-9 < bw:
                            continue
                        if latency_only:
                            best_cost = float(lat_cycles)
                        else:
                            if use_memo:
                                ekey = ekey_base | (v_n_in << 11) | v_n_out
                                ebit = ebit_by_key.get(ekey)
                                if ebit is None:
                                    misses += 1
                                    ebit = _edge_traffic_ebit(topo, u, v, cfg)
                                    ebit_by_key[ekey] = ebit
                                else:
                                    hits += 1
                            else:
                                ebit = _edge_traffic_ebit(topo, u, v, cfg)
                            best_cost = bits_per_s * ebit * to_mw + lat_cost
                        best_link = link
                        break
                # Open a new link (subject to size bounds and the
                # parallel-link policy).
                if allow_open and (allow_parallel or not existing):
                    new_v = v_n_in + 1
                    if v_n_out > new_v:
                        new_v = v_n_out
                    if has_reserve and reserve_applies:
                        lim_u = lim_u_base - port_reserve
                        lim_v = lim_v_base - port_reserve
                    else:
                        lim_u = lim_u_base
                        lim_v = lim_v_base
                    if u_new_out <= lim_u and new_v <= lim_v and capacity + 1e-9 >= bw:
                        if latency_only:
                            cost = float(lat_cycles) + 1e-6  # prefer reuse on ties
                        else:
                            if use_memo:
                                if ebit < 0.0:
                                    ekey = ekey_base | (v_n_in << 11) | v_n_out
                                    ebit = ebit_by_key.get(ekey)
                                    if ebit is None:
                                        misses += 1
                                        ebit = _edge_traffic_ebit(topo, u, v, cfg)
                                        ebit_by_key[ekey] = ebit
                                    else:
                                        hits += 1
                                skey = skey_base + u_fresh_bit + (
                                    1 if v_n_in == 0 and v_n_out == 0 else 0
                                )
                                static = static_by_key.get(skey)
                                if static is None:
                                    misses += 1
                                    static = _edge_static_open_cost(topo, u, v, cfg)
                                    static_by_key[skey] = static
                                else:
                                    hits += 1
                            else:
                                if ebit < 0.0:
                                    ebit = _edge_traffic_ebit(topo, u, v, cfg)
                                static = _edge_static_open_cost(topo, u, v, cfg)
                            cost = (
                                bits_per_s * ebit * to_mw
                                + open_weight * static
                                + lat_cost
                            )
                        if cost < best_cost:
                            best_cost = cost
                            best_action = _OPEN
                            best_link = None
                if best_cost is inf:
                    # Dead edge: neither reuse nor open could serve this
                    # pair.  Only here could an indirect-switch bypass
                    # ever win, so only this voids the dominance skip
                    # (see __init__) — an eval that produced any option
                    # strictly dominates the corresponding mid segment.
                    blocked = True
                    continue
                nd = d + best_cost
                if nd < dist[vidx] - 1e-12:
                    dist[vidx] = nd
                    prev[vidx] = (uidx, best_action, best_link)
                    heappush(heap, (nd, rank_of[vidx]))
        self._pops += pops
        self._edge_evals += evals
        if blocked:
            self._blocked = True
        if use_memo:
            self._cache_hits += hits
            self._cache_misses += misses
        if prev[dst_i] is None and dst_i != src_i:
            return None
        # Reconstruct hops back from the destination, accumulating the
        # zero-load latency (source switch + per hop: link + downstream
        # switch; NI links are free — mirrors repro.sim.zero_load).
        hops: List[Tuple[int, int, str, Optional[Link]]] = []
        sw_cycles = lib.switch_traversal_cycles
        latency = sw_cycles
        fifo_cycles = lib.fifo_crossing_cycles
        link_cycles = lib.link_traversal_cycles
        cur = dst_i
        while cur != src_i:
            uidx, action, link = prev[cur]
            hops.append((uidx, cur, action, link))
            if sw_list[uidx].island != sw_list[cur].island:
                latency += fifo_cycles + sw_cycles
            else:
                latency += link_cycles + sw_cycles
            cur = uidx
        hops.reverse()
        return hops, latency

    # -- instrumentation -----------------------------------------------

    def _flush_counters(self) -> None:
        recorder = active_recorder()
        if recorder is not None:
            recorder.count("dijkstra_pops", self._pops)
            recorder.count("edge_evals", self._edge_evals)
            recorder.count("links_opened", self._links_opened)
            recorder.count("scaffold_clones", self._scaffold_clones)
            recorder.count("scaffold_builds", self._scaffold_builds)
            recorder.count("cost_cache_hits", self._cache_hits)
            recorder.count("cost_cache_misses", self._cache_misses)
        self._pops = self._edge_evals = 0
        self._scaffold_clones = self._scaffold_builds = 0
        self._links_opened = 0
        self._cache_hits = self._cache_misses = 0


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def _ni_link(topo: Topology, src: str, dst: str) -> Link:
    """The unique NI attachment link from ``src`` to ``dst``."""
    link = topo.link_between(src, dst)
    if link is None or link.kind not in ("ni2sw", "sw2ni"):
        raise SynthesisError("missing NI link %s -> %s" % (src, dst))
    return link


def _prune_unused_intermediate(topo: Topology) -> None:
    """Drop intermediate switches that ended up with no links.

    Step 14 sweeps the indirect switch count; path allocation may leave
    some of them unconnected, and an unconnected switch would only add
    idle power and area for nothing.
    """
    for sw in list(topo.intermediate_switches):
        if sw.n_in == 0 and sw.n_out == 0:
            del topo.switches[sw.id]
