"""Least-cost path allocation for inter-switch traffic (step 15).

Given the core-to-switch assignment of one design point and a number of
indirect switches in the intermediate NoC island, this module connects
the switches and routes every traffic flow:

* flows are processed in **decreasing bandwidth order** ("Choose flows
  in bandwidth order and find the paths");
* for each flow a Dijkstra search over the allowed switch graph picks
  the cheapest mix of **reusing existing links** and **opening new
  ones**; the edge cost is "a linear combination of the power
  consumption increase in opening a new link or reusing an existing
  link and the latency constraint of the flow";
* link opening respects the per-island **maximum switch size** (ports
  per direction) and the **shutdown-safety rule**: for a flow from
  island *a* to island *b*, only switches in *a*, *b* or the
  intermediate island may appear on the path, and new links may only
  run within *a*, within *b*, from *a* to *b*, or to/between/from
  intermediate switches;
* after routing, a flow whose zero-load latency exceeds its budget
  triggers a latency-greedy re-route; if that still violates, the
  design point is infeasible.

The allocator mutates a fresh :class:`~repro.arch.topology.Topology`
and reports success or the first unroutable flow.

Fast path
---------
The synthesis sweep calls the allocator hundreds of times, so the hot
loop is engineered around five observations:

1. the candidate switch set and the shutdown-safety transition rule
   depend only on the ``(src_island, dst_island)`` pair of a flow —
   :class:`PathAllocator` keeps one lazily-built, integer-indexed
   successor structure per pair (shared across routing attempts)
   instead of re-testing every switch pair on every Dijkstra pop;
2. the power terms of an edge cost are pure functions of a handful of
   switch attributes — the static open cost of ``(u.island, v.island,
   u fresh?, v fresh?)`` and the traffic energy-per-bit of
   ``(crossing?, v.n_in, v.n_out)`` — so the inner loop resolves each
   with one int-keyed dict probe; :class:`EdgeCostCache` is the
   object-level view of the same memos with explicit link-open
   invalidation;
3. every intermediate-count and port-reserve retry routes the same
   switch/NI scaffold — the scaffold is built once and cheaply cloned
   per attempt (:meth:`repro.arch.topology.Topology.clone_scaffold`);
4. every edge cost is strictly positive, so an existing ``src -> dst``
   link with spare capacity is the whole answer (the one-hop reuse
   strictly beats every alternative) — no search needed;
5. for the same reason, if the 0-intermediate attempt finished without
   a single dead edge evaluation, paths through indirect switches are
   strictly dominated everywhere and the k>0 attempts are returned
   from the k=0 result instead of re-routed (the dominance skip).

Cached and uncached (``use_cache=False``) runs share one cost
implementation, so they produce byte-identical allocations; the cache
only changes how often the arithmetic re-runs.

Routing kernels
---------------
On top of the fast path sit two interchangeable search kernels,
selected by the ``kernel`` knob (see :mod:`repro.core.kernel`):

* ``scalar`` — the historical per-edge Python loop above, always used
  in reference mode (``use_cache=False``);
* ``vector`` — the batched array kernel: an O(1) **direct-open
  dominance shortcut** (when opening the direct link provably costs no
  more than any two cheapest-possible edges, the whole search is
  skipped; see :meth:`PathAllocator._direct_open_shortcut` for the
  proof obligations) and, on graphs of at least
  :data:`VECTOR_MIN_SWITCHES` switches with numpy importable, a
  whole-frontier edge-cost evaluation over flat CSR-style arrays.

Both kernels produce byte-identical design points, routes and
objective costs — the vector arithmetic replicates the scalar float
operation order term for term, and ties still resolve through the
sorted-id-rank heap order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .. import units
from ..arch.topology import (
    INTERMEDIATE_ISLAND,
    FlowKey,
    Link,
    Route,
    Switch,
    Topology,
    ni_id,
)
from ..exceptions import SynthesisError
from ..obs.spans import span
from ..perf.instrument import active_recorder
from ..power.library import NocLibrary
from .frequency import IslandPlan, intermediate_island_freq_mhz
from .kernel import numpy_or_none, resolve_kernel
from .spec import SoCSpec, TrafficFlow


@dataclass(frozen=True)
class PathCostConfig:
    """Knobs of the link-cost linear combination.

    ``latency_cost_mw_per_cycle`` converts cycles into the power-cost
    unit so the two objectives combine linearly; the per-flow latency
    pressure scales it by ``min_lat / lat_flow`` (tight flows feel
    latency more, mirroring the Definition 1 weighting).
    """

    #: Weight (mW per cycle) of the latency term in the edge cost.
    latency_cost_mw_per_cycle: float = 0.40
    #: Assumed wire length of an intra-island link before floorplanning.
    nominal_intra_link_mm: float = 1.5
    #: Assumed wire length of a cross-island link before floorplanning.
    nominal_cross_link_mm: float = 4.0
    #: Multiplier on the static (idle + leakage) cost of opening links.
    open_cost_weight: float = 1.0
    #: Allow opening parallel links between the same switch pair when
    #: the first link saturates.
    allow_parallel_links: bool = True


@dataclass
class AllocationResult:
    """Outcome of path allocation for one design point."""

    topology: Optional[Topology]
    success: bool
    failed_flow: Optional[FlowKey] = None
    reason: Optional[str] = None
    links_opened: int = 0
    flows_via_intermediate: int = 0

    def require_topology(self) -> Topology:
        """Return the topology, raising if allocation failed."""
        if not self.success or self.topology is None:
            raise SynthesisError(
                "allocation failed (%s) — no topology" % (self.reason or "unknown")
            )
        return self.topology


# Edge in the Dijkstra search: either reuse an existing link or open a
# new one between two switches.
_REUSE = "reuse"
_OPEN = "open"

#: Minimum switch count before the vector kernel routes a search
#: through the numpy whole-frontier evaluation.  Below this, frontiers
#: are narrow enough that numpy's fixed per-expression dispatch cost
#: loses to the scalar loop (measured crossover sits well above the
#: 40-switch benchmark graphs); the O(1) direct-open shortcut carries
#: the win instead.  Module level so the parity tests can force the
#: batched path on tiny graphs.
VECTOR_MIN_SWITCHES = 48


def allocate_paths(
    spec: SoCSpec,
    library: NocLibrary,
    plans: Mapping[int, IslandPlan],
    partitions: Mapping[int, Sequence[Set[str]]],
    num_intermediate: int = 0,
    cost_config: Optional[PathCostConfig] = None,
    use_cache: bool = True,
    kernel: str = "auto",
) -> AllocationResult:
    """Build a topology for one design point and route every flow.

    Greedy bandwidth-ordered allocation can exhaust a switch's ports on
    direct inter-island links and then have no port left to reach the
    intermediate island (the hub-and-spoke failure mode).  When that
    happens and indirect switches are available, the allocation retries
    with 1 then 2 ports per switch *reserved* for indirect
    connectivity — direct cross-island link opening is constrained to
    leave that headroom.

    Thin wrapper over :class:`PathAllocator`; synthesis keeps one
    allocator alive across the intermediate-count sweep instead.

    Parameters
    ----------
    spec:
        The SoC specification.
    library:
        Technology library.
    plans:
        Per-island frequency/size plans from
        :func:`repro.core.frequency.plan_all_islands`.
    partitions:
        For every island, the list of core groups sharing a switch
        (output of min-cut partitioning, step 11).
    num_intermediate:
        Number of indirect switches to instantiate in the intermediate
        NoC island (step 14 sweeps this; 0 disables the island).
    cost_config:
        Cost-function knobs; defaults to :class:`PathCostConfig`.
    use_cache:
        Enable the scaffold-clone and edge-cost memoization fast path
        (identical results either way).
    kernel:
        Routing-kernel selection (``auto`` / ``vector`` / ``scalar``,
        see :mod:`repro.core.kernel`); identical results either way.
    """
    allocator = PathAllocator(
        spec, library, plans, partitions, cost_config, use_cache=use_cache,
        kernel=kernel,
    )
    return allocator.allocate(num_intermediate)


# ----------------------------------------------------------------------
# Cost model (shared by cached and uncached paths)
# ----------------------------------------------------------------------


def _allowed_transition(
    src_island: int, dst_island: int, isl_a: int, isl_b: int
) -> bool:
    """Shutdown-safety transition rule for a flow from ``isl_a`` to ``isl_b``.

    Permitted directed moves: within the source island, within the
    destination island, source -> destination, source -> intermediate,
    intermediate -> intermediate, intermediate -> destination.  This is
    exactly the "directly across the source and destination VIs or to
    the switches in the intermediate NoC island" rule, and it also makes
    the search graph a DAG across islands (no ping-pong between
    islands, which could never reduce cost).
    """
    mid = INTERMEDIATE_ISLAND
    if src_island == isl_a:
        return dst_island in (isl_a, isl_b, mid) if isl_a != isl_b else dst_island == isl_a
    if src_island == mid:
        return dst_island in (mid, isl_b)
    if src_island == isl_b:
        return dst_island == isl_b
    return False


def _edge_static_open_cost(
    topo: Topology, u: Switch, v: Switch, cfg: PathCostConfig
) -> float:
    """Static power cost (mW) of opening a new link u->v.

    Counts the incremental idle power of the two new switch ports, the
    converter if the link crosses islands, and the leakage of the new
    wire at its nominal pre-floorplan length.
    """
    lib = topo.library
    crossing = u.island != v.island
    length = cfg.nominal_cross_link_mm if crossing else cfg.nominal_intra_link_mm
    # One new output port on u and one new input port on v.
    static = lib.switch_idle_mw_per_mhz_per_port * (u.freq_mhz + v.freq_mhz)
    static += 2.0 * lib.switch_leak_mw_per_port
    # A previously unconnected switch (fresh intermediate) also brings
    # its fixed clock-tree and leakage floor online.
    if u.n_in == 0 and u.n_out == 0:
        static += lib.switch_idle_mw_per_mhz_base * u.freq_mhz + lib.switch_leak_mw_base
    if v.n_in == 0 and v.n_out == 0:
        static += lib.switch_idle_mw_per_mhz_base * v.freq_mhz + lib.switch_leak_mw_base
    static += lib.link_leakage_mw(length)
    if crossing:
        static += lib.fifo_idle_power_mw(u.freq_mhz, v.freq_mhz) + lib.fifo_leakage_mw()
    return static


def _edge_traffic_ebit(
    topo: Topology, u: Switch, v: Switch, cfg: PathCostConfig
) -> float:
    """Energy per bit (pJ) a flow pays on link u->v plus switch v."""
    lib = topo.library
    crossing = u.island != v.island
    length = cfg.nominal_cross_link_mm if crossing else cfg.nominal_intra_link_mm
    ebit = lib.link_ebit_pj(length)
    ebit += lib.switch_ebit_pj(max(v.n_in, 1), max(v.n_out, 1))
    if crossing:
        ebit += lib.fifo_ebit_pj
    return ebit


def _edge_traffic_cost(
    topo: Topology, flow: TrafficFlow, u: Switch, v: Switch, cfg: PathCostConfig
) -> float:
    """Dynamic power (mW) the flow adds on link u->v plus switch v."""
    return units.traffic_power_mw(
        flow.bandwidth_mbps, _edge_traffic_ebit(topo, u, v, cfg)
    )


class EdgeCostCache:
    """Memoized per-switch-pair cost terms with link-open invalidation.

    Two terms of the edge cost are cached per directed switch pair:

    * the **static open cost** — depends on the pair's islands and
      frequencies (static) and on whether either endpoint is still
      unconnected (its clock-tree/leakage floor is charged on first
      use, the ``n_in/n_out`` degeneracy);
    * the **traffic energy per bit** — depends on the pair's islands
      and on the downstream switch's port counts.

    Both inputs change only when a link opens, so
    :meth:`invalidate_switch` must be called for both endpoints of
    every newly opened link (attaching cores also changes port counts,
    but all NIs are attached before routing starts).  Invalidation is a
    per-switch version bump: a pair entry is valid only while both
    endpoints still carry the version it was stored under, which makes
    invalidating a switch O(1) instead of a scan over its pairs.

    Underneath the pair entries sits a second, parameter-keyed level
    shared across routing attempts: the cost terms are pure functions
    of a handful of switch attributes, so a pair miss usually resolves
    to a dict hit instead of re-running the power-model arithmetic.

    Internally everything is integer-indexed: switches map to their
    position in the topology's insertion order, versions live in a flat
    list, and a directed pair keys as ``u_idx * n + v_idx``.  The
    router's inner loop does not go through this class — it uses the
    allocator's int-keyed pure-function memos directly (same value
    functions, different keying); this class is the object-level view
    for tests and non-hot callers.  The router's keying is guarded by
    the cached-vs-uncached determinism tests, which bypass every memo
    in reference mode.

    Capacity checks are *not* cached — residual bandwidth changes on
    every routed flow and is already O(1) to read.
    """

    __slots__ = (
        "_topo",
        "_cfg",
        "_sw_list",
        "_idx_map",
        "_n",
        "_static",
        "_ebit",
        "_versions",
        "_static_by_param",
        "_ebit_by_param",
        "hits",
        "misses",
    )

    def __init__(
        self,
        topo: Topology,
        cfg: PathCostConfig,
        static_by_param: Optional[Dict[tuple, float]] = None,
        ebit_by_param: Optional[Dict[tuple, float]] = None,
        sw_list: Optional[List[Switch]] = None,
    ) -> None:
        self._topo = topo
        self._cfg = cfg
        self._sw_list = sw_list if sw_list is not None else list(topo.switches.values())
        self._idx_map: Optional[Dict[str, int]] = None  # built on first id lookup
        self._n = len(self._sw_list)
        # u_idx * n + v_idx -> (u_version, v_version, value)
        self._static: Dict[int, Tuple[int, int, float]] = {}
        self._ebit: Dict[int, Tuple[int, int, float]] = {}
        self._versions: List[int] = [0] * self._n
        self._static_by_param = static_by_param if static_by_param is not None else {}
        self._ebit_by_param = ebit_by_param if ebit_by_param is not None else {}
        self.hits = 0
        self.misses = 0

    @property
    def _idx_of(self) -> Dict[str, int]:
        """Switch id -> index, built on first object-API lookup.

        The router's inner loop indexes by integer directly and never
        needs this map, so per-attempt construction skips it.
        """
        m = self._idx_map
        if m is None:
            m = self._idx_map = {sw.id: i for i, sw in enumerate(self._sw_list)}
        return m

    def static_open_cost(self, u: Switch, v: Switch) -> float:
        """Memoized :func:`_edge_static_open_cost` for ``u -> v``."""
        ui = self._idx_of[u.id]
        vi = self._idx_of[v.id]
        vu = self._versions[ui]
        vv = self._versions[vi]
        key = ui * self._n + vi
        entry = self._static.get(key)
        if entry is not None and entry[0] == vu and entry[1] == vv:
            self.hits += 1
            return entry[2]
        self.misses += 1
        param = (
            u.freq_mhz,
            v.freq_mhz,
            u.island != v.island,
            u.n_in == 0 and u.n_out == 0,
            v.n_in == 0 and v.n_out == 0,
        )
        value = self._static_by_param.get(param)
        if value is None:
            value = _edge_static_open_cost(self._topo, u, v, self._cfg)
            self._static_by_param[param] = value
        self._static[key] = (vu, vv, value)
        return value

    def traffic_ebit(self, u: Switch, v: Switch) -> float:
        """Memoized :func:`_edge_traffic_ebit` for ``u -> v``."""
        ui = self._idx_of[u.id]
        vi = self._idx_of[v.id]
        vu = self._versions[ui]
        vv = self._versions[vi]
        key = ui * self._n + vi
        entry = self._ebit.get(key)
        if entry is not None and entry[0] == vu and entry[1] == vv:
            self.hits += 1
            return entry[2]
        self.misses += 1
        param = (u.island != v.island, v.n_in, v.n_out)
        value = self._ebit_by_param.get(param)
        if value is None:
            value = _edge_traffic_ebit(self._topo, u, v, self._cfg)
            self._ebit_by_param[param] = value
        self._ebit[key] = (vu, vv, value)
        return value

    def invalidate_switch(self, switch_id: str) -> None:
        """Invalidate every cached term involving ``switch_id``.

        Call for both endpoints after opening a link: the open changes
        the endpoints' port counts (traffic term of edges into them)
        and clears their first-use degeneracy (static term).
        """
        self._versions[self._idx_of[switch_id]] += 1

    def is_current(self, u_id: str, v_id: str) -> bool:
        """True if the pair entry for ``u_id -> v_id`` is still valid.

        Introspection for tests; the lookup methods perform the same
        check inline.
        """
        ui = self._idx_of[u_id]
        vi = self._idx_of[v_id]
        key = ui * self._n + vi
        for table in (self._static, self._ebit):
            entry = table.get(key)
            if entry is not None and (
                entry[0] != self._versions[ui] or entry[1] != self._versions[vi]
            ):
                return False
        return True

    def __len__(self) -> int:
        return len(self._static) + len(self._ebit)


# ----------------------------------------------------------------------
# Allocation engine
# ----------------------------------------------------------------------


class PathAllocator:
    """Reusable path-allocation engine for one design-point candidate.

    Construction freezes everything that is identical across the
    intermediate-count sweep and the port-reserve retries: the flow
    order, the per-island size bounds, and the switch/NI scaffold
    (built once through the validating construction path, then cloned
    per attempt when ``use_cache`` is on).

    ``use_cache=False`` rebuilds the scaffold from scratch for every
    attempt and recomputes every edge-cost term — the reference mode
    used to prove the fast path changes nothing.
    """

    def __init__(
        self,
        spec: SoCSpec,
        library: NocLibrary,
        plans: Mapping[int, IslandPlan],
        partitions: Mapping[int, Sequence[Set[str]]],
        cost_config: Optional[PathCostConfig] = None,
        use_cache: bool = True,
        kernel: str = "auto",
    ) -> None:
        self.spec = spec
        self.library = library
        self.plans = plans
        self.partitions = partitions
        self.cfg = cost_config or PathCostConfig()
        self.use_cache = use_cache
        # Reference mode pins the scalar kernel: cached runs default to
        # the vector kernel, so every cached-vs-uncached determinism
        # test doubles as a scalar-vs-vector parity check.
        self.kernel = resolve_kernel(kernel) if use_cache else "scalar"

        self._base_freqs: Dict[int, float] = {
            isl: plan.freq_mhz for isl, plan in plans.items()
        }
        self._mid_freq = intermediate_island_freq_mhz(plans)
        self._max_sizes: Dict[int, int] = {
            isl: plan.max_switch_size for isl, plan in plans.items()
        }
        self._max_sizes[INTERMEDIATE_ISLAND] = library.max_switch_size_for_freq(
            self._mid_freq
        )
        self._init_search_state(plans)

    def _init_search_state(self, islands: Iterable[int]) -> None:
        """State shared by both constructors (memos, stores, counters).

        Everything here depends only on the spec and the island id set
        — ``__init__`` and :meth:`for_topology` derive their frequency
        and size-bound tables differently but share all of this.
        Keeping it in one place means a new field cannot silently go
        missing from one construction path.
        """
        spec = self.spec
        # Flows in decreasing bandwidth order (deterministic tiebreak).
        self._ordered_flows = sorted(
            spec.flows,
            key=lambda f: (-f.bandwidth_mbps, f.latency_cycles, f.key),
        )
        self._min_lat = spec.min_latency_cycles
        # Scaffold (built lazily on first use): either a Topology to
        # clone or an AllocationResult describing why building failed.
        self._scaffold: Optional[Topology] = None
        self._scaffold_failure: Optional[AllocationResult] = None
        # Parameter-keyed cost memos shared across attempts (the cost
        # terms are pure in these parameters; see EdgeCostCache).
        self._static_by_param: Dict[tuple, float] = {}
        self._ebit_by_param: Dict[tuple, float] = {}
        # Int-keyed views of the same pure-function memos for the
        # router's inner loop.  Every switch is clocked at its island's
        # planned frequency, so the static open cost is fully determined
        # by (u.island, v.island, u fresh?, v fresh?) and the traffic
        # energy per bit by (crossing?, v.n_in, v.n_out); the island
        # pair encodes into each edge at adjacency build time, leaving
        # one add/or plus a dict probe per lookup.
        self._island_ix: Dict[int, int] = {
            isl: i
            for i, isl in enumerate(
                sorted(set(islands) | {INTERMEDIATE_ISLAND})
            )
        }
        self._static_by_key: Dict[int, float] = {}
        self._ebit_by_key: Dict[int, float] = {}
        # Pure-function memo: island-pair min frequency -> link capacity.
        self._cap_by_freq: Dict[float, float] = {}
        # Candidate adjacency hoisted across attempts (fast path only):
        # (n_switches, src_island, dst_island) -> per-switch successor
        # tuples.  Edges hold indices and attempt-invariant data only
        # (islands, frequencies and size bounds never change between
        # attempts), so one build serves every clone with the same
        # intermediate count.
        self._adj_store: Dict[Tuple[int, int, int], List[Optional[tuple]]] = {}
        # Vector-kernel mirrors of the same candidate adjacency, lowered
        # to flat numpy arrays (one CSR-style row per popped switch):
        # successor indices, crossing/reserve masks, size bounds, link
        # capacity, and the attempt-invariant pieces of the static-open
        # and traffic-e_bit cost terms.  Same keying and lifetime as
        # _adj_store.
        self._vec_store: Dict[Tuple[int, int, int], tuple] = {}
        # Direct-open dominance bound of the vector kernel, computed
        # lazily once per allocator: (enabled, e_bit floor, static
        # floor, intra/cross e_bit floors).  See _direct_open_bound.
        self._shortcut_bound: Optional[Tuple[bool, float, float, float, float]] = None
        # Dijkstra tie-break tables per switch count: heap entries carry
        # the switch's rank in sorted-id order, which reproduces the
        # historical (cost, switch_id) string comparison exactly.
        self._ranks_store: Dict[int, Tuple[List[int], List[int]]] = {}
        # Per-flow routing plan (endpoint switch indices, NI link ids,
        # latency pressure) — identical for every attempt because the
        # scaffold's ids are deterministic and clones preserve them.
        self._flow_plan: Optional[List[tuple]] = None
        # Intermediate-island dominance skip (fast path only): if the
        # 0-intermediate attempt succeeded without a single capacity or
        # port rejection, every candidate path through an indirect
        # switch is strictly dominated — an x -> mid ... mid -> y
        # segment always collapses to the direct x -> y edge, which was
        # never blocked and is strictly cheaper (fewer hops, fewer
        # converters, no fresh-switch floor).  The k>0 attempts would
        # therefore reproduce the k=0 routing exactly and prune every
        # indirect switch; allocate() returns the k=0 result instead of
        # re-routing.  Any rejection anywhere clears the guarantee.
        self._k0_result: Optional[AllocationResult] = None
        self._k0_unblocked = False
        self._blocked = False
        # Counters flushed to the active PerfRecorder per allocate().
        self._pops = 0
        self._edge_evals = 0
        self._links_opened = 0
        self._scaffold_clones = 0
        self._scaffold_builds = 0
        self._cache_hits = 0
        self._cache_misses = 0
        # Vector-kernel counters: searches answered by the O(1)
        # direct-open shortcut, and pops/edges that went through the
        # batched numpy frontier instead of the scalar loop
        # (vector_edges is also included in edge_evals, so the ratio
        # batched/total is directly readable from one snapshot).
        self._shortcuts = 0
        self._vec_pops = 0
        self._vec_edges = 0

    @classmethod
    def for_topology(
        cls,
        topology: Topology,
        cost_config: Optional[PathCostConfig] = None,
        use_cache: bool = True,
        kernel: str = "auto",
    ) -> "PathAllocator":
        """An allocator view over an already-routed topology.

        Spare-path (backup-route) allocation searches the *finished*
        topology of a design point, long after the plans/partitions
        that built it are gone.  Everything the search needs is
        recoverable from the topology itself: island frequencies are
        stored on it, and the per-island switch-size bound is a pure
        function of the frequency
        (:meth:`~repro.power.library.NocLibrary.max_switch_size_for_freq`
        — exactly how :func:`repro.core.frequency.plan_island` derived
        it).  The returned allocator shares the same int-indexed
        Dijkstra, adjacency store and cost memos as the synthesis fast
        path; it must not be used for primary allocation (it has no
        scaffold or partitions).
        """
        self = cls.__new__(cls)
        self.spec = topology.spec
        self.library = topology.library
        self.plans = {}
        self.partitions = {}
        self.cfg = cost_config or PathCostConfig()
        self.use_cache = use_cache
        self.kernel = resolve_kernel(kernel) if use_cache else "scalar"
        self._base_freqs = {
            isl: f
            for isl, f in topology.island_freqs.items()
            if isl != INTERMEDIATE_ISLAND
        }
        self._mid_freq = topology.island_freqs.get(
            INTERMEDIATE_ISLAND, max(self._base_freqs.values(), default=0.0)
        )
        self._max_sizes = {
            isl: topology.library.max_switch_size_for_freq(f)
            for isl, f in topology.island_freqs.items()
        }
        self._init_search_state(topology.island_freqs)
        return self

    # -- public API ----------------------------------------------------

    @property
    def k0_dominance(self) -> bool:
        """Whether the k=0 dominance shortcut is armed (see ``allocate``)."""
        return self._k0_unblocked

    def seed_k0(self, result: AllocationResult, unblocked: bool) -> None:
        """Restore k=0 state from a cached allocation.

        ``allocate(k > 0)`` is not history-free: the dominance shortcut
        replays the k=0 result when that routing was never capacity- or
        port-constrained.  A cache hit for k=0 must therefore re-arm
        this state, or later cold ``allocate`` calls (and
        ``verify_on_hit`` recomputes) would diverge from the run that
        populated the cache.
        """
        self._k0_result = result
        self._k0_unblocked = bool(unblocked)

    def allocate(self, num_intermediate: int = 0) -> AllocationResult:
        """Route all flows with ``num_intermediate`` indirect switches.

        Retries with 1 then 2 reserved ports per switch when the greedy
        allocation strands the intermediate island (see
        :func:`allocate_paths`).
        """
        if (
            num_intermediate > 0
            and self.use_cache
            and self._k0_unblocked
            and self._k0_result is not None
            and self._k0_result.success
        ):
            # Dominance skip (see __init__): the k=0 routing was never
            # capacity- or port-constrained, so indirect switches can
            # not appear on any optimal path — this attempt would
            # reproduce the k=0 topology and prune every mid switch.
            recorder = active_recorder()
            if recorder is not None:
                recorder.count("intermediate_attempts_skipped")
            return self._k0_result
        reserves = (0, 1, 2) if num_intermediate > 0 else (0,)
        result: Optional[AllocationResult] = None
        for reserve in reserves:
            attempt = self._build_attempt_topology(num_intermediate)
            if isinstance(attempt, AllocationResult):
                result = attempt
                break  # scaffold failure is independent of the reserve
            self._blocked = False
            result = self._route_all(attempt, reserve)
            if result.success:
                break
        if num_intermediate == 0:
            self._k0_result = result
            # The dominance argument needs every cost term non-negative
            # (physical energies are; the config weights could be
            # zeroed or inverted by exotic configs).
            self._k0_unblocked = (
                bool(result.success)
                and not self._blocked
                and self.cfg.latency_cost_mw_per_cycle >= 0.0
                and self.cfg.open_cost_weight >= 0.0
            )
        self._flush_counters()
        assert result is not None
        return result

    def route_backup(
        self,
        topo: Topology,
        sw_list: List[Switch],
        pair_links: Dict[int, List[Link]],
        flow: TrafficFlow,
        src_i: int,
        dst_i: int,
        forbidden_links: Set[int],
        blocked_switches: Optional[Set[int]] = None,
        reserved: Optional[Mapping[int, float]] = None,
        allow_open: bool = True,
        latency_only: bool = False,
    ) -> Optional[Tuple[List[Tuple[int, int, str, Optional[Link]]], int]]:
        """One backup-route search for ``flow`` avoiding failed-prone parts.

        The k-edge-disjoint entry point (see
        :mod:`repro.resilience.spare_paths`): the same int-indexed
        Dijkstra and cost memos as primary allocation, with the flow's
        primary (and earlier-backup) links forbidden, optional
        intermediate switches blocked (node-disjoint mode), and earlier
        spare reservations counted against link capacity.  The
        shutdown-safety transition rule applies unchanged — a backup
        may not cross a third-party voltage island either.

        ``sw_list``/``pair_links`` are the caller-maintained views of
        ``topo`` (see :meth:`_route_all` for their shape); the caller
        opens the returned ``_OPEN`` hops and keeps both views current.
        Returns ``(hops, zero_load_latency_cycles)`` or ``None``.
        """
        n = len(sw_list)
        min_lat = self._min_lat
        pressure = (
            min_lat / flow.latency_cycles if flow.latency_cycles > 0 else 1.0
        )
        lib = self.library
        unit_intra = self.cfg.latency_cost_mw_per_cycle * (
            lib.link_traversal_cycles + lib.switch_traversal_cycles
        )
        unit_cross = self.cfg.latency_cost_mw_per_cycle * (
            lib.fifo_crossing_cycles + lib.switch_traversal_cycles
        )
        found = self._search(
            topo,
            sw_list,
            n,
            self._adj_store if self.use_cache else {},
            self._ranks(sw_list),
            self.use_cache,
            pair_links,
            flow,
            src_i,
            dst_i,
            unit_intra * pressure,
            unit_cross * pressure,
            0,
            latency_only=latency_only,
            forbidden_links=forbidden_links,
            blocked_switches=blocked_switches,
            reserved=reserved,
            allow_open=allow_open,
        )
        self._flush_counters()
        return found

    def route_around(
        self,
        topo: Topology,
        key: FlowKey,
        forbidden_links: Iterable[int],
        blocked_switches: Iterable[str] = (),
        reserved: Optional[Mapping[int, float]] = None,
    ) -> Optional[Tuple[Route, int]]:
        """Online reroute of one routed flow on *existing* hardware.

        The control-plane entry point: reroute ``key`` around a set of
        failed links / switches using only links the fabbed design
        already has (``allow_open=False`` — a runtime controller cannot
        add wires), keeping the flow's NI attachment links and the
        shutdown-safety transition rule.  ``reserved`` subtracts
        cold-standby spare reservations from link headroom so an
        online reroute never eats another flow's guaranteed backup
        capacity.  Wraps :meth:`route_backup` with the
        ``sw_list``/``pair_links`` plumbing built from ``topo``
        directly; returns ``(route, zero_load_latency_cycles)`` or
        ``None`` when no surviving path exists.
        """
        with span("paths.route_around", flow="%s->%s" % key) as s:
            found = self._route_around(
                topo, key, forbidden_links, blocked_switches, reserved
            )
            if s is not None:
                s.set(found=found is not None)
            return found

    def _route_around(
        self,
        topo: Topology,
        key: FlowKey,
        forbidden_links: Iterable[int],
        blocked_switches: Iterable[str] = (),
        reserved: Optional[Mapping[int, float]] = None,
    ) -> Optional[Tuple[Route, int]]:
        route = topo.routes.get(key)
        if route is None:
            return None
        flow = topo.spec.flow(*key)
        sw_list: List[Switch] = list(topo.switches.values())
        n = len(sw_list)
        idx_of = {sw.id: i for i, sw in enumerate(sw_list)}
        pair_links: Dict[int, List[Link]] = {}
        for link in topo.links.values():
            if link.kind != "sw2sw":
                continue
            pkey = idx_of[link.src] * n + idx_of[link.dst]
            pair_links.setdefault(pkey, []).append(link)
        for links in pair_links.values():
            links.sort(key=lambda l: l.id)
        src_i = idx_of[topo.switch_of_core(flow.src).id]
        dst_i = idx_of[topo.switch_of_core(flow.dst).id]
        blocked = {
            idx_of[sid] for sid in blocked_switches if sid in idx_of
        } - {src_i, dst_i}
        found = self.route_backup(
            topo,
            sw_list,
            pair_links,
            flow,
            src_i,
            dst_i,
            set(forbidden_links),
            blocked_switches=blocked or None,
            reserved=reserved,
            allow_open=False,
        )
        if found is None:
            return None
        hops, cycles = found
        link_ids: List[int] = [route.links[0]]
        for _ui, _vi, _action, link in hops:
            # allow_open=False: every hop reuses an existing link.
            link_ids.append(link.id)
        link_ids.append(route.links[-1])
        comps = [ni_id(flow.src)]
        for lid in link_ids:
            comps.append(topo.links[lid].dst)
        return (
            Route(flow=key, components=tuple(comps), links=tuple(link_ids)),
            cycles,
        )

    # -- scaffold ------------------------------------------------------

    def _build_scaffold(self) -> None:
        """Instantiate switches and attach cores (steps 12–13), once."""
        topo = Topology(self.spec, self.library, self._base_freqs)
        for isl in sorted(self.partitions):
            for idx, group in enumerate(self.partitions[isl]):
                if not group:
                    raise SynthesisError("empty core group in island %r" % isl)
                if len(group) > self._max_sizes[isl]:
                    self._scaffold_failure = AllocationResult(
                        topology=None,
                        success=False,
                        reason="group of %d cores exceeds max switch size %d in island %d"
                        % (len(group), self._max_sizes[isl], isl),
                    )
                    return
                sw = topo.add_switch(isl, idx)
                for core in sorted(group):
                    topo.attach_core(core, sw)
        self._scaffold = topo

    def _build_attempt_topology(self, num_intermediate: int):
        """A fresh topology for one routing attempt (clone or rebuild)."""
        if self._scaffold is None and self._scaffold_failure is None:
            # First call — or reference mode, where each attempt consumes
            # the scaffold below and re-runs the validating construction
            # path here.
            self._build_scaffold()
            self._scaffold_builds += 1
        if self._scaffold_failure is not None:
            return self._scaffold_failure
        assert self._scaffold is not None
        if self.use_cache:
            topo = self._scaffold.clone_scaffold()
            self._scaffold_clones += 1
        else:
            topo = self._scaffold
            self._scaffold = None  # consumed; next attempt rebuilds
        if num_intermediate > 0:
            topo.island_freqs[INTERMEDIATE_ISLAND] = self._mid_freq
            for idx in range(num_intermediate):
                topo.add_switch(INTERMEDIATE_ISLAND, idx)
        return topo

    # -- routing -------------------------------------------------------

    def _build_flow_plan(self, topo: Topology) -> List[tuple]:
        """Per-flow routing endpoints, resolved once for all attempts.

        Scaffold switch ids, NI link ids and core attachments are
        deterministic and preserved by :meth:`Topology.clone_scaffold`,
        so each flow's endpoint switch *indices* (position in switch
        insertion order), NI link ids and latency pressure are
        attempt-invariant.
        """
        idx_of = {sid: i for i, sid in enumerate(topo.switches)}
        min_lat = self._min_lat
        lib = self.library
        # Pressure-weighted hop-latency costs, precomputed per flow with
        # the historical association order ((weight * cycles) * pressure)
        # so the floats match the old per-search computation bit for bit.
        unit_intra = self.cfg.latency_cost_mw_per_cycle * (
            lib.link_traversal_cycles + lib.switch_traversal_cycles
        )
        unit_cross = self.cfg.latency_cost_mw_per_cycle * (
            lib.fifo_crossing_cycles + lib.switch_traversal_cycles
        )
        plan = []
        for flow in self._ordered_flows:
            sw_src = topo.switch_of_core(flow.src)
            sw_dst = topo.switch_of_core(flow.dst)
            ni_src_lid = _ni_link(topo, ni_id(flow.src), sw_src.id).id
            ni_dst_lid = _ni_link(topo, sw_dst.id, ni_id(flow.dst)).id
            pressure = (
                min_lat / flow.latency_cycles if flow.latency_cycles > 0 else 1.0
            )
            plan.append(
                (
                    flow,
                    sw_src.id == sw_dst.id,
                    idx_of[sw_src.id],
                    idx_of[sw_dst.id],
                    ni_src_lid,
                    ni_dst_lid,
                    unit_intra * pressure,
                    unit_cross * pressure,
                )
            )
        return plan

    def _ranks(self, sw_list: List[Switch]) -> Tuple[List[int], List[int]]:
        """Tie-break tables: index -> sorted-id rank and its inverse.

        Heap entries carry ranks instead of id strings; because rank
        order equals lexicographic id order, cost ties pop in exactly
        the order the historical ``(cost, switch_id)`` heap produced.
        """
        n = len(sw_list)
        store = self._ranks_store if self.use_cache else {}
        tables = store.get(n)
        if tables is None:
            idx_by_rank = sorted(range(n), key=lambda i: sw_list[i].id)
            rank_of = [0] * n
            for rank, idx in enumerate(idx_by_rank):
                rank_of[idx] = rank
            tables = (rank_of, idx_by_rank)
            store[n] = tables
        return tables

    def _route_all(
        self, topo: Topology, port_reserve: int
    ) -> AllocationResult:
        """One allocation attempt with a fixed port reservation."""
        cfg = self.cfg
        sw_list = list(topo.switches.values())
        n = len(sw_list)
        use_memo = self.use_cache
        adj_store = self._adj_store if use_memo else {}
        ranks = self._ranks(sw_list)
        # Existing sw2sw links per directed pair (``u_idx * n + v_idx``),
        # in link-id order; maintained incrementally as links open.  The
        # scaffold carries only NI attachment links, so this starts empty.
        pair_links: Dict[int, List[Link]] = {}
        if self._flow_plan is None:
            self._flow_plan = self._build_flow_plan(topo)
        lib = self.library
        sw_cycles = lib.switch_traversal_cycles
        lat_intra_cycles = lib.link_traversal_cycles + sw_cycles
        lat_cross_cycles = lib.fifo_crossing_cycles + sw_cycles
        # The shortcut's strict-dominance argument needs every cost
        # term non-negative; an exotic negative open weight could make
        # opening a parallel link beat reusing an existing one.
        open_weight_ok = cfg.open_cost_weight >= 0.0
        # Vector kernel: the O(1) direct-open shortcut plus, on graphs
        # large enough to amortize numpy dispatch, whole-frontier edge
        # evaluation over the flat-array attempt state.
        shortcut_on = False
        bound: Tuple[float, ...] = ()
        vec: Optional[list] = None
        # Outgoing pair keys per source index (subset view of
        # pair_links), so the shortcut's "could the first edge of an
        # alternative path reuse a link?" probe is O(out-degree).
        out_keys: Dict[int, List[int]] = {}
        if self.kernel == "vector":
            bound = self._direct_open_bound()
            shortcut_on = bound[0]
            np_mod = numpy_or_none()
            if np_mod is not None and n >= VECTOR_MIN_SWITCHES:
                vec = self._vec_attempt_state(np_mod, sw_list, n)
        links_opened = 0
        via_mid = 0
        for (
            flow, same_switch, src_i, dst_i, ni_src_lid, ni_dst_lid,
            lat_cost_intra, lat_cost_cross,
        ) in self._flow_plan:
            if same_switch:
                # Same switch: NI -> switch -> NI, one switch traversal.
                topo.assign_route(flow, [ni_src_lid, ni_dst_lid], validate=False)
                continue
            found = None
            # Direct-reuse shortcut: every edge cost is strictly
            # positive (traffic energy, wire/FIFO energy and any
            # non-negative latency weight), so when an existing
            # src->dst link still has capacity, the one-hop reuse path
            # strictly beats every alternative — opening costs extra
            # static power on the same edge, and any multi-hop path
            # pays the destination crossbar *plus* additional hops.
            # The full search would return exactly this path; skip it.
            if open_weight_ok and lat_cost_intra >= 0.0 and lat_cost_cross >= 0.0:
                direct = pair_links.get(src_i * n + dst_i)
                if direct:
                    bw = flow.bandwidth_mbps
                    for link in direct:
                        if link.capacity_mbps - link._used_mbps + 1e-9 >= bw:
                            crossing = (
                                sw_list[src_i].island != sw_list[dst_i].island
                            )
                            found = (
                                [(src_i, dst_i, _REUSE, link)],
                                sw_cycles
                                + (lat_cross_cycles if crossing else lat_intra_cycles),
                            )
                            break
                # Direct-open dominance shortcut (vector kernel): when
                # opening the direct src->dst link is provably at most
                # the cost of any two cheapest-possible edges, no
                # multi-hop alternative can beat it and the search is
                # answered in O(1).  Same non-negativity guard as the
                # reuse shortcut above.
                if found is None and shortcut_on:
                    found = self._direct_open_shortcut(
                        topo, sw_list, n, pair_links, out_keys, flow,
                        src_i, dst_i, lat_cost_intra, lat_cost_cross,
                        port_reserve, bound, sw_cycles,
                        lat_intra_cycles, lat_cross_cycles,
                    )
            if found is None:
                found = self._search(
                    topo, sw_list, n, adj_store, ranks, use_memo, pair_links,
                    flow, src_i, dst_i, lat_cost_intra, lat_cost_cross, port_reserve,
                    vec=vec,
                )
            if found is None:
                return AllocationResult(
                    topology=None,
                    success=False,
                    failed_flow=flow.key,
                    reason="no feasible switch path for flow %s->%s" % flow.key,
                    links_opened=links_opened,
                )
            # Latency check against the flow budget; the NI links are
            # free, each switch costs 1 cycle and each hop its link
            # cycles.
            hops, latency = found
            if latency > flow.latency_cycles + 1e-9:
                found2 = self._search(
                    topo, sw_list, n, adj_store, ranks, use_memo, pair_links,
                    flow, src_i, dst_i, lat_cost_intra, lat_cost_cross,
                    port_reserve, latency_only=True,
                )
                if found2 is not None:
                    hops2, lat2 = found2
                    if lat2 < latency:
                        hops, latency = hops2, lat2
                if latency > flow.latency_cycles + 1e-9:
                    return AllocationResult(
                        topology=None,
                        success=False,
                        failed_flow=flow.key,
                        reason="latency %d exceeds budget %.1f for flow %s->%s"
                        % (latency, flow.latency_cycles, flow.src, flow.dst),
                        links_opened=links_opened,
                    )
            link_ids = [ni_src_lid]
            touched_mid = False
            for ui, vi, action, link in hops:
                if action == _OPEN:
                    link = topo.open_link(sw_list[ui].id, sw_list[vi].id)
                    links_opened += 1
                    key = ui * n + vi
                    lst = pair_links.get(key)
                    if lst is None:
                        pair_links[key] = [link]
                        ok = out_keys.get(ui)
                        if ok is None:
                            out_keys[ui] = [key]
                        else:
                            ok.append(key)
                    else:
                        lst.append(link)
                link_ids.append(link.id)
                if sw_list[vi].is_intermediate:
                    touched_mid = True
            link_ids.append(ni_dst_lid)
            # Routes are correct by construction here (the search
            # enforced capacity and continuity); the per-point
            # validate_topology pass still audits the final result.
            topo.assign_route(flow, link_ids, validate=False)
            if vec is not None:
                self._vec_update(vec, sw_list, n, pair_links, hops)
            if touched_mid:
                via_mid += 1

        _prune_unused_intermediate(topo)
        self._links_opened += links_opened
        return AllocationResult(
            topology=topo,
            success=True,
            links_opened=links_opened,
            flows_via_intermediate=via_mid,
        )

    # -- vector kernel -------------------------------------------------

    def _direct_open_bound(self) -> Tuple[bool, float, float, float, float]:
        """Direct-open shortcut soundness plus its e_bit and static floors.

        The shortcut's dominance argument compares the direct open cost
        against a two-edge lower bound.  That bound is only valid when
        every cost term is non-negative (each library parameter feeding
        the static and traffic terms, plus the open weight) so that a
        path's cost is monotone in its edge count; any exotic negative
        parameter disables the shortcut and the full search runs
        instead.  The e_bit floors are the smallest traffic
        energy-per-bit an edge of each kind can carry — the cheapest
        switch crossbar (2 ports; the per-port term is non-negative
        here) plus the intra-island wire, or the cross-island wire with
        its converter — returned per kind (intra, cross) plus their
        minimum, so the shortcut can charge a crossing flow's
        alternative for the island crossing it cannot avoid.  The
        static floor is the smallest static cost
        any *open* edge can pay — the minimum over every ordered island
        pair (intermediate included, so the floor is valid in every
        attempt of the intermediate-count sweep) of the non-fresh
        :func:`_edge_static_open_cost` value.  Freshness only *adds*
        non-negative terms mid-accumulation, and float addition of a
        non-negative value is monotone, so the non-fresh float value
        lower-bounds every real edge's static cost.
        """
        bound = self._shortcut_bound
        if bound is None:
            lib = self.library
            cfg = self.cfg
            sound = (
                lib.switch_idle_mw_per_mhz_per_port >= 0.0
                and lib.switch_idle_mw_per_mhz_base >= 0.0
                and lib.switch_leak_mw_per_port >= 0.0
                and lib.switch_leak_mw_base >= 0.0
                and lib.link_leak_mw_per_mm >= 0.0
                and lib.fifo_idle_mw_per_mhz >= 0.0
                and lib.fifo_leak_mw >= 0.0
                and lib.switch_ebit_base_pj >= 0.0
                and lib.switch_ebit_per_port_pj >= 0.0
                and lib.link_ebit_per_mm_pj >= 0.0
                and lib.fifo_ebit_pj >= 0.0
                and cfg.nominal_intra_link_mm >= 0.0
                and cfg.nominal_cross_link_mm >= 0.0
                and cfg.open_cost_weight >= 0.0
            )
            if sound:
                # Per-kind e_bit floors, accumulated in the exact order
                # _edge_traffic_ebit uses (wire, then crossbar, then
                # converter) so float monotonicity makes every real
                # edge's e_bit >= its kind's floor.
                intra_floor = lib.link_ebit_pj(cfg.nominal_intra_link_mm)
                intra_floor += lib.switch_ebit_pj(1, 1)
                cross_floor = lib.link_ebit_pj(cfg.nominal_cross_link_mm)
                cross_floor += lib.switch_ebit_pj(1, 1)
                cross_floor += lib.fifo_ebit_pj
                any_floor = intra_floor if intra_floor < cross_floor else cross_floor
                # Mirrors _edge_static_open_cost for non-fresh endpoints,
                # accumulated in the same order so each float value
                # equals what the real cost function would produce.
                freqs = dict(self._base_freqs)
                freqs[INTERMEDIATE_ISLAND] = self._mid_freq
                static_floor = None
                for ia, fa in freqs.items():
                    for ib, fb in freqs.items():
                        crossing = ia != ib
                        length = (
                            cfg.nominal_cross_link_mm
                            if crossing
                            else cfg.nominal_intra_link_mm
                        )
                        s = lib.switch_idle_mw_per_mhz_per_port * (fa + fb)
                        s += 2.0 * lib.switch_leak_mw_per_port
                        s += lib.link_leakage_mw(length)
                        if crossing:
                            s += lib.fifo_idle_power_mw(fa, fb) + lib.fifo_leakage_mw()
                        if static_floor is None or s < static_floor:
                            static_floor = s
                if static_floor is None or static_floor < 0.0:
                    static_floor = 0.0
                bound = (True, any_floor, static_floor, intra_floor, cross_floor)
            else:
                bound = (False, 0.0, 0.0, 0.0, 0.0)
            self._shortcut_bound = bound
        return bound

    def _direct_open_shortcut(
        self,
        topo: Topology,
        sw_list: List[Switch],
        n: int,
        pair_links: Dict[int, List[Link]],
        out_keys: Dict[int, List[int]],
        flow: TrafficFlow,
        src_i: int,
        dst_i: int,
        lat_cost_intra: float,
        lat_cost_cross: float,
        port_reserve: int,
        bound: Tuple[float, ...],
        sw_cycles: int,
        lat_intra_cycles: int,
        lat_cross_cycles: int,
    ) -> Optional[Tuple[List[Tuple[int, int, str, Optional[Link]]], int]]:
        """O(1) answer when opening the direct link is provably optimal.

        Every alternative to the direct ``src -> dst`` open has at
        least two edges (the caller already established there is no
        reusable direct link), and — with the non-negativity guarantees
        of :meth:`_direct_open_bound` — each edge costs at least
        ``LB = bits/s * e_bit_floor + min(latency terms)``.  Two
        O(out-degree) probes over ``out_keys`` tighten that further:
        unless some reusable ``src -> w`` link leads to a reusable
        ``w -> dst`` link (a possible two-edge all-reuse path), every
        alternative either opens a link somewhere — paying
        ``open_weight * static_floor`` on top of ``2 * LB`` — or
        reuses only and needs at least three edges (``3 * LB``).  So
        whenever the exact direct open cost is at most the applicable
        floor, the search would relax the destination to exactly this
        cost at the first pop and never improve on it (relaxation
        requires a strict ``1e-12`` win, so ties keep the direct edge).
        The argument holds in *any* supergraph, intermediate switches
        included — the floors minimize over the intermediate island too
        — which is why a skipped search cannot hide evidence the
        intermediate-dominance skip would have needed: a flow answered
        here routes identically at every intermediate count.

        Feasibility (port limits, reserve, capacity, the parallel-link
        policy) and the cost floats mirror the open branch of
        :meth:`_search` exactly; infeasibility or a failed bound falls
        back to the full search.
        """
        cfg = self.cfg
        existing = pair_links.get(src_i * n + dst_i)
        if existing and not cfg.allow_parallel_links:
            return None
        u = sw_list[src_i]
        v = sw_list[dst_i]
        u_new_out = u.n_out + 1
        if u.n_in > u_new_out:
            u_new_out = u.n_in
        new_v = v.n_in + 1
        if v.n_out > new_v:
            new_v = v.n_out
        crossing = u.island != v.island
        lim_u = self._max_sizes[u.island]
        lim_v = self._max_sizes[v.island]
        # Flow endpoints are core switches, never intermediate, so the
        # reserve applies exactly when the link crosses islands.
        if port_reserve and crossing:
            lim_u -= port_reserve
            lim_v -= port_reserve
        if u_new_out > lim_u or new_v > lim_v:
            return None
        freq = u.freq_mhz if u.freq_mhz < v.freq_mhz else v.freq_mhz
        capacity = self._cap_by_freq.get(freq)
        if capacity is None:
            capacity = self.library.link_capacity_mbps(freq)
            self._cap_by_freq[freq] = capacity
        bw = flow.bandwidth_mbps
        if capacity + 1e-9 < bw:
            return None
        # Exact same memo keys and cost floats as the search inner loop.
        ekey = ((1 << 23) if crossing else 0) | (v.n_in << 11) | v.n_out
        ebit = self._ebit_by_key.get(ekey)
        if ebit is None:
            self._cache_misses += 1
            ebit = _edge_traffic_ebit(topo, u, v, cfg)
            self._ebit_by_key[ekey] = ebit
        else:
            self._cache_hits += 1
        island_ix = self._island_ix
        skey = (island_ix[u.island] * len(island_ix) + island_ix[v.island]) * 4
        if u.n_in == 0 and u.n_out == 0:
            skey += 2
        if v.n_in == 0 and v.n_out == 0:
            skey += 1
        static = self._static_by_key.get(skey)
        if static is None:
            self._cache_misses += 1
            static = _edge_static_open_cost(topo, u, v, cfg)
            self._static_by_key[skey] = static
        else:
            self._cache_hits += 1
        bits_per_s = bw * units.MEGA * units.BITS_PER_BYTE
        to_mw = units.PJ_PER_BIT_TIMES_BITS_PER_S_TO_MW
        if crossing:
            lat_cost = lat_cost_cross
            lat_cycles = lat_cross_cycles
        else:
            lat_cost = lat_cost_intra
            lat_cycles = lat_intra_cycles
        cost = bits_per_s * ebit * to_mw + cfg.open_cost_weight * static + lat_cost
        _, ebit_floor, static_floor, intra_floor, cross_floor = bound
        lat_floor = lat_cost_intra if lat_cost_intra < lat_cost_cross else lat_cost_cross
        # One-edge floors: the globally cheapest edge, and the cheapest
        # edge of each kind (every floor mirrors the reuse-branch float
        # bracketing ``traffic + lat``, with each operand at its floor).
        lower = bits_per_s * ebit_floor * to_mw + lat_floor
        li = bits_per_s * intra_floor * to_mw + lat_cost_intra
        lc = bits_per_s * cross_floor * to_mw + lat_cost_cross
        m = li if li < lc else lc
        # Kind-aware two-edge floor: a crossing flow's alternative must
        # pay a full crossing edge somewhere (the other edge at least
        # the cheaper kind); an intra flow's alternative stays within
        # the island (two intra edges) or leaves and returns (two
        # crossing edges) — either way at least twice the cheaper kind.
        base2 = (lc + m) if crossing else (m + m)
        # Which switches could an alternative's first edge reach by
        # *reusing* a link out of src (same residual criterion as the
        # search's reuse branch)?  And could any of them reuse a second
        # link straight into dst?  Both probes are O(out-degree of src).
        reuse_mids: List[int] = []
        for key in out_keys.get(src_i, ()):
            for link in pair_links[key]:
                if link.capacity_mbps - link._used_mbps + 1e-9 >= bw:
                    reuse_mids.append(key - src_i * n)
                    break
        two_reuse = False
        for w in reuse_mids:
            lst = pair_links.get(w * n + dst_i)
            if lst:
                for link in lst:
                    if link.capacity_mbps - link._used_mbps + 1e-9 >= bw:
                        two_reuse = True
                        break
            if two_reuse:
                break
        if two_reuse:
            # A two-edge all-reuse path may exist; all we know is that
            # every alternative has at least two edges.
            threshold = base2
        else:
            # Every alternative either opens a link somewhere (paying
            # the open static floor on top of two LB edges; same float
            # bracketing as the open-edge cost above with each operand
            # replaced by its floor — monotonicity of each float op
            # keeps it a true lower bound) or reuses existing links
            # only, which takes at least three edges: a two-edge
            # all-reuse path would need a reusable src->w *and* w->dst
            # link, and the probes above ruled that out.
            open_floor = (
                bits_per_s * ebit_floor * to_mw
                + cfg.open_cost_weight * static_floor
                + lat_floor
            ) + lower
            all_reuse_floor = (lower + lower) + lower
            extra = open_floor if open_floor < all_reuse_floor else all_reuse_floor
            # base2 and extra are both valid lower bounds on every
            # alternative; keep the tighter one.
            threshold = base2 if base2 > extra else extra
        if cost > threshold:
            return None
        self._shortcuts += 1
        return [(src_i, dst_i, _OPEN, None)], sw_cycles + lat_cycles

    def _vec_attempt_state(self, np_mod, sw_list: List[Switch], n: int) -> list:
        """Mutable flat-array mirrors of the per-attempt routing state.

        ``n_in``/``n_out``/freshness per switch plus the best residual
        capacity per directed switch pair (``-inf`` where no link
        exists).  :meth:`_vec_update` refreshes the touched entries from
        the ground-truth topology objects after every routed flow, so
        the batched search never reads stale state.
        """
        nin = np_mod.zeros(n, dtype=np_mod.int64)
        nout = np_mod.zeros(n, dtype=np_mod.int64)
        for i, sw in enumerate(sw_list):
            nin[i] = sw.n_in
            nout[i] = sw.n_out
        fresh = (nin == 0) & (nout == 0)
        avail = np_mod.full(n * n, -np_mod.inf)
        return [np_mod, nin, nout, fresh, avail]

    @staticmethod
    def _vec_update(
        vec: list,
        sw_list: List[Switch],
        n: int,
        pair_links: Dict[int, List[Link]],
        hops: List[Tuple[int, int, str, Optional[Link]]],
    ) -> None:
        """Refresh the vector mirrors for every switch pair a flow touched."""
        _np_mod, nin, nout, fresh, avail = vec
        neg_inf = -float("inf")
        for ui, vi, _action, _link in hops:
            u = sw_list[ui]
            v = sw_list[vi]
            nin[ui] = u.n_in
            nout[ui] = u.n_out
            fresh[ui] = u.n_in == 0 and u.n_out == 0
            nin[vi] = v.n_in
            nout[vi] = v.n_out
            fresh[vi] = v.n_in == 0 and v.n_out == 0
            key = ui * n + vi
            best = neg_inf
            for link in pair_links.get(key, ()):
                a = link.capacity_mbps - link._used_mbps
                if a > best:
                    best = a
            avail[key] = best

    def _vec_row(
        self,
        sw_list: List[Switch],
        candidates: Tuple[int, ...],
        uidx: int,
        isl_a: int,
        isl_b: int,
        np_mod,
    ):
        """Array mirror of :meth:`_successor_row` for one popped switch.

        Holds the attempt-invariant pieces of both cost terms, each
        produced by the same library calls (and the same float
        bracketing) as the scalar formulas in
        :func:`_edge_static_open_cost` / :func:`_edge_traffic_ebit`:
        the static term decomposes into pair idle+leak, per-endpoint
        freshness floors, wire leakage and converter idle+leak; the
        traffic term into wire energy, converter energy and the
        (dynamic, port-dependent) crossbar energy the search gathers
        from the mutable mirrors.  ``False`` marks a switch with no
        allowed successors.
        """
        lib = self.library
        cfg = self.cfg
        mid = INTERMEDIATE_ISLAND
        max_sizes = self._max_sizes
        cap_by_freq = self._cap_by_freq
        u = sw_list[uidx]
        u_isl = u.island
        u_freq = u.freq_mhz
        cols = []
        for cj in candidates:
            if cj == uidx:
                continue
            v = sw_list[cj]
            v_isl = v.island
            if not _allowed_transition(u_isl, v_isl, isl_a, isl_b):
                continue
            crossing = u_isl != v_isl
            length = (
                cfg.nominal_cross_link_mm if crossing else cfg.nominal_intra_link_mm
            )
            freq = u_freq if u_freq < v.freq_mhz else v.freq_mhz
            capacity = cap_by_freq.get(freq)
            if capacity is None:
                capacity = lib.link_capacity_mbps(freq)
                cap_by_freq[freq] = capacity
            cols.append(
                (
                    cj,
                    crossing,
                    crossing and u_isl != mid and v_isl != mid,
                    max_sizes[v_isl],
                    capacity,
                    lib.link_ebit_pj(length),
                    lib.fifo_ebit_pj if crossing else 0.0,
                    lib.switch_idle_mw_per_mhz_per_port * (u_freq + v.freq_mhz)
                    + 2.0 * lib.switch_leak_mw_per_port,
                    lib.switch_idle_mw_per_mhz_base * v.freq_mhz
                    + lib.switch_leak_mw_base,
                    lib.link_leakage_mw(length),
                    (
                        lib.fifo_idle_power_mw(u_freq, v.freq_mhz)
                        + lib.fifo_leakage_mw()
                    )
                    if crossing
                    else 0.0,
                )
            )
        if not cols:
            return False
        arr = np_mod.array
        return (
            arr([c[0] for c in cols], dtype=np_mod.int64),
            arr([c[1] for c in cols], dtype=bool),
            arr([c[2] for c in cols], dtype=bool),
            arr([c[3] for c in cols], dtype=np_mod.int64),
            arr([c[4] for c in cols], dtype=np_mod.float64),
            arr([c[5] for c in cols], dtype=np_mod.float64),
            arr([c[6] for c in cols], dtype=np_mod.float64),
            arr([c[7] for c in cols], dtype=np_mod.float64),
            arr([c[8] for c in cols], dtype=np_mod.float64),
            arr([c[9] for c in cols], dtype=np_mod.float64),
            arr([c[10] for c in cols], dtype=np_mod.float64),
            lib.switch_idle_mw_per_mhz_base * u_freq + lib.switch_leak_mw_base,
        )

    @staticmethod
    def _first_fitting_link(
        pair_links: Dict[int, List[Link]], key: int, bw: float
    ) -> Optional[Link]:
        """First existing link of a pair with residual capacity for ``bw``.

        Same order and same ``1e-9`` criterion as the scalar reuse scan.
        """
        for link in pair_links.get(key, ()):
            if link.capacity_mbps - link._used_mbps + 1e-9 >= bw:
                return link
        return None

    def _search_vector(
        self,
        sw_list: List[Switch],
        n: int,
        ranks: Tuple[List[int], List[int]],
        pair_links: Dict[int, List[Link]],
        flow: TrafficFlow,
        src_i: int,
        dst_i: int,
        lat_cost_intra: float,
        lat_cost_cross: float,
        port_reserve: int,
        vec: list,
    ) -> Optional[Tuple[List[Tuple[int, int, str, Optional[Link]]], int]]:
        """Dijkstra with whole-frontier numpy edge evaluation.

        The heap, visitation and rank tie-breaking are identical to the
        scalar :meth:`_search`; only the per-pop inner loop differs —
        every allowed successor's reuse and open costs come out of a
        handful of array expressions whose float operation order
        replicates the scalar arithmetic term for term, so distances,
        predecessors and therefore routes are byte-identical.  Dead
        edges (neither arm feasible) void the intermediate-dominance
        skip exactly as in the scalar loop.
        """
        np_mod, nin, nout, fresh, avail = vec
        cfg = self.cfg
        isl_a = sw_list[src_i].island
        isl_b = sw_list[dst_i].island
        key = (n, isl_a, isl_b)
        entry = self._vec_store.get(key)
        if entry is None:
            allowed = {isl_a, isl_b, INTERMEDIATE_ISLAND}
            candidates = tuple(
                i for i, s in enumerate(sw_list) if s.island in allowed
            )
            entry = (candidates, [None] * n)
            self._vec_store[key] = entry
        candidates, rows = entry
        bw = flow.bandwidth_mbps
        bits_per_s = bw * units.MEGA * units.BITS_PER_BYTE
        to_mw = units.PJ_PER_BIT_TIMES_BITS_PER_S_TO_MW
        open_weight = cfg.open_cost_weight
        allow_parallel = cfg.allow_parallel_links
        lib = self.library
        ebit_base = lib.switch_ebit_base_pj
        ebit_pp = lib.switch_ebit_per_port_pj
        has_reserve = port_reserve != 0
        max_sizes = self._max_sizes
        rank_of, idx_by_rank = ranks
        inf = float("inf")
        dist = np_mod.full(n, inf)
        dist[src_i] = 0.0
        prev: List[Optional[Tuple[int, str, Optional[Link]]]] = [None] * n
        visited = np_mod.zeros(n, dtype=bool)
        heap: List[Tuple[float, int]] = [(0.0, rank_of[src_i])]
        pops = 0
        evals = 0
        blocked = False
        heappop = heapq.heappop
        heappush = heapq.heappush
        nonzero = np_mod.nonzero
        where = np_mod.where
        maximum = np_mod.maximum
        while heap:
            d, urank = heappop(heap)
            uidx = idx_by_rank[urank]
            if visited[uidx]:
                continue
            visited[uidx] = True
            pops += 1
            if uidx == dst_i:
                break
            row = rows[uidx]
            if row is None:
                row = rows[uidx] = self._vec_row(
                    sw_list, candidates, uidx, isl_a, isl_b, np_mod
                )
            if row is False:
                continue
            (
                vrow, crossing, reserve_m, limv_base, cap,
                link_e, fifo_e, t12, xv, wire, y, xu,
            ) = row
            live = ~visited[vrow]
            n_live = int(live.sum())
            if not n_live:
                continue
            evals += n_live
            u = sw_list[uidx]
            u_new_out = u.n_out + 1
            if u.n_in > u_new_out:
                u_new_out = u.n_in
            u_fresh = u.n_in == 0 and u.n_out == 0
            lim_u_base = max_sizes[u.island]
            nin_v = nin[vrow]
            nout_v = nout[vrow]
            # Traffic term: (wire + crossbar) + converter, then
            # (bits_per_s * e_bit) * to_mw — the scalar bracketing.
            sw_e = ebit_base + ebit_pp * (maximum(nin_v, 1) + maximum(nout_v, 1))
            traffic = (bits_per_s * ((link_e + sw_e) + fifo_e)) * to_mw
            lat_vec = where(crossing, lat_cost_cross, lat_cost_intra)
            avail_v = avail[uidx * n + vrow]
            reuse_ok = live & (avail_v + 1e-9 >= bw)
            cost_reuse = where(reuse_ok, traffic + lat_vec, inf)
            new_v = maximum(nin_v + 1, nout_v)
            if has_reserve:
                lim_u_v = where(reserve_m, lim_u_base - port_reserve, lim_u_base)
                lim_v_v = where(reserve_m, limv_base - port_reserve, limv_base)
            else:
                lim_u_v = lim_u_base
                lim_v_v = limv_base
            open_ok = (
                live
                & (u_new_out <= lim_u_v)
                & (new_v <= lim_v_v)
                & (cap + 1e-9 >= bw)
            )
            if not allow_parallel:
                open_ok &= ~(avail_v > -inf)
            # Static term: pair idle+leak, masked freshness floors (an
            # inactive floor adds literal 0.0, which is exact), wire
            # leakage, masked converter — the scalar accumulation order.
            s = t12 + (xu if u_fresh else 0.0)
            s = s + where(fresh[vrow], xv, 0.0)
            s = s + wire
            s = s + y
            cost_open = where(open_ok, (traffic + open_weight * s) + lat_vec, inf)
            choose_open = cost_open < cost_reuse
            best = where(choose_open, cost_open, cost_reuse)
            if bool(np_mod.isinf(best[live]).any()):
                # Dead edges: same dominance-skip consequence as the
                # scalar loop.
                blocked = True
            nd = d + best
            upd = nd < (dist[vrow] - 1e-12)
            for j in nonzero(upd)[0]:
                vidx = int(vrow[j])
                nj = float(nd[j])
                dist[vidx] = nj
                if choose_open[j]:
                    prev[vidx] = (uidx, _OPEN, None)
                else:
                    prev[vidx] = (
                        uidx,
                        _REUSE,
                        self._first_fitting_link(pair_links, uidx * n + vidx, bw),
                    )
                heappush(heap, (nj, rank_of[vidx]))
        self._pops += pops
        self._edge_evals += evals
        self._vec_pops += pops
        self._vec_edges += evals
        if blocked:
            self._blocked = True
        return self._reconstruct_hops(sw_list, prev, src_i, dst_i)

    def _reconstruct_hops(
        self,
        sw_list: List[Switch],
        prev: List[Optional[Tuple[int, str, Optional[Link]]]],
        src_i: int,
        dst_i: int,
    ) -> Optional[Tuple[List[Tuple[int, int, str, Optional[Link]]], int]]:
        """Walk predecessors back from the destination, summing latency.

        Zero-load latency: source switch plus, per hop, the link (or
        converter crossing) and the downstream switch; NI links are
        free — mirrors ``repro.sim.zero_load``.  Shared by both search
        kernels.
        """
        if prev[dst_i] is None and dst_i != src_i:
            return None
        lib = self.library
        hops: List[Tuple[int, int, str, Optional[Link]]] = []
        sw_cycles = lib.switch_traversal_cycles
        latency = sw_cycles
        fifo_cycles = lib.fifo_crossing_cycles
        link_cycles = lib.link_traversal_cycles
        cur = dst_i
        while cur != src_i:
            uidx, action, link = prev[cur]
            hops.append((uidx, cur, action, link))
            if sw_list[uidx].island != sw_list[cur].island:
                latency += fifo_cycles + sw_cycles
            else:
                latency += link_cycles + sw_cycles
            cur = uidx
        hops.reverse()
        return hops, latency

    def _adjacency(
        self,
        sw_list: List[Switch],
        n: int,
        adj_store: Dict[Tuple[int, int, int], tuple],
        isl_a: int,
        isl_b: int,
    ) -> tuple:
        """Lazy allowed-successor structure for ``isl_a`` -> ``isl_b`` flows.

        Returns ``(candidates, rows)``: the candidate switch indices in
        insertion order and a per-switch row list.  ``rows[u_idx]`` is
        the tuple of successors the shutdown-safety rule permits —
        ``(v_idx, crossing, reserve_applies, v's size bound, new-link
        capacity)`` — or ``None`` while unbuilt; :meth:`_successor_row`
        materializes a row the first time the search pops its switch
        (most candidates are never popped, so eager all-pairs
        construction wasted the bulk of the adjacency work).  Everything
        stored is attempt-invariant, so on the fast path one structure
        serves every clone with the same switch count.
        """
        key = (n, isl_a, isl_b)
        entry = adj_store.get(key)
        if entry is None:
            allowed = {isl_a, isl_b, INTERMEDIATE_ISLAND}
            candidates = tuple(
                i for i, s in enumerate(sw_list) if s.island in allowed
            )
            entry = (candidates, [None] * n)
            adj_store[key] = entry
        return entry

    def _successor_row(
        self,
        sw_list: List[Switch],
        candidates: Tuple[int, ...],
        uidx: int,
        isl_a: int,
        isl_b: int,
    ) -> tuple:
        """Build the successor tuple of one candidate switch."""
        mid = INTERMEDIATE_ISLAND
        max_sizes = self._max_sizes
        cap_by_freq = self._cap_by_freq
        island_ix = self._island_ix
        n_islands = len(island_ix)
        lib = self.library
        u = sw_list[uidx]
        u_isl = u.island
        u_freq = u.freq_mhz
        u_ix = island_ix[u_isl]
        edges = []
        for cj in candidates:
            if cj == uidx:
                continue
            v = sw_list[cj]
            v_isl = v.island
            if not _allowed_transition(u_isl, v_isl, isl_a, isl_b):
                continue
            crossing = u_isl != v_isl
            freq = u_freq if u_freq < v.freq_mhz else v.freq_mhz
            capacity = cap_by_freq.get(freq)
            if capacity is None:
                capacity = lib.link_capacity_mbps(freq)
                cap_by_freq[freq] = capacity
            edges.append(
                (
                    cj,
                    crossing,
                    crossing and u_isl != mid and v_isl != mid,
                    max_sizes[v_isl],
                    capacity,
                    # Memo key bases (see __init__): static cost key is
                    # island-pair * 4 + freshness bits, ebit key is
                    # crossing bit | v's port counts.
                    (u_ix * n_islands + island_ix[v_isl]) * 4,
                    (1 << 23) if crossing else 0,
                )
            )
        return tuple(edges)

    def _search(
        self,
        topo: Topology,
        sw_list: List[Switch],
        n: int,
        adj_store: Dict[Tuple[int, int, int], List[Optional[tuple]]],
        ranks: Tuple[List[int], List[int]],
        use_memo: bool,
        pair_links: Dict[int, List[Link]],
        flow: TrafficFlow,
        src_i: int,
        dst_i: int,
        lat_cost_intra: float,
        lat_cost_cross: float,
        port_reserve: int,
        latency_only: bool = False,
        forbidden_links: Optional[Set[int]] = None,
        blocked_switches: Optional[Set[int]] = None,
        reserved: Optional[Mapping[int, float]] = None,
        allow_open: bool = True,
        vec: Optional[list] = None,
    ) -> Optional[Tuple[List[Tuple[int, int, str, Optional[Link]]], int]]:
        """Dijkstra over the allowed switch graph.

        Returns ``(hops, zero_load_latency_cycles)`` where hops are
        ``(src_idx, dst_idx, action, link_or_None)`` tuples, or ``None``
        when the destination is unreachable.  ``latency_only`` ignores
        power and minimizes pure hop latency — used as the fallback when
        the cheapest path misses the flow's latency budget.  The
        pressure-weighted hop costs ``lat_cost_intra``/``lat_cost_cross``
        come precomputed from the flow plan.

        The last four parameters serve backup-route allocation
        (:meth:`route_backup`) and default to "off" — primary routing
        passes ``None`` and skips every associated check.
        ``forbidden_links`` bans reusing specific physical links (the
        disjointness constraint), ``blocked_switches`` bans traversing
        specific switch indices (node-disjoint mode), ``reserved``
        charges spare-capacity reservations against link headroom, and
        ``allow_open=False`` restricts backups to existing hardware.

        ``vec`` is the vector kernel's per-attempt array state; when
        present (and no backup-mode constraint is active) the search
        runs through the batched numpy frontier instead of this loop,
        with byte-identical results.
        """
        if (
            vec is not None
            and not latency_only
            and forbidden_links is None
            and blocked_switches is None
            and reserved is None
            and allow_open
        ):
            return self._search_vector(
                sw_list, n, ranks, pair_links, flow, src_i, dst_i,
                lat_cost_intra, lat_cost_cross, port_reserve, vec,
            )
        cfg = self.cfg
        lib = self.library
        isl_a = sw_list[src_i].island
        isl_b = sw_list[dst_i].island
        candidates, adj = self._adjacency(sw_list, n, adj_store, isl_a, isl_b)
        bw = flow.bandwidth_mbps
        allow_parallel = cfg.allow_parallel_links
        open_weight = cfg.open_cost_weight
        # Traffic power is bw-linear in the cached energy-per-bit term;
        # hoisting the bandwidth factor keeps units.traffic_power_mw's
        # exact evaluation order: (bits_per_s * ebit) * unit_constant.
        bits_per_s = bw * units.MEGA * units.BITS_PER_BYTE
        to_mw = units.PJ_PER_BIT_TIMES_BITS_PER_S_TO_MW
        # Hop latencies in cycles, one value per crossing class.
        lat_intra = lib.link_traversal_cycles + lib.switch_traversal_cycles
        lat_cross = lib.fifo_crossing_cycles + lib.switch_traversal_cycles

        # Int-keyed pure-function memos (see __init__): the fast path
        # resolves both cost terms with one integer dict probe each —
        # no invalidation needed because the keys capture every dynamic
        # input (port counts, first-use freshness).  Hit/miss tallies
        # are folded into the cache stats at the end.
        static_by_key = self._static_by_key
        ebit_by_key = self._ebit_by_key
        hits = 0
        misses = 0
        has_reserve = port_reserve != 0
        blocked = False  # any capacity/port rejection voids the mid skip

        max_sizes = self._max_sizes
        rank_of, idx_by_rank = ranks
        inf = float("inf")
        dist = [inf] * n
        dist[src_i] = 0.0
        prev: List[Optional[Tuple[int, str, Optional[Link]]]] = [None] * n
        visited = bytearray(n)
        heap: List[Tuple[float, int]] = [(0.0, rank_of[src_i])]
        pops = 0
        evals = 0
        heappop = heapq.heappop
        heappush = heapq.heappush
        while heap:
            d, urank = heappop(heap)
            uidx = idx_by_rank[urank]
            if visited[uidx]:
                continue
            visited[uidx] = 1
            pops += 1
            if uidx == dst_i:
                break
            edges = adj[uidx]
            if edges is None:
                edges = adj[uidx] = self._successor_row(
                    sw_list, candidates, uidx, isl_a, isl_b
                )
            if not edges:
                continue
            u = sw_list[uidx]
            u_n_in = u.n_in
            u_new_out = u.n_out + 1
            if u_n_in > u_new_out:
                u_new_out = u_n_in
            u_fresh_bit = 2 if u_n_in == 0 and u.n_out == 0 else 0
            lim_u_base = max_sizes[u.island]
            ukey = uidx * n
            for (
                vidx, crossing, reserve_applies, lim_v_base, capacity,
                skey_base, ekey_base,
            ) in edges:
                if visited[vidx]:
                    continue
                if blocked_switches is not None and vidx in blocked_switches:
                    continue
                evals += 1
                if crossing:
                    lat_cycles = lat_cross
                    lat_cost = lat_cost_cross
                else:
                    lat_cycles = lat_intra
                    lat_cost = lat_cost_intra
                best_cost = inf
                best_action = _REUSE
                best_link: Optional[Link] = None
                ebit = -1.0  # computed lazily, at most once per edge
                v = sw_list[vidx]
                v_n_in = v.n_in
                v_n_out = v.n_out
                # Reuse: scan every (possibly parallel) existing link
                # and take the first that fits, by link id — parallel
                # links can differ in residual capacity.
                existing = pair_links.get(ukey + vidx)
                if existing:
                    for link in existing:
                        if forbidden_links is not None and link.id in forbidden_links:
                            continue
                        avail = link.capacity_mbps - link._used_mbps
                        if reserved is not None:
                            avail -= reserved.get(link.id, 0.0)
                        if avail + 1e-9 < bw:
                            continue
                        if latency_only:
                            best_cost = float(lat_cycles)
                        else:
                            if use_memo:
                                ekey = ekey_base | (v_n_in << 11) | v_n_out
                                ebit = ebit_by_key.get(ekey)
                                if ebit is None:
                                    misses += 1
                                    ebit = _edge_traffic_ebit(topo, u, v, cfg)
                                    ebit_by_key[ekey] = ebit
                                else:
                                    hits += 1
                            else:
                                ebit = _edge_traffic_ebit(topo, u, v, cfg)
                            best_cost = bits_per_s * ebit * to_mw + lat_cost
                        best_link = link
                        break
                # Open a new link (subject to size bounds and the
                # parallel-link policy).
                if allow_open and (allow_parallel or not existing):
                    new_v = v_n_in + 1
                    if v_n_out > new_v:
                        new_v = v_n_out
                    if has_reserve and reserve_applies:
                        lim_u = lim_u_base - port_reserve
                        lim_v = lim_v_base - port_reserve
                    else:
                        lim_u = lim_u_base
                        lim_v = lim_v_base
                    if u_new_out <= lim_u and new_v <= lim_v and capacity + 1e-9 >= bw:
                        if latency_only:
                            cost = float(lat_cycles) + 1e-6  # prefer reuse on ties
                        else:
                            if use_memo:
                                if ebit < 0.0:
                                    ekey = ekey_base | (v_n_in << 11) | v_n_out
                                    ebit = ebit_by_key.get(ekey)
                                    if ebit is None:
                                        misses += 1
                                        ebit = _edge_traffic_ebit(topo, u, v, cfg)
                                        ebit_by_key[ekey] = ebit
                                    else:
                                        hits += 1
                                skey = skey_base + u_fresh_bit + (
                                    1 if v_n_in == 0 and v_n_out == 0 else 0
                                )
                                static = static_by_key.get(skey)
                                if static is None:
                                    misses += 1
                                    static = _edge_static_open_cost(topo, u, v, cfg)
                                    static_by_key[skey] = static
                                else:
                                    hits += 1
                            else:
                                if ebit < 0.0:
                                    ebit = _edge_traffic_ebit(topo, u, v, cfg)
                                static = _edge_static_open_cost(topo, u, v, cfg)
                            cost = (
                                bits_per_s * ebit * to_mw
                                + open_weight * static
                                + lat_cost
                            )
                        if cost < best_cost:
                            best_cost = cost
                            best_action = _OPEN
                            best_link = None
                if best_cost is inf:
                    # Dead edge: neither reuse nor open could serve this
                    # pair.  Only here could an indirect-switch bypass
                    # ever win, so only this voids the dominance skip
                    # (see __init__) — an eval that produced any option
                    # strictly dominates the corresponding mid segment.
                    blocked = True
                    continue
                nd = d + best_cost
                if nd < dist[vidx] - 1e-12:
                    dist[vidx] = nd
                    prev[vidx] = (uidx, best_action, best_link)
                    heappush(heap, (nd, rank_of[vidx]))
        self._pops += pops
        self._edge_evals += evals
        if blocked:
            self._blocked = True
        if use_memo:
            self._cache_hits += hits
            self._cache_misses += misses
        return self._reconstruct_hops(sw_list, prev, src_i, dst_i)

    # -- instrumentation -----------------------------------------------

    def _flush_counters(self) -> None:
        recorder = active_recorder()
        if recorder is not None:
            recorder.count("dijkstra_pops", self._pops)
            recorder.count("edge_evals", self._edge_evals)
            recorder.count("links_opened", self._links_opened)
            recorder.count("scaffold_clones", self._scaffold_clones)
            recorder.count("scaffold_builds", self._scaffold_builds)
            recorder.count("cost_cache_hits", self._cache_hits)
            recorder.count("cost_cache_misses", self._cache_misses)
            recorder.count("direct_open_shortcuts", self._shortcuts)
            recorder.count("vector_pops", self._vec_pops)
            recorder.count("vector_edges", self._vec_edges)
        self._pops = self._edge_evals = 0
        self._scaffold_clones = self._scaffold_builds = 0
        self._links_opened = 0
        self._cache_hits = self._cache_misses = 0
        self._shortcuts = self._vec_pops = self._vec_edges = 0


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def _ni_link(topo: Topology, src: str, dst: str) -> Link:
    """The unique NI attachment link from ``src`` to ``dst``."""
    link = topo.link_between(src, dst)
    if link is None or link.kind not in ("ni2sw", "sw2ni"):
        raise SynthesisError("missing NI link %s -> %s" % (src, dst))
    return link


def _prune_unused_intermediate(topo: Topology) -> None:
    """Drop intermediate switches that ended up with no links.

    Step 14 sweeps the indirect switch count; path allocation may leave
    some of them unconnected, and an unconnected switch would only add
    idle power and area for nothing.
    """
    for sw in list(topo.intermediate_switches):
        if sw.n_in == 0 and sw.n_out == 0:
            del topo.switches[sw.id]
