"""Least-cost path allocation for inter-switch traffic (step 15).

Given the core-to-switch assignment of one design point and a number of
indirect switches in the intermediate NoC island, this module connects
the switches and routes every traffic flow:

* flows are processed in **decreasing bandwidth order** ("Choose flows
  in bandwidth order and find the paths");
* for each flow a Dijkstra search over the allowed switch graph picks
  the cheapest mix of **reusing existing links** and **opening new
  ones**; the edge cost is "a linear combination of the power
  consumption increase in opening a new link or reusing an existing
  link and the latency constraint of the flow";
* link opening respects the per-island **maximum switch size** (ports
  per direction) and the **shutdown-safety rule**: for a flow from
  island *a* to island *b*, only switches in *a*, *b* or the
  intermediate island may appear on the path, and new links may only
  run within *a*, within *b*, from *a* to *b*, or to/between/from
  intermediate switches;
* after routing, a flow whose zero-load latency exceeds its budget
  triggers a latency-greedy re-route; if that still violates, the
  design point is infeasible.

The allocator mutates a fresh :class:`~repro.arch.topology.Topology`
and reports success or the first unroutable flow.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .. import units
from ..arch.topology import (
    INTERMEDIATE_ISLAND,
    FlowKey,
    Link,
    Switch,
    Topology,
    ni_id,
)
from ..exceptions import SynthesisError
from ..power.library import NocLibrary
from ..sim.zero_load import link_latency_cycles
from .frequency import IslandPlan, intermediate_island_freq_mhz
from .spec import SoCSpec, TrafficFlow


@dataclass(frozen=True)
class PathCostConfig:
    """Knobs of the link-cost linear combination.

    ``latency_cost_mw_per_cycle`` converts cycles into the power-cost
    unit so the two objectives combine linearly; the per-flow latency
    pressure scales it by ``min_lat / lat_flow`` (tight flows feel
    latency more, mirroring the Definition 1 weighting).
    """

    #: Weight (mW per cycle) of the latency term in the edge cost.
    latency_cost_mw_per_cycle: float = 0.40
    #: Assumed wire length of an intra-island link before floorplanning.
    nominal_intra_link_mm: float = 1.5
    #: Assumed wire length of a cross-island link before floorplanning.
    nominal_cross_link_mm: float = 4.0
    #: Multiplier on the static (idle + leakage) cost of opening links.
    open_cost_weight: float = 1.0
    #: Allow opening parallel links between the same switch pair when
    #: the first link saturates.
    allow_parallel_links: bool = True


@dataclass
class AllocationResult:
    """Outcome of path allocation for one design point."""

    topology: Optional[Topology]
    success: bool
    failed_flow: Optional[FlowKey] = None
    reason: Optional[str] = None
    links_opened: int = 0
    flows_via_intermediate: int = 0

    def require_topology(self) -> Topology:
        """Return the topology, raising if allocation failed."""
        if not self.success or self.topology is None:
            raise SynthesisError(
                "allocation failed (%s) — no topology" % (self.reason or "unknown")
            )
        return self.topology


# Edge in the Dijkstra search: either reuse an existing link or open a
# new one between two switches.
_REUSE = "reuse"
_OPEN = "open"


def allocate_paths(
    spec: SoCSpec,
    library: NocLibrary,
    plans: Mapping[int, IslandPlan],
    partitions: Mapping[int, Sequence[Set[str]]],
    num_intermediate: int = 0,
    cost_config: Optional[PathCostConfig] = None,
) -> AllocationResult:
    """Build a topology for one design point and route every flow.

    Greedy bandwidth-ordered allocation can exhaust a switch's ports on
    direct inter-island links and then have no port left to reach the
    intermediate island (the hub-and-spoke failure mode).  When that
    happens and indirect switches are available, the allocation retries
    with 1 then 2 ports per switch *reserved* for indirect
    connectivity — direct cross-island link opening is constrained to
    leave that headroom.

    Parameters
    ----------
    spec:
        The SoC specification.
    library:
        Technology library.
    plans:
        Per-island frequency/size plans from
        :func:`repro.core.frequency.plan_all_islands`.
    partitions:
        For every island, the list of core groups sharing a switch
        (output of min-cut partitioning, step 11).
    num_intermediate:
        Number of indirect switches to instantiate in the intermediate
        NoC island (step 14 sweeps this; 0 disables the island).
    cost_config:
        Cost-function knobs; defaults to :class:`PathCostConfig`.
    """
    reserves = (0, 1, 2) if num_intermediate > 0 else (0,)
    result = None
    for reserve in reserves:
        result = _allocate_once(
            spec, library, plans, partitions, num_intermediate, cost_config, reserve
        )
        if result.success:
            return result
    return result


def _allocate_once(
    spec: SoCSpec,
    library: NocLibrary,
    plans: Mapping[int, IslandPlan],
    partitions: Mapping[int, Sequence[Set[str]]],
    num_intermediate: int,
    cost_config: Optional[PathCostConfig],
    port_reserve: int,
) -> AllocationResult:
    """One allocation attempt with a fixed port reservation."""
    cfg = cost_config or PathCostConfig()
    island_freqs = {isl: plan.freq_mhz for isl, plan in plans.items()}
    if num_intermediate > 0:
        island_freqs[INTERMEDIATE_ISLAND] = intermediate_island_freq_mhz(plans)
    topo = Topology(spec, library, island_freqs)

    max_sizes: Dict[int, int] = {isl: plan.max_switch_size for isl, plan in plans.items()}
    if num_intermediate > 0:
        max_sizes[INTERMEDIATE_ISLAND] = library.max_switch_size_for_freq(
            island_freqs[INTERMEDIATE_ISLAND]
        )

    # -- instantiate switches and attach cores -------------------------
    for isl in sorted(partitions):
        for idx, group in enumerate(partitions[isl]):
            if not group:
                raise SynthesisError("empty core group in island %r" % isl)
            if len(group) > max_sizes[isl]:
                return AllocationResult(
                    topology=None,
                    success=False,
                    reason="group of %d cores exceeds max switch size %d in island %d"
                    % (len(group), max_sizes[isl], isl),
                )
            sw = topo.add_switch(isl, idx)
            for core in sorted(group):
                topo.attach_core(core, sw)
    for idx in range(num_intermediate):
        topo.add_switch(INTERMEDIATE_ISLAND, idx)

    # -- route flows in decreasing bandwidth order ----------------------
    min_lat = spec.min_latency_cycles
    ordered = sorted(
        spec.flows,
        key=lambda f: (-f.bandwidth_mbps, f.latency_cycles, f.key),
    )
    links_opened = 0
    via_mid = 0
    for flow in ordered:
        sw_src = topo.switch_of_core(flow.src)
        sw_dst = topo.switch_of_core(flow.dst)
        ni_src_link = _ni_link(topo, ni_id(flow.src), sw_src.id)
        ni_dst_link = _ni_link(topo, sw_dst.id, ni_id(flow.dst))
        if sw_src.id == sw_dst.id:
            # Same switch: NI -> switch -> NI, one switch traversal.
            topo.assign_route(flow, [ni_src_link.id, ni_dst_link.id])
            continue
        pressure = min_lat / flow.latency_cycles if flow.latency_cycles > 0 else 1.0
        path = _search(topo, flow, sw_src, sw_dst, max_sizes, cfg, pressure, port_reserve)
        if path is None:
            return AllocationResult(
                topology=None,
                success=False,
                failed_flow=flow.key,
                reason="no feasible switch path for flow %s->%s" % flow.key,
                links_opened=links_opened,
            )
        # Latency check against the flow budget; the NI links are free,
        # each switch costs 1 cycle and each hop its link cycles.
        latency = _path_latency(topo, path, library)
        if latency > flow.latency_cycles + 1e-9:
            path2 = _search(
                topo,
                flow,
                sw_src,
                sw_dst,
                max_sizes,
                cfg,
                pressure,
                port_reserve,
                latency_only=True,
            )
            if path2 is not None:
                lat2 = _path_latency(topo, path2, library)
                if lat2 < latency:
                    path, latency = path2, lat2
            if latency > flow.latency_cycles + 1e-9:
                return AllocationResult(
                    topology=None,
                    success=False,
                    failed_flow=flow.key,
                    reason="latency %d exceeds budget %.1f for flow %s->%s"
                    % (latency, flow.latency_cycles, flow.src, flow.dst),
                    links_opened=links_opened,
                )
        link_ids = [ni_src_link.id]
        touched_mid = False
        for hop in path:
            if hop.action == _OPEN:
                link = topo.open_link(hop.src_sw, hop.dst_sw)
                links_opened += 1
            else:
                link = topo.links[hop.link_id]
            link_ids.append(link.id)
            if topo.switches[hop.dst_sw].is_intermediate:
                touched_mid = True
        link_ids.append(ni_dst_link.id)
        topo.assign_route(flow, link_ids)
        if touched_mid:
            via_mid += 1

    _prune_unused_intermediate(topo)
    return AllocationResult(
        topology=topo,
        success=True,
        links_opened=links_opened,
        flows_via_intermediate=via_mid,
    )


# ----------------------------------------------------------------------
# Search internals
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Hop:
    """One switch-to-switch move in a candidate path."""

    src_sw: str
    dst_sw: str
    action: str  # _REUSE or _OPEN
    link_id: int = -1  # valid when action == _REUSE


def _allowed_transition(
    src_island: int, dst_island: int, isl_a: int, isl_b: int
) -> bool:
    """Shutdown-safety transition rule for a flow from ``isl_a`` to ``isl_b``.

    Permitted directed moves: within the source island, within the
    destination island, source -> destination, source -> intermediate,
    intermediate -> intermediate, intermediate -> destination.  This is
    exactly the "directly across the source and destination VIs or to
    the switches in the intermediate NoC island" rule, and it also makes
    the search graph a DAG across islands (no ping-pong between
    islands, which could never reduce cost).
    """
    mid = INTERMEDIATE_ISLAND
    if src_island == isl_a:
        return dst_island in (isl_a, isl_b, mid) if isl_a != isl_b else dst_island == isl_a
    if src_island == mid:
        return dst_island in (mid, isl_b)
    if src_island == isl_b:
        return dst_island == isl_b
    return False


def _candidate_switches(topo: Topology, isl_a: int, isl_b: int) -> List[Switch]:
    """Switches a flow from island ``isl_a`` to ``isl_b`` may traverse."""
    allowed_islands = {isl_a, isl_b, INTERMEDIATE_ISLAND}
    return [s for s in topo.switches.values() if s.island in allowed_islands]


def _can_open(
    topo: Topology,
    u: Switch,
    v: Switch,
    max_sizes: Mapping[int, int],
    port_reserve: int = 0,
) -> bool:
    """Would opening a link u->v keep both switches within size bounds?

    ``port_reserve`` ports are withheld from *direct* cross-island
    links (both endpoints outside the intermediate island) so that the
    switch keeps headroom to reach indirect switches later.
    """
    new_u = max(u.n_in, u.n_out + 1)
    new_v = max(v.n_in + 1, v.n_out)
    lim_u = max_sizes[u.island]
    lim_v = max_sizes[v.island]
    if (
        port_reserve
        and u.island != v.island
        and not u.is_intermediate
        and not v.is_intermediate
    ):
        lim_u -= port_reserve
        lim_v -= port_reserve
    return new_u <= lim_u and new_v <= lim_v


def _edge_static_open_cost(
    topo: Topology, u: Switch, v: Switch, cfg: PathCostConfig
) -> float:
    """Static power cost (mW) of opening a new link u->v.

    Counts the incremental idle power of the two new switch ports, the
    converter if the link crosses islands, and the leakage of the new
    wire at its nominal pre-floorplan length.
    """
    lib = topo.library
    crossing = u.island != v.island
    length = cfg.nominal_cross_link_mm if crossing else cfg.nominal_intra_link_mm
    # One new output port on u and one new input port on v.
    static = lib.switch_idle_mw_per_mhz_per_port * (u.freq_mhz + v.freq_mhz)
    static += 2.0 * lib.switch_leak_mw_per_port
    # A previously unconnected switch (fresh intermediate) also brings
    # its fixed clock-tree and leakage floor online.
    if u.n_in == 0 and u.n_out == 0:
        static += lib.switch_idle_mw_per_mhz_base * u.freq_mhz + lib.switch_leak_mw_base
    if v.n_in == 0 and v.n_out == 0:
        static += lib.switch_idle_mw_per_mhz_base * v.freq_mhz + lib.switch_leak_mw_base
    static += lib.link_leakage_mw(length)
    if crossing:
        static += lib.fifo_idle_power_mw(u.freq_mhz, v.freq_mhz) + lib.fifo_leakage_mw()
    return static


def _edge_traffic_cost(
    topo: Topology, flow: TrafficFlow, u: Switch, v: Switch, cfg: PathCostConfig
) -> float:
    """Dynamic power (mW) the flow adds on link u->v plus switch v."""
    lib = topo.library
    crossing = u.island != v.island
    length = cfg.nominal_cross_link_mm if crossing else cfg.nominal_intra_link_mm
    ebit = lib.link_ebit_pj(length)
    ebit += lib.switch_ebit_pj(max(v.n_in, 1), max(v.n_out, 1))
    if crossing:
        ebit += lib.fifo_ebit_pj
    return units.traffic_power_mw(flow.bandwidth_mbps, ebit)


def _edge_latency_cycles(topo: Topology, u: Switch, v: Switch) -> int:
    """Cycles one hop adds: the link plus the downstream switch."""
    lib = topo.library
    link_cycles = lib.fifo_crossing_cycles if u.island != v.island else lib.link_traversal_cycles
    return link_cycles + lib.switch_traversal_cycles


def _search(
    topo: Topology,
    flow: TrafficFlow,
    sw_src: Switch,
    sw_dst: Switch,
    max_sizes: Mapping[int, int],
    cfg: PathCostConfig,
    pressure: float,
    port_reserve: int = 0,
    latency_only: bool = False,
) -> Optional[List[_Hop]]:
    """Dijkstra over the allowed switch graph; returns hops or None.

    ``latency_only`` ignores power and minimizes pure hop latency —
    used as the fallback when the cheapest path misses the flow's
    latency budget.
    """
    isl_a = sw_src.island
    isl_b = sw_dst.island
    candidates = {s.id: s for s in _candidate_switches(topo, isl_a, isl_b)}
    dist: Dict[str, float] = {sw_src.id: 0.0}
    prev: Dict[str, _Hop] = {}
    heap: List[Tuple[float, str]] = [(0.0, sw_src.id)]
    visited: Set[str] = set()
    while heap:
        d, uid = heapq.heappop(heap)
        if uid in visited:
            continue
        visited.add(uid)
        if uid == sw_dst.id:
            break
        u = candidates[uid]
        for vid, v in candidates.items():
            if vid == uid or vid in visited:
                continue
            if not _allowed_transition(u.island, v.island, isl_a, isl_b):
                continue
            hop = _best_edge(
                topo, flow, u, v, max_sizes, cfg, pressure, port_reserve, latency_only
            )
            if hop is None:
                continue
            cost, candidate_hop = hop
            nd = d + cost
            if nd < dist.get(vid, float("inf")) - 1e-12:
                dist[vid] = nd
                prev[vid] = candidate_hop
                heapq.heappush(heap, (nd, vid))
    if sw_dst.id not in prev and sw_dst.id != sw_src.id:
        return None
    # Reconstruct hops back from the destination.
    hops: List[_Hop] = []
    cur = sw_dst.id
    while cur != sw_src.id:
        hop = prev[cur]
        hops.append(hop)
        cur = hop.src_sw
    hops.reverse()
    return hops


def _best_edge(
    topo: Topology,
    flow: TrafficFlow,
    u: Switch,
    v: Switch,
    max_sizes: Mapping[int, int],
    cfg: PathCostConfig,
    pressure: float,
    port_reserve: int,
    latency_only: bool,
) -> Optional[Tuple[float, _Hop]]:
    """Cheapest way (reuse or open) to move the flow from u to v."""
    lat_cycles = _edge_latency_cycles(topo, u, v)
    lat_cost = cfg.latency_cost_mw_per_cycle * lat_cycles * pressure
    best: Optional[Tuple[float, _Hop]] = None
    # Reuse an existing link with enough residual capacity.
    for link in topo.links_between(u.id, v.id):
        if link.residual_mbps + 1e-9 < flow.bandwidth_mbps:
            continue
        if latency_only:
            cost = float(lat_cycles)
        else:
            cost = _edge_traffic_cost(topo, flow, u, v, cfg) + lat_cost
        hop = _Hop(src_sw=u.id, dst_sw=v.id, action=_REUSE, link_id=link.id)
        if best is None or cost < best[0]:
            best = (cost, hop)
        break  # links between a pair are interchangeable; first fits
    # Open a new link (subject to size bounds and parallel-link policy).
    existing = topo.links_between(u.id, v.id)
    may_parallel = cfg.allow_parallel_links or not existing
    if may_parallel and _can_open(topo, u, v, max_sizes, port_reserve):
        capacity = topo.library.link_capacity_mbps(min(u.freq_mhz, v.freq_mhz))
        if capacity + 1e-9 >= flow.bandwidth_mbps:
            if latency_only:
                cost = float(lat_cycles) + 1e-6  # prefer reuse on ties
            else:
                cost = (
                    _edge_traffic_cost(topo, flow, u, v, cfg)
                    + cfg.open_cost_weight * _edge_static_open_cost(topo, u, v, cfg)
                    + lat_cost
                )
            hop = _Hop(src_sw=u.id, dst_sw=v.id, action=_OPEN)
            if best is None or cost < best[0]:
                best = (cost, hop)
    return best


def _path_latency(topo: Topology, path: List[_Hop], library: NocLibrary) -> int:
    """Zero-load latency (cycles) of a candidate hop sequence.

    Mirrors :mod:`repro.sim.zero_load` accounting: source switch + per
    hop (link + downstream switch); NI links are free.
    """
    cycles = library.switch_traversal_cycles
    for hop in path:
        u = topo.switches[hop.src_sw]
        v = topo.switches[hop.dst_sw]
        cycles += _edge_latency_cycles(topo, u, v)
    return cycles


def _ni_link(topo: Topology, src: str, dst: str) -> Link:
    """The unique NI attachment link from ``src`` to ``dst``."""
    link = topo.link_between(src, dst)
    if link is None or link.kind not in ("ni2sw", "sw2ni"):
        raise SynthesisError("missing NI link %s -> %s" % (src, dst))
    return link


def _prune_unused_intermediate(topo: Topology) -> None:
    """Drop intermediate switches that ended up with no links.

    Step 14 sweeps the indirect switch count; path allocation may leave
    some of them unconnected, and an unconnected switch would only add
    idle power and area for nothing.
    """
    for sw in list(topo.intermediate_switches):
        if sw.n_in == 0 and sw.n_out == 0:
            del topo.switches[sw.id]
