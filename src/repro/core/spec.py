"""SoC problem specification: cores, traffic flows, voltage islands.

This is the input side of the synthesis problem from Section 3 of the
paper.  A :class:`SoCSpec` bundles:

* the cores (IP blocks) with their physical properties,
* the application traffic flows with bandwidth and latency constraints,
* the assignment of cores to voltage islands (an *input* to synthesis,
  per Section 3.1: "The cores of the design are assigned to different
  VIs, which is given as an input to our method").

The spec is deliberately plain data — synthesis, floorplanning and power
analysis all read it but never mutate it.  Use :meth:`SoCSpec.with_vi_assignment`
to derive a re-islanded variant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..exceptions import SpecError

#: Functional categories used by the benchmark suite and by logical
#: partitioning.  Free-form strings are allowed; these are the ones the
#: built-in benchmarks use.
CORE_KINDS = (
    "cpu",
    "dsp",
    "cache",
    "memory",
    "dma",
    "accelerator",
    "video",
    "audio",
    "imaging",
    "display",
    "io",
    "bridge",
    "peripheral",
)


@dataclass(frozen=True)
class CoreSpec:
    """One IP block of the SoC.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"arm0"``.
    area_mm2:
        Silicon area of the core.
    dynamic_power_mw:
        Average dynamic power when the core is active.
    leakage_power_mw:
        Leakage power when powered (independent of activity); this is
        what island shutdown eliminates.
    kind:
        Functional category (see :data:`CORE_KINDS`).
    group:
        Functional-group path used by *logical partitioning*, e.g.
        ``"video/decode"``.  Cores sharing a group prefix are clustered
        together when islands are merged.
    freq_mhz:
        The core's own clock.  The NoC network interface performs clock
        conversion, so this does not constrain the island NoC frequency
        (Section 3.1), but it is reported in floorplans and exports.
    """

    name: str
    area_mm2: float
    dynamic_power_mw: float
    leakage_power_mw: float
    kind: str = "peripheral"
    group: str = ""
    freq_mhz: float = 200.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("core name must be a non-empty string")
        if self.area_mm2 <= 0:
            raise SpecError("core %r: area must be positive" % self.name)
        if self.dynamic_power_mw < 0:
            raise SpecError("core %r: dynamic power must be >= 0" % self.name)
        if self.leakage_power_mw < 0:
            raise SpecError("core %r: leakage power must be >= 0" % self.name)
        if self.freq_mhz <= 0:
            raise SpecError("core %r: frequency must be positive" % self.name)


@dataclass(frozen=True)
class TrafficFlow:
    """A directed communication requirement between two cores.

    Definition 1 of the paper attaches a bandwidth ``bw`` and a latency
    constraint ``lat`` to every flow; both feed the VCG edge weight
    ``h = alpha * bw/max_bw + (1-alpha) * min_lat/lat``.

    Parameters
    ----------
    src, dst:
        Core names; must exist in the owning :class:`SoCSpec`.
    bandwidth_mbps:
        Sustained bandwidth requirement in MB/s.
    latency_cycles:
        Zero-load latency budget in NoC cycles, measured like the paper
        does: from the output of the source NI to the input of the
        destination NI.
    """

    src: str
    dst: str
    bandwidth_mbps: float
    latency_cycles: float = 20.0

    def __post_init__(self) -> None:
        if not self.src or not self.dst:
            raise SpecError("flow endpoints must be non-empty strings")
        if self.src == self.dst:
            raise SpecError("flow %s->%s: self-loops are not allowed" % (self.src, self.dst))
        if self.bandwidth_mbps <= 0:
            raise SpecError(
                "flow %s->%s: bandwidth must be positive" % (self.src, self.dst)
            )
        if self.latency_cycles <= 0:
            raise SpecError(
                "flow %s->%s: latency constraint must be positive" % (self.src, self.dst)
            )

    @property
    def key(self) -> Tuple[str, str]:
        """The ``(src, dst)`` pair identifying this flow."""
        return (self.src, self.dst)


@dataclass(frozen=True)
class SoCSpec:
    """Complete synthesis input: cores, flows and the VI assignment.

    Voltage islands are identified by small non-negative integers
    ``0..num_islands-1``.  The special *intermediate NoC island* created
    by synthesis is not part of the spec; it is identified by
    :data:`repro.arch.topology.INTERMEDIATE_ISLAND`.
    """

    name: str
    cores: Tuple[CoreSpec, ...]
    flows: Tuple[TrafficFlow, ...]
    vi_assignment: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("spec name must be non-empty")
        if not self.cores:
            raise SpecError("spec %r: needs at least one core" % self.name)
        names = [c.name for c in self.cores]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise SpecError("spec %r: duplicate core names %s" % (self.name, sorted(dupes)))
        known = set(names)
        seen_flows: Set[Tuple[str, str]] = set()
        for f in self.flows:
            if f.src not in known:
                raise SpecError("flow %s->%s: unknown source core" % (f.src, f.dst))
            if f.dst not in known:
                raise SpecError("flow %s->%s: unknown destination core" % (f.src, f.dst))
            if f.key in seen_flows:
                raise SpecError("duplicate flow %s->%s" % (f.src, f.dst))
            seen_flows.add(f.key)
        assignment = dict(self.vi_assignment)
        if not assignment:
            # Default: a single island holding every core (the paper's
            # "1 island" reference point).
            assignment = {n: 0 for n in names}
        unknown = set(assignment) - known
        if unknown:
            raise SpecError(
                "vi_assignment mentions unknown cores %s" % sorted(unknown)
            )
        missing = known - set(assignment)
        if missing:
            raise SpecError(
                "vi_assignment misses cores %s" % sorted(missing)
            )
        for core, isl in assignment.items():
            if not isinstance(isl, int) or isl < 0:
                raise SpecError(
                    "core %r: island id must be a non-negative int, got %r" % (core, isl)
                )
        # Island ids must be dense 0..n-1 so sweeps and floorplans can
        # index arrays by island id.
        ids = sorted(set(assignment.values()))
        if ids != list(range(len(ids))):
            raise SpecError(
                "island ids must be dense 0..n-1, got %s" % ids
            )
        object.__setattr__(self, "vi_assignment", assignment)

    # ------------------------------------------------------------------
    # Core / island accessors
    # ------------------------------------------------------------------

    @property
    def core_names(self) -> List[str]:
        """Core names in declaration order."""
        return [c.name for c in self.cores]

    def core(self, name: str) -> CoreSpec:
        """Look up a core by name; raises :class:`SpecError` if absent."""
        for c in self.cores:
            if c.name == name:
                return c
        raise SpecError("spec %r: no core named %r" % (self.name, name))

    @property
    def num_islands(self) -> int:
        """Number of voltage islands in the assignment."""
        return len(set(self.vi_assignment.values()))

    @property
    def islands(self) -> List[int]:
        """Sorted island ids, ``[0, 1, ..., num_islands-1]``."""
        return sorted(set(self.vi_assignment.values()))

    def island_of(self, core_name: str) -> int:
        """Island id a core belongs to."""
        try:
            return self.vi_assignment[core_name]
        except KeyError:
            raise SpecError("spec %r: no core named %r" % (self.name, core_name))

    def cores_in_island(self, island: int) -> List[str]:
        """Core names assigned to ``island``, in declaration order."""
        return [c.name for c in self.cores if self.vi_assignment[c.name] == island]

    # ------------------------------------------------------------------
    # Flow accessors
    # ------------------------------------------------------------------

    def flow(self, src: str, dst: str) -> TrafficFlow:
        """Look up the flow from ``src`` to ``dst``."""
        for f in self.flows:
            if f.src == src and f.dst == dst:
                return f
        raise SpecError("spec %r: no flow %s->%s" % (self.name, src, dst))

    def flows_within_island(self, island: int) -> List[TrafficFlow]:
        """Flows whose both endpoints live in ``island``."""
        return [
            f
            for f in self.flows
            if self.vi_assignment[f.src] == island and self.vi_assignment[f.dst] == island
        ]

    def flows_across_islands(self) -> List[TrafficFlow]:
        """Flows whose endpoints live in different islands."""
        return [
            f for f in self.flows if self.vi_assignment[f.src] != self.vi_assignment[f.dst]
        ]

    @property
    def max_bandwidth_mbps(self) -> float:
        """``max_bw`` of Definition 1: largest bandwidth over all flows."""
        if not self.flows:
            return 0.0
        return max(f.bandwidth_mbps for f in self.flows)

    @property
    def min_latency_cycles(self) -> float:
        """``min_lat`` of Definition 1: tightest latency constraint."""
        if not self.flows:
            return 0.0
        return min(f.latency_cycles for f in self.flows)

    def core_peak_bandwidth_mbps(self, core_name: str) -> float:
        """Worst-case bandwidth on the core's single NI link.

        A core attaches to exactly one switch through one NI (Section
        4), so its NI link must carry the *sum* of all its outgoing
        flows in one direction and of all incoming flows in the other.
        The island NoC frequency is driven by the larger of the two.
        """
        out_bw = sum(f.bandwidth_mbps for f in self.flows if f.src == core_name)
        in_bw = sum(f.bandwidth_mbps for f in self.flows if f.dst == core_name)
        return max(out_bw, in_bw)

    def island_peak_bandwidth_mbps(self, island: int) -> float:
        """Largest NI-link bandwidth over the island's cores (step 1)."""
        cores = self.cores_in_island(island)
        if not cores:
            return 0.0
        return max(self.core_peak_bandwidth_mbps(c) for c in cores)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def total_core_area_mm2(self) -> float:
        """Sum of all core areas (the SoC area baseline)."""
        return sum(c.area_mm2 for c in self.cores)

    @property
    def total_core_dynamic_power_mw(self) -> float:
        """Sum of core dynamic power with every core active."""
        return sum(c.dynamic_power_mw for c in self.cores)

    @property
    def total_core_leakage_power_mw(self) -> float:
        """Sum of core leakage power with every island powered."""
        return sum(c.leakage_power_mw for c in self.cores)

    @property
    def total_flow_bandwidth_mbps(self) -> float:
        """Aggregate bandwidth over all flows."""
        return sum(f.bandwidth_mbps for f in self.flows)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def with_vi_assignment(self, assignment: Mapping[str, int], name: Optional[str] = None) -> "SoCSpec":
        """Return a copy of the spec with a different island assignment.

        Used by the partitioning strategies (logical / communication
        based) to generate the island-count sweep of Figures 2 and 3.
        """
        return replace(
            self,
            name=name if name is not None else self.name,
            vi_assignment=dict(assignment),
        )

    def single_island(self) -> "SoCSpec":
        """The paper's reference point: every core in one island."""
        return self.with_vi_assignment({c.name: 0 for c in self.cores})

    def communication_matrix(self) -> Dict[Tuple[str, str], float]:
        """Bandwidth between all communicating pairs, as a dict."""
        return {f.key: f.bandwidth_mbps for f in self.flows}

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------

    def canonical(self) -> Dict[str, object]:
        """Normalized plain-data form used for content-addressed hashing.

        Two specs describing the same problem hash identically even when
        their ``vi_assignment`` mappings were built in different key
        orders: the mapping is emitted as sorted ``(core, island)``
        pairs.  Core and flow *sequence* order is preserved — synthesis
        results legitimately depend on it (tiling order, float
        accumulation order in the VCG), so reordering cores or flows is
        a different problem, not the same one.

        The spec ``name`` is intentionally excluded: the cache is
        content-addressed, so two identically-shaped specs under
        different names share results.
        """
        return {
            "cores": [
                [c.name, c.area_mm2, c.dynamic_power_mw, c.leakage_power_mw,
                 c.kind, c.group, c.freq_mhz]
                for c in self.cores
            ],
            "flows": [
                [f.src, f.dst, f.bandwidth_mbps, f.latency_cycles]
                for f in self.flows
            ],
            "vi_assignment": sorted(self.vi_assignment.items()),
        }

    def fingerprint(self) -> str:
        """Stable content hash of the spec (hex digest).

        Delegates to :func:`repro.cache.keys.fingerprint` so floats get
        the exact (``float.hex``) representation and the versioned
        schema tag; see ``docs/caching.md`` for the key schema.
        """
        from ..cache.keys import fingerprint

        return fingerprint("spec", self.canonical())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "SoCSpec(%s: %d cores, %d flows, %d islands)" % (
            self.name,
            len(self.cores),
            len(self.flows),
            self.num_islands,
        )


def build_spec(
    name: str,
    cores: Iterable[CoreSpec],
    flows: Iterable[TrafficFlow],
    vi_assignment: Optional[Mapping[str, int]] = None,
) -> SoCSpec:
    """Convenience constructor accepting any iterables.

    >>> c = [CoreSpec("a", 1.0, 10.0, 1.0), CoreSpec("b", 1.0, 10.0, 1.0)]
    >>> s = build_spec("demo", c, [TrafficFlow("a", "b", 100.0)])
    >>> s.num_islands
    1
    """
    return SoCSpec(
        name=name,
        cores=tuple(cores),
        flows=tuple(flows),
        vi_assignment=dict(vi_assignment) if vi_assignment else {},
    )
