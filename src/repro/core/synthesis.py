"""Topology synthesis driver — Algorithm 1 of the paper.

Pipeline per design-point candidate:

1. **Island planning** (steps 1–2): per-island NoC frequency from the
   worst NI link, maximum switch size from crossbar timing, minimum
   switch count from the size bound.
2. **Switch-count sweep** (steps 4–10): one sweep variable ``i`` raises
   every island's switch count in lock-step from its minimum toward
   one-switch-per-core (saturating per island).
3. **Core-to-switch assignment** (step 11): ``k``-way min-cut
   partitioning of each island's VCG; cores in one part share a switch.
4. **Intermediate-island sweep** (step 14): 0..N indirect switches in
   the never-gated NoC island.
5. **Path allocation** (step 15): bandwidth-ordered least-cost routing
   with link opening/reuse under size, capacity, latency and
   shutdown-safety constraints.
6. **Physical evaluation** (final step): floorplan insertion, wire
   lengths, power and zero-load latency; feasible candidates become
   :class:`~repro.core.design_point.DesignPoint` s.

The returned :class:`~repro.core.design_point.DesignSpace` is the
paper's power/performance trade-off curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..arch.topology import INTERMEDIATE_ISLAND, Topology
from ..arch.validate import validate_topology
from ..cache.context import active_store
from ..cache.keys import (
    allocation_base_key,
    allocation_context_key,
    allocation_key,
    design_space_key,
    partition_key,
    vcg_key,
)
from ..cache.signatures import (
    allocation_signature,
    design_space_signature,
    partition_signature,
)
from ..cache.store import CacheStore
from ..exceptions import CacheKeyError, InfeasibleError, PartitionError, SynthesisError
from ..floorplan.annealer import AnnealConfig, anneal_placement
from ..floorplan.placer import Floorplan, FloorplanConfig, place
from ..floorplan.wires import assign_wire_lengths
from ..obs.spans import span
from ..perf.instrument import active_recorder, maybe_phase
from ..power.library import DEFAULT_LIBRARY, NocLibrary
from ..power.noc_power import compute_noc_power
from ..power.soc_power import compute_soc_power
from ..sim.zero_load import evaluate_latency
from .design_point import DesignPoint, DesignSpace
from .frequency import IslandPlan, plan_all_islands
from .objective import Objective
from .partition import partition_graph
from .paths import AllocationResult, PathAllocator, PathCostConfig
from .spec import SoCSpec
from .vcg import build_all_vcgs


@dataclass(frozen=True)
class SynthesisConfig:
    """All knobs of the synthesis flow, with paper-faithful defaults."""

    #: Definition 1 weight between bandwidth and latency terms.
    alpha: float = 0.6
    #: Frequency quantization grid for island clocks (MHz).
    freq_step_mhz: float = 25.0
    #: Practical floor for island NoC clocks (MHz).
    min_freq_mhz: float = 100.0
    #: Explore intermediate-island solutions (Section 3.2: only if the
    #: designer provides power/ground resources for it).
    allow_intermediate: bool = True
    #: Cap on indirect switches tried per candidate; ``None`` lets the
    #: sweep run to the largest island's switch count (paper's bound).
    max_intermediate: Optional[int] = 3
    #: Path-cost configuration (power/latency linear combination).
    path_cost: PathCostConfig = field(default_factory=PathCostConfig)
    #: Min-cut partitioner variant ("fm" or "greedy") and seed.
    partition_method: str = "fm"
    seed: int = 0
    #: Floorplanner knobs.
    floorplan: FloorplanConfig = field(default_factory=FloorplanConfig)
    #: Run simulated-annealing placement refinement (slower, shorter
    #: wires); the constructive placer is the default.
    anneal_placement: bool = False
    #: Use placed wire lengths in power figures.
    use_lengths: bool = True
    #: Validate every design point's structural invariants (cheap; keep
    #: on outside of tight benchmark loops).
    validate_points: bool = True
    #: Stop the sweep after this many feasible points (None = full sweep).
    max_design_points: Optional[int] = None
    #: Enable the synthesis fast path: partition results cached across
    #: the switch-count sweep, the switch/NI scaffold cloned instead of
    #: rebuilt per routing attempt, and edge-cost terms memoized inside
    #: path allocation.  Off reproduces the same design space through
    #: the unmemoized reference path (used by determinism tests).
    enable_caches: bool = True
    #: Routing-kernel selection: ``auto`` (vector unless the
    #: ``REPRO_KERNEL`` environment variable says otherwise),
    #: ``vector`` (batched array kernel: direct-open dominance shortcut
    #: plus numpy whole-frontier evaluation, with a pure-Python
    #: fallback when numpy is absent) or ``scalar`` (the historical
    #: per-edge loop).  Byte-identical design spaces either way; the
    #: reference mode (``enable_caches=False``) always runs scalar.
    kernel: str = "auto"
    #: Co-synthesis objective: when set, every evaluated candidate is
    #: scored under it *inside* the sweep — points the objective
    #: rejects are recorded as failures (like a routing failure) and
    #: the surviving points carry their :class:`ObjectiveResult`, so
    #: trace energy or QoS deadlines steer Algorithm 1's switch-count
    #: and partition choices directly.  ``None`` (the default) keeps
    #: the historical behaviour: no scoring during synthesis, and
    #: selection helpers fall back to the static-power objective —
    #: byte-identical to passing ``StaticPowerObjective()``.
    objective: Optional[Objective] = None
    #: Objective-aware sweep pruning: once an incumbent best point
    #: exists, a candidate whose cheap *exact cost prefix*
    #: (:meth:`~repro.core.objective.Objective.partial_cost`) compares
    #: strictly greater than the incumbent's cost is dropped without
    #: the expensive remainder of its evaluation (trace replays,
    #: spare-path protection).  Pruned candidates are recorded in
    #: ``DesignSpace.failures`` and never enter ``points`` — the space
    #: is smaller, but selection under the objective is provably
    #: identical to the unpruned sweep (a strictly greater prefix
    #: implies a strictly greater full cost vector).  With no
    #: objective configured, the static-power default drives the prune
    #: decision only (points still carry no ``objective_result``).
    #: Inert when ``max_design_points`` is set: the cap truncates by
    #: accepted-point count, and skipping candidates would shift the
    #: truncation boundary — breaking the identical-selection
    #: guarantee — so the sweep silently evaluates everything instead.
    prune_sweep: bool = False


def synthesize(
    spec: SoCSpec,
    library: NocLibrary = DEFAULT_LIBRARY,
    config: Optional[SynthesisConfig] = None,
) -> DesignSpace:
    """Run Algorithm 1 on a spec; return all feasible design points.

    Raises
    ------
    InfeasibleError
        If no candidate in the whole sweep routes all flows within
        constraints.  (Callers wanting the empty space instead can
        catch it or inspect ``DesignSpace.failures``.)
    """
    cfg = config or SynthesisConfig()
    with span(
        "synthesis",
        spec=spec.name,
        islands=spec.num_islands,
        kernel=cfg.kernel,
    ) as s:
        space = _cached_synthesize(spec, library, cfg, s)
        space.require_feasible()
        if s is not None:
            s.set(design_points=len(space))
        return space


def _cached_synthesize(
    spec: SoCSpec,
    library: NocLibrary,
    cfg: SynthesisConfig,
    root_span=None,
) -> DesignSpace:
    """Space-tier cache probe around the full sweep.

    Active only when a :class:`~repro.cache.store.CacheStore` is
    installed (``repro.cache.caching``) *and* the config's fast paths
    are on — ``enable_caches=False`` is the reference mode and must
    exercise the real computation.  Infeasible sweeps are cached too
    (the stored space carries the failures; :func:`synthesize` re-raises
    from it), so warm re-runs of infeasible corners stay cheap.
    """
    store = active_store()
    if store is None or not cfg.enable_caches:
        return _synthesize_sweep(spec, library, cfg)
    try:
        key = design_space_key(spec, library, cfg)
    except CacheKeyError:
        # Something in the config (say, a closure-capturing objective)
        # has no stable content address; run cold, don't fail the run.
        store.record_key_error()
        return _synthesize_sweep(spec, library, cfg)
    hit = store.get_object(key, "space")
    if hit is not None:
        space, header = hit
        if root_span is not None:
            root_span.set(cache="hit")
        if store.should_verify():
            fresh = _synthesize_sweep(spec, library, cfg)
            store.check_signature(
                header,
                design_space_signature(fresh),
                "design space for %s" % spec.name,
            )
        return space
    if root_span is not None:
        root_span.set(cache="miss")
    space = _synthesize_sweep(spec, library, cfg)
    store.put_object(key, space, "space", sig=design_space_signature(space))
    return space


def _synthesize_sweep(
    spec: SoCSpec, library: NocLibrary, cfg: SynthesisConfig
) -> DesignSpace:
    """The Algorithm-1 sweep body (root span opened by :func:`synthesize`)."""
    plans = plan_all_islands(spec, library, cfg.freq_step_mhz, cfg.min_freq_mhz)
    vcgs = build_all_vcgs(spec, cfg.alpha)
    space = DesignSpace(spec_name=spec.name, objective=cfg.objective)
    # Sub-tier cache probes (partitions, allocations) share the active
    # store; off in reference mode so enable_caches=False really is the
    # unmemoized computation.  The spec/library digests are hoisted out
    # of the candidate loop — they are the expensive canonicalizations
    # and are sweep-invariant.
    store: Optional[CacheStore] = active_store() if cfg.enable_caches else None
    alloc_ctx: Optional[str] = None
    vcg_digests: Dict[int, str] = {}
    if store is not None:
        try:
            alloc_ctx = allocation_context_key(spec, library, cfg.path_cost)
        except CacheKeyError:
            store.record_key_error()
    # Pruning needs a full-cost incumbent to compare prefixes against;
    # with no objective configured the static-power default drives the
    # prune decision alone (accepted points stay objective-free).
    # Under max_design_points the cap truncates by accepted-point
    # count; pruning would shift that boundary (a pruned candidate may
    # or may not have been vetoed by the objective, which the skipped
    # evaluation cannot tell), so the guarantee only holds with the
    # prune disabled.
    prune_obj: Optional[Objective] = None
    if cfg.prune_sweep and cfg.max_design_points is None:
        from .objective import StaticPowerObjective

        prune_obj = cfg.objective or StaticPowerObjective()
    incumbent: Optional[Tuple[float, ...]] = None

    max_cores = max(p.num_cores for p in plans.values())
    has_cross_flows = bool(spec.flows_across_islands())
    if cfg.allow_intermediate and has_cross_flows and spec.num_islands > 1:
        mid_cap = max_cores if cfg.max_intermediate is None else cfg.max_intermediate
    else:
        mid_cap = 0

    seen_counts: Set[Tuple[Tuple[int, int], ...]] = set()
    # Step-11 results repeat across the sweep once an island's switch
    # count saturates; cache them keyed by everything that determines
    # the result.  ``None`` disables the cache (reference mode).
    part_cache: Optional[Dict[Tuple[int, int, int, str], List[Set[str]]]] = (
        {} if cfg.enable_caches else None
    )
    # Floorplan-skeleton cache shared across the sweep: candidates with
    # identical island region areas re-tile the same chip outline, core
    # rectangles and NI positions (see repro.floorplan.placer.place).
    place_cache: Optional[dict] = {} if cfg.enable_caches else None
    point_index = 0
    for i in range(0, max_cores + 1):
        counts: Dict[int, int] = {}
        for isl, plan in plans.items():
            counts[isl] = min(plan.min_switches + i, plan.num_cores)
        counts_key = tuple(sorted(counts.items()))
        if counts_key in seen_counts:
            continue  # every island saturated; nothing new to explore
        seen_counts.add(counts_key)

        try:
            with maybe_phase("partitioning"), span("partition", sweep_i=i):
                partitions = _partition_islands(
                    spec, vcgs, plans, counts, cfg, part_cache, vcg_digests
                )
        except PartitionError as exc:
            space.failures.append((counts_key, -1, "partitioning: %s" % exc))
            continue

        # One allocator per candidate: the switch/NI scaffold and flow
        # order are shared across the whole intermediate-count sweep.
        allocator = PathAllocator(
            spec,
            library,
            plans,
            partitions,
            cost_config=cfg.path_cost,
            use_cache=cfg.enable_caches,
            kernel=cfg.kernel,
        )
        # Allocation-tier cache: one base digest per candidate (the
        # spec/library/plans/partitions canonicalization is shared by
        # the whole intermediate-count sweep), per-k keys derived from
        # it.  Routes interact through shared link capacities, so the
        # whole allocation — every island pair's routing plan — is the
        # sound cacheable unit.  Objective-independent by construction:
        # objective re-runs hit this tier.
        alloc_base: Optional[str] = None
        if alloc_ctx is not None:
            alloc_base = allocation_base_key(alloc_ctx, plans, partitions)
        # Per-kernel phase timer alongside the aggregate one, so a
        # bench snapshot can attribute allocation time to the kernel
        # that actually ran (allocator.kernel is the resolved choice).
        alloc_phase = "allocation." + allocator.kernel
        seen_signatures: Set[Tuple[Tuple[Tuple[int, int], ...], int]] = set()
        for k_mid in range(0, mid_cap + 1):
            result = None
            if alloc_base is not None:
                akey = allocation_key(alloc_base, k_mid)
                cached_alloc = store.get_object(akey, "allocation")
                if cached_alloc is not None:
                    alloc_entry, alloc_header = cached_alloc
                    result = alloc_entry["result"]
                    if k_mid == 0:
                        # allocate(k>0) is not history-free (the k=0
                        # dominance shortcut); re-arm the state so any
                        # later cold allocate matches the populating run.
                        allocator.seed_k0(result, alloc_entry["k0_unblocked"])
                    if store.should_verify():
                        fresh_alloc = allocator.allocate(num_intermediate=k_mid)
                        store.check_signature(
                            alloc_header,
                            allocation_signature(fresh_alloc),
                            "allocation %s k_mid=%d" % (counts_key, k_mid),
                        )
            alloc_from_cache = result is not None
            if result is None:
                with maybe_phase("allocation"), maybe_phase(alloc_phase), span(
                    "allocate", kernel=allocator.kernel, k_mid=k_mid
                ) as alloc_span:
                    result = allocator.allocate(num_intermediate=k_mid)
                    if alloc_span is not None:
                        alloc_span.set(success=result.success)
            if not result.success:
                if alloc_base is not None and not alloc_from_cache:
                    store.put_object(
                        akey,
                        {"result": result, "k0_unblocked": allocator.k0_dominance},
                        "allocation",
                        sig=allocation_signature(result),
                    )
                space.failures.append((counts_key, k_mid, result.reason or "unknown"))
                continue
            # Requesting more intermediate switches than the allocator
            # uses reproduces an earlier point; skip the duplicate.
            used_mid = len(result.require_topology().intermediate_switches)
            signature = (counts_key, used_mid)
            if signature in seen_signatures:
                # Never cached: the dominance shortcut aliases this
                # result to the k=0 object, whose topology evaluation
                # has already mutated (wire lengths) — warm runs
                # instead miss here and re-skip via the seeded k=0
                # dominance state, which costs nothing.
                continue
            seen_signatures.add(signature)
            if alloc_base is not None and not alloc_from_cache:
                # Snapshot *before* evaluation: _evaluate_point assigns
                # wire lengths onto this topology in place, and the
                # cached bytes must stay pre-evaluation.
                store.put_object(
                    akey,
                    {"result": result, "k0_unblocked": allocator.k0_dominance},
                    "allocation",
                    sig=allocation_signature(result),
                )
            with maybe_phase("evaluation"), span("evaluate", k_mid=k_mid):
                point = _evaluate_point(
                    result, plans, counts, k_mid, point_index, library, cfg,
                    place_cache,
                )
            if prune_obj is not None and incumbent is not None:
                prefix = prune_obj.partial_cost(point)
                if prefix is not None and prefix > incumbent[: len(prefix)]:
                    # The prefix is an exact prefix of the full cost
                    # vector and already compares strictly greater, so
                    # the candidate can never beat the incumbent —
                    # skip the expensive remainder of its evaluation.
                    recorder = active_recorder()
                    if recorder is not None:
                        recorder.count("sweep_pruned")
                    space.failures.append(
                        (counts_key, k_mid, "pruned: partial cost above incumbent")
                    )
                    continue
            if cfg.objective is not None:
                point = replace(
                    point, objective_result=cfg.objective.evaluate(point)
                )
            if point.objective_result is not None and not point.objective_result.feasible:
                # Co-synthesis rejection: the objective vetoes the
                # candidate mid-sweep, exactly like a routing failure
                # (the freed index goes to the next accepted point).
                space.failures.append(
                    (
                        counts_key,
                        k_mid,
                        "objective: %s" % (point.objective_result.reason or "rejected"),
                    )
                )
                continue
            space.points.append(point)
            if prune_obj is not None:
                cost = (
                    point.objective_result.cost
                    if point.objective_result is not None
                    else prune_obj.evaluate(point).cost
                )
                if incumbent is None or cost < incumbent:
                    incumbent = cost
            point_index += 1
            if cfg.max_design_points is not None and len(space.points) >= cfg.max_design_points:
                return space
    return space


def _partition_islands(
    spec: SoCSpec,
    vcgs: Mapping[int, object],
    plans: Mapping[int, IslandPlan],
    counts: Mapping[int, int],
    cfg: SynthesisConfig,
    cache: Optional[Dict[Tuple[int, int, int, str], List[Set[str]]]] = None,
    vcg_digests: Optional[Dict[int, str]] = None,
) -> Dict[int, List[Set[str]]]:
    """Step 11: k-way min-cut partition of every island's VCG.

    ``cache`` memoizes results across the switch-count sweep, keyed by
    ``(island, k, seed, method)``; partitioning is deterministic in
    those inputs, and the returned groups are never mutated downstream,
    so sharing entries is safe.

    Behind the in-run cache sits the cross-run partition tier of the
    active :class:`~repro.cache.store.CacheStore`, keyed by the exact
    ``partition_graph`` inputs (content-addressed: any spec producing
    the same island VCG shares entries).  Objective-independent, so
    objective re-runs hit it even when the space tier misses.
    """
    recorder = active_recorder()
    store = active_store() if cfg.enable_caches else None
    partitions: Dict[int, List[Set[str]]] = {}
    for isl in sorted(counts):
        k = counts[isl]
        key = (isl, k, cfg.seed, cfg.partition_method)
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                partitions[isl] = cached
                if recorder is not None:
                    recorder.count("partition_cache_hits")
                continue
        vcg = vcgs[isl]
        graph_args = (
            list(vcg.nodes),
            vcg.symmetric_weights(),
            k,
        )
        skey: Optional[str] = None
        if store is not None:
            try:
                digest = None if vcg_digests is None else vcg_digests.get(isl)
                if digest is None:
                    digest = vcg_key(graph_args[0], graph_args[1])
                    if vcg_digests is not None:
                        vcg_digests[isl] = digest
                skey = partition_key(
                    digest,
                    k,
                    plans[isl].max_switch_size,
                    cfg.seed,
                    cfg.partition_method,
                )
            except CacheKeyError:
                store.record_key_error()
        parts: Optional[List[Set[str]]] = None
        if skey is not None:
            hit = store.get_object(skey, "partition")
            if hit is not None:
                part_lists, header = hit
                parts = [set(p) for p in part_lists]
                if store.should_verify():
                    fresh = partition_graph(
                        graph_args[0],
                        graph_args[1],
                        k,
                        max_part_size=plans[isl].max_switch_size,
                        seed=cfg.seed,
                        method=cfg.partition_method,
                    )
                    store.check_signature(
                        header,
                        partition_signature(fresh),
                        "partition island=%d k=%d" % (isl, k),
                    )
        if parts is None:
            parts = partition_graph(
                graph_args[0],
                graph_args[1],
                k,
                max_part_size=plans[isl].max_switch_size,
                seed=cfg.seed,
                method=cfg.partition_method,
            )
            if recorder is not None and cache is not None:
                recorder.count("partition_cache_misses")
            if skey is not None:
                # JSON codec: a partition is just lists of core names,
                # and sorted inner lists keep the blob canonical (sets
                # pickle in hash-seed-dependent iteration order).
                store.put_object(
                    skey,
                    [sorted(p) for p in parts],
                    "partition",
                    sig=partition_signature(parts),
                    codec="json",
                )
        if cache is not None:
            cache[key] = parts
        partitions[isl] = parts
    return partitions


def _evaluate_point(
    result: AllocationResult,
    plans: Mapping[int, IslandPlan],
    counts: Mapping[int, int],
    k_mid: int,
    index: int,
    library: NocLibrary,
    cfg: SynthesisConfig,
    place_cache: Optional[dict] = None,
) -> DesignPoint:
    """Final step: floorplan, wires, power, latency for one topology."""
    topo = result.require_topology()
    if cfg.anneal_placement:
        floorplan = anneal_placement(topo, cfg.floorplan, AnnealConfig(seed=cfg.seed))
    else:
        floorplan = place(topo, cfg.floorplan, skeleton_cache=place_cache)
    wires = assign_wire_lengths(topo, floorplan)
    if cfg.validate_points:
        max_sizes = {isl: p.max_switch_size for isl, p in plans.items()}
        if topo.has_intermediate_island:
            max_sizes[INTERMEDIATE_ISLAND] = library.max_switch_size_for_freq(
                topo.island_freqs[INTERMEDIATE_ISLAND]
            )
        validate_topology(topo, max_switch_sizes=max_sizes)
    noc_power = compute_noc_power(topo, use_lengths=cfg.use_lengths)
    soc_power = compute_soc_power(topo, noc_power)
    latency = evaluate_latency(topo)
    # Objective scoring happens in the sweep loop (after the pruning
    # decision), not here — this builds the metrics-only point.
    return DesignPoint(
        index=index,
        switch_counts=dict(counts),
        num_intermediate_requested=k_mid,
        num_intermediate_used=len(topo.intermediate_switches),
        topology=topo,
        floorplan=floorplan,
        wires=wires,
        noc_power=noc_power,
        soc_power=soc_power,
        latency=latency,
    )
