"""VI Communication Graphs (Definition 1 of the paper).

A *VI Communication Graph* ``VCG(V, E, isl)`` is the directed graph of
cores inside one voltage island, with an edge for every traffic flow
between two cores of that island.  Its edge weight combines bandwidth
and latency tightness::

    h[i, j] = alpha * bw[i, j] / max_bw + (1 - alpha) * min_lat / lat[i, j]

where ``max_bw`` is the largest flow bandwidth in the *whole* spec and
``min_lat`` the tightest latency constraint in the whole spec, so
weights are comparable across islands.  ``alpha`` trades power (cluster
by bandwidth) against performance (cluster by latency tightness).

The same weighting applied to the full core set (ignoring islands)
drives *communication-based partitioning* of cores into islands and the
baseline VI-oblivious synthesis; :func:`build_global_vcg` provides it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Set, Tuple

from ..exceptions import SpecError
from .spec import SoCSpec, TrafficFlow


@dataclass(frozen=True)
class VCG:
    """A weighted communication graph over a subset of cores.

    Attributes
    ----------
    island:
        Island id this graph describes, or ``None`` for the global
        (island-oblivious) graph.
    nodes:
        Core names, in spec declaration order.
    edges:
        ``(src, dst) -> h`` weight mapping (directed, Definition 1).
    flows:
        The underlying traffic flows, for bandwidth/latency lookups.
    alpha:
        The weight parameter used to build the edges.
    """

    island: object
    nodes: Tuple[str, ...]
    edges: Mapping[Tuple[str, str], float]
    flows: Tuple[TrafficFlow, ...]
    alpha: float

    def __len__(self) -> int:
        """|VCG(V, E, j)| — the number of cores (Algorithm 1, step 2)."""
        return len(self.nodes)

    def weight(self, src: str, dst: str) -> float:
        """Directed edge weight ``h``; 0.0 if the cores don't talk."""
        return self.edges.get((src, dst), 0.0)

    def symmetric_weights(self) -> Dict[Tuple[str, str], float]:
        """Undirected weights for min-cut partitioning.

        The cut objective does not care about direction, so weights of
        antiparallel edges accumulate onto one unordered pair (keyed by
        the sorted pair for determinism).
        """
        out: Dict[Tuple[str, str], float] = {}
        for (u, v), w in self.edges.items():
            key = (u, v) if u <= v else (v, u)
            out[key] = out.get(key, 0.0) + w
        return out

    def neighbors(self, core: str) -> Set[str]:
        """Cores with a flow to or from ``core`` inside this graph."""
        out: Set[str] = set()
        for (u, v) in self.edges:
            if u == core:
                out.add(v)
            elif v == core:
                out.add(u)
        return out

    def total_weight(self) -> float:
        """Sum of all directed edge weights."""
        return sum(self.edges.values())


def edge_weight(
    bandwidth_mbps: float,
    latency_cycles: float,
    max_bw_mbps: float,
    min_lat_cycles: float,
    alpha: float,
) -> float:
    """Definition 1 edge weight ``h``.

    >>> edge_weight(100.0, 10.0, 200.0, 5.0, 0.5)
    0.5
    """
    if not 0.0 <= alpha <= 1.0:
        raise SpecError("alpha must be in [0, 1], got %r" % alpha)
    if bandwidth_mbps < 0 or latency_cycles <= 0:
        raise SpecError("invalid flow parameters for edge weight")
    bw_term = bandwidth_mbps / max_bw_mbps if max_bw_mbps > 0 else 0.0
    lat_term = min_lat_cycles / latency_cycles if min_lat_cycles > 0 else 0.0
    return alpha * bw_term + (1.0 - alpha) * lat_term


def build_vcg(spec: SoCSpec, island: int, alpha: float = 0.6) -> VCG:
    """Build ``VCG(V, E, isl)`` for one island of the spec.

    Only flows with *both* endpoints inside the island appear as edges;
    cross-island flows are handled by the inter-switch path allocator,
    not by core-to-switch clustering.
    """
    if island not in spec.islands:
        raise SpecError("spec %r has no island %r" % (spec.name, island))
    cores = tuple(spec.cores_in_island(island))
    flows = tuple(spec.flows_within_island(island))
    max_bw = spec.max_bandwidth_mbps
    min_lat = spec.min_latency_cycles
    edges = {
        f.key: edge_weight(f.bandwidth_mbps, f.latency_cycles, max_bw, min_lat, alpha)
        for f in flows
    }
    return VCG(island=island, nodes=cores, edges=edges, flows=flows, alpha=alpha)


def build_all_vcgs(spec: SoCSpec, alpha: float = 0.6) -> Dict[int, VCG]:
    """Per-island VCGs for every island of the spec."""
    return {isl: build_vcg(spec, isl, alpha) for isl in spec.islands}


def build_global_vcg(spec: SoCSpec, alpha: float = 0.6) -> VCG:
    """Island-oblivious VCG over all cores and all flows.

    Used by communication-based island partitioning (cluster cores so
    high-bandwidth pairs share an island) and by the VI-oblivious
    baseline synthesis.
    """
    max_bw = spec.max_bandwidth_mbps
    min_lat = spec.min_latency_cycles
    edges = {
        f.key: edge_weight(f.bandwidth_mbps, f.latency_cycles, max_bw, min_lat, alpha)
        for f in spec.flows
    }
    return VCG(
        island=None,
        nodes=tuple(spec.core_names),
        edges=edges,
        flows=tuple(spec.flows),
        alpha=alpha,
    )
