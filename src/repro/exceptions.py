"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses mirror the major
pipeline stages: specification, partitioning, synthesis, floorplanning
and validation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecError(ReproError):
    """The SoC specification is malformed or inconsistent.

    Raised for unknown core references in flows, non-positive bandwidth,
    missing voltage-island assignments and similar input problems.
    """


class PartitionError(ReproError):
    """A min-cut partitioning request cannot be satisfied.

    Raised when the requested part count or the size bounds are
    impossible for the given graph (for example ``k`` larger than the
    node count with ``allow_empty=False``).
    """


class SynthesisError(ReproError):
    """Topology synthesis failed in an unexpected, non-recoverable way."""


class InfeasibleError(SynthesisError):
    """No design point satisfying all constraints could be found."""


class FloorplanError(ReproError):
    """Floorplanning failed (components do not fit, bad geometry...)."""


class CacheError(ReproError):
    """A content-addressed cache operation failed."""


class CacheKeyError(CacheError):
    """An object cannot be canonicalized into a cache key.

    Raised by :func:`repro.cache.keys.canonical` for values with no
    stable, content-addressed representation (open file handles,
    arbitrary object instances...).  Call sites treat this as
    "uncacheable" and fall through to the cold path.
    """


class CacheCorruptionError(CacheError):
    """A cached entry failed verification against a fresh recompute.

    Raised by the ``verify_on_hit`` sampling mode when the stored
    result's signature differs from the recomputed one — either the
    blob was corrupted past the checksum, or determinism was broken.
    """


class ValidationError(ReproError):
    """A synthesized topology violates a structural invariant.

    This includes violations of the shutdown-safety rule: a traffic flow
    routed through a switch that belongs to a third, gateable island.
    """
