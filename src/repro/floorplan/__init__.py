"""Island-aware floorplanning.

Modules: geometry primitives (`geometry`), slicing island allocation
(`islands`), core/switch placement (`placer`), wire length/power/delay
(`wires`) and simulated-annealing refinement (`annealer`).
"""
