"""Simulated-annealing refinement of core placement.

The constructive placer tiles cores in a deterministic order; this
optional pass searches over per-island core orderings to shrink the
bandwidth-weighted wire length.  The move set swaps two cores *within
the same island* (island membership is fixed — it is an input to the
whole problem), re-tiles that island, and re-places switches.

Seeded and deterministic; disabled by default in synthesis because the
constructive placement is already adequate for the power trends, but
exposed for the floorplan-quality ablation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..arch.topology import Topology
from .placer import Floorplan, FloorplanConfig, place
from .wires import wirelength_objective


@dataclass(frozen=True)
class AnnealConfig:
    """Annealing schedule parameters."""

    seed: int = 0
    initial_temperature: float = 1.0
    cooling: float = 0.93
    moves_per_temperature: int = 24
    min_temperature: float = 0.01


def anneal_placement(
    topology: Topology,
    config: Optional[FloorplanConfig] = None,
    anneal: Optional[AnnealConfig] = None,
) -> Floorplan:
    """Anneal per-island core orderings; return the best floorplan found."""
    cfg = anneal or AnnealConfig()
    rng = random.Random(cfg.seed)
    spec = topology.spec
    order: Dict[int, List[str]] = {
        isl: list(spec.cores_in_island(isl)) for isl in spec.islands
    }
    best_order = {k: list(v) for k, v in order.items()}
    current_fp = place(topology, config, core_order=order)
    current_cost = wirelength_objective(topology, current_fp)
    best_cost = current_cost
    best_fp = current_fp

    # Islands with at least two cores are the only ones with moves.
    movable = [isl for isl, cores in order.items() if len(cores) >= 2]
    if not movable:
        return current_fp

    temperature = cfg.initial_temperature * max(current_cost, 1.0)
    floor = cfg.min_temperature * max(current_cost, 1.0)
    while temperature > floor:
        for _ in range(cfg.moves_per_temperature):
            isl = movable[rng.randrange(len(movable))]
            cores = order[isl]
            i, j = rng.sample(range(len(cores)), 2)
            cores[i], cores[j] = cores[j], cores[i]
            fp = place(topology, config, core_order=order)
            cost = wirelength_objective(topology, fp)
            delta = cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                current_cost = cost
                current_fp = fp
                if cost < best_cost:
                    best_cost = cost
                    best_fp = fp
                    best_order = {k: list(v) for k, v in order.items()}
            else:
                cores[i], cores[j] = cores[j], cores[i]  # revert
        temperature *= cfg.cooling
    return best_fp
