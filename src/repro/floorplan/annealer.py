"""Simulated-annealing refinement of core placement.

The constructive placer tiles cores in a deterministic order; this
optional pass searches over per-island core orderings to shrink the
bandwidth-weighted wire length.  The move set swaps two cores *within
the same island* (island membership is fixed — it is an input to the
whole problem), re-tiles that island, and re-places switches.

Seeded and deterministic; disabled by default in synthesis because the
constructive placement is already adequate for the power trends, but
exposed for the floorplan-quality ablation.

Two evaluation strategies produce bit-identical anneals:

* the *reference* path re-runs the full constructive placement per
  move (``AnnealConfig.incremental=False``);
* the *incremental* path (default) keeps the floorplan skeleton —
  chip outline and island regions are invariant under in-island swaps
  — re-tiles only the moved island, re-places switches from the
  updated NI anchors, and refreshes only the per-link cost terms whose
  endpoints moved.  The candidate cost is re-summed over all links in
  the canonical ``topology.links.values()`` order with the exact same
  float terms the reference path would produce, so acceptance
  decisions (and therefore the RNG stream and the final floorplan)
  match the reference path bit for bit.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set

from ..arch.topology import Topology
from .geometry import Point, Rect
from .islands import slice_regions
from .placer import Floorplan, FloorplanConfig, _place_switches, place
from .wires import wirelength_objective


@dataclass(frozen=True)
class AnnealConfig:
    """Annealing schedule parameters."""

    seed: int = 0
    initial_temperature: float = 1.0
    cooling: float = 0.93
    moves_per_temperature: int = 24
    min_temperature: float = 0.01
    #: Per-move delta evaluation: re-tile only the moved island instead
    #: of re-running the full constructive placement.  Equal results by
    #: construction; the reference path stays as the parity oracle.
    incremental: bool = True


def anneal_placement(
    topology: Topology,
    config: Optional[FloorplanConfig] = None,
    anneal: Optional[AnnealConfig] = None,
) -> Floorplan:
    """Anneal per-island core orderings; return the best floorplan found."""
    cfg = anneal or AnnealConfig()
    if cfg.incremental:
        return _anneal_incremental(topology, config, cfg)
    return _anneal_reference(topology, config, cfg)


def _anneal_reference(
    topology: Topology,
    config: Optional[FloorplanConfig],
    cfg: AnnealConfig,
) -> Floorplan:
    """Full-recompute anneal: one constructive placement per move."""
    rng = random.Random(cfg.seed)
    spec = topology.spec
    order: Dict[int, List[str]] = {
        isl: list(spec.cores_in_island(isl)) for isl in spec.islands
    }
    best_order = {k: list(v) for k, v in order.items()}
    current_fp = place(topology, config, core_order=order)
    current_cost = wirelength_objective(topology, current_fp)
    best_cost = current_cost
    best_fp = current_fp

    # Islands with at least two cores are the only ones with moves.
    movable = [isl for isl, cores in order.items() if len(cores) >= 2]
    if not movable:
        return current_fp

    temperature = cfg.initial_temperature * max(current_cost, 1.0)
    floor = cfg.min_temperature * max(current_cost, 1.0)
    while temperature > floor:
        for _ in range(cfg.moves_per_temperature):
            isl = movable[rng.randrange(len(movable))]
            cores = order[isl]
            i, j = rng.sample(range(len(cores)), 2)
            cores[i], cores[j] = cores[j], cores[i]
            fp = place(topology, config, core_order=order)
            cost = wirelength_objective(topology, fp)
            delta = cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                current_cost = cost
                current_fp = fp
                if cost < best_cost:
                    best_cost = cost
                    best_fp = fp
                    best_order = {k: list(v) for k, v in order.items()}
            else:
                cores[i], cores[j] = cores[j], cores[i]  # revert
        temperature *= cfg.cooling
    return best_fp


def _anneal_incremental(
    topology: Topology,
    config: Optional[FloorplanConfig],
    cfg: AnnealConfig,
) -> Floorplan:
    """Delta-evaluated anneal: re-tile only the moved island per move."""
    rng = random.Random(cfg.seed)
    spec = topology.spec
    order: Dict[int, List[str]] = {
        isl: list(spec.cores_in_island(isl)) for isl in spec.islands
    }
    current_fp = place(topology, config, core_order=order)

    # Mutable placement state, seeded from the constructive placement.
    # The chip outline and island regions never change: in-island swaps
    # preserve every region's area, and the slicing of the die depends
    # only on those areas.
    chip = current_fp.chip
    island_rects: Dict[int, Rect] = dict(current_fp.island_rects)
    core_rects: Dict[str, Rect] = dict(current_fp.core_rects)
    ni_pos: Dict[str, Point] = dict(current_fp.ni_pos)
    switch_pos: Dict[str, Point] = dict(current_fp.switch_pos)

    core_to_nis: Dict[str, List[str]] = {}
    for nid, ni in topology.nis.items():
        core_to_nis.setdefault(ni.core, []).append(nid)
    links_of: Dict[str, List[int]] = {}
    for link in topology.links.values():
        links_of.setdefault(link.src, []).append(link.id)
        links_of.setdefault(link.dst, []).append(link.id)

    def term(link, nis: Mapping[str, Point], sws: Mapping[str, Point]) -> float:
        src = sws[link.src] if link.src in sws else nis[link.src]
        dst = sws[link.dst] if link.dst in sws else nis[link.dst]
        return src.manhattan(dst) * max(link.used_mbps, 1.0)

    # Per-link cost terms; the total is always re-summed in canonical
    # link order so it is the same float the reference path computes.
    terms: Dict[int, float] = {
        link.id: term(link, ni_pos, switch_pos)
        for link in topology.links.values()
    }
    current_cost = 0.0
    for link in topology.links.values():
        current_cost += terms[link.id]
    best_cost = current_cost
    best_fp = current_fp

    movable = [isl for isl, cores in order.items() if len(cores) >= 2]
    if not movable:
        return current_fp

    temperature = cfg.initial_temperature * max(current_cost, 1.0)
    floor = cfg.min_temperature * max(current_cost, 1.0)
    while temperature > floor:
        for _ in range(cfg.moves_per_temperature):
            isl = movable[rng.randrange(len(movable))]
            cores = order[isl]
            i, j = rng.sample(range(len(cores)), 2)
            cores[i], cores[j] = cores[j], cores[i]

            # Re-tile just the moved island and refresh its NI anchors.
            entries = [(c, spec.core(c).area_mm2) for c in cores]
            placed = slice_regions(island_rects[isl], entries)
            cand_ni = dict(ni_pos)
            changed: Set[str] = set()
            for c, r in placed.items():
                for nid in core_to_nis.get(str(c), ()):
                    p = r.center
                    if cand_ni[nid] != p:
                        cand_ni[nid] = p
                        changed.add(nid)
            cand_sw = _place_switches(topology, island_rects, cand_ni)
            for sid, p in cand_sw.items():
                if switch_pos[sid] != p:
                    changed.add(sid)

            cand_terms = dict(terms)
            for comp in changed:
                for lid in links_of.get(comp, ()):
                    cand_terms[lid] = term(topology.links[lid], cand_ni, cand_sw)
            cost = 0.0
            for link in topology.links.values():
                cost += cand_terms[link.id]

            delta = cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                current_cost = cost
                for c, r in placed.items():
                    core_rects[str(c)] = r
                ni_pos = cand_ni
                switch_pos = cand_sw
                terms = cand_terms
                if cost < best_cost:
                    best_cost = cost
                    best_fp = Floorplan(
                        chip=chip,
                        island_rects=dict(island_rects),
                        core_rects=dict(core_rects),
                        switch_pos=dict(switch_pos),
                        ni_pos=dict(ni_pos),
                    )
            else:
                cores[i], cores[j] = cores[j], cores[i]  # revert
        temperature *= cfg.cooling
    return best_fp
