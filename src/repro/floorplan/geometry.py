"""Planar geometry primitives for floorplanning.

Wire lengths in on-chip routing follow the Manhattan metric (wires run
on orthogonal routing layers), so that is the distance this package
uses throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from ..exceptions import FloorplanError


@dataclass(frozen=True)
class Point:
    """A location on the die, in millimetres."""

    x: float
    y: float

    def manhattan(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other``.

        >>> Point(0.0, 0.0).manhattan(Point(3.0, 4.0))
        7.0
        """
        return abs(self.x - other.x) + abs(self.y - other.y)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle: origin corner plus extent."""

    x: float
    y: float
    w: float
    h: float

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise FloorplanError("rectangle extent must be >= 0, got %r x %r" % (self.w, self.h))

    @property
    def area(self) -> float:
        """Area in mm^2."""
        return self.w * self.h

    @property
    def center(self) -> Point:
        """Geometric center."""
        return Point(self.x + self.w / 2.0, self.y + self.h / 2.0)

    @property
    def x2(self) -> float:
        """Right edge."""
        return self.x + self.w

    @property
    def y2(self) -> float:
        """Top edge."""
        return self.y + self.h

    def contains(self, p: Point, tol: float = 1e-9) -> bool:
        """True when the point lies inside (or on the border of) self."""
        return (
            self.x - tol <= p.x <= self.x2 + tol
            and self.y - tol <= p.y <= self.y2 + tol
        )

    def contains_rect(self, other: "Rect", tol: float = 1e-9) -> bool:
        """True when ``other`` lies fully inside self."""
        return (
            self.x - tol <= other.x
            and self.y - tol <= other.y
            and other.x2 <= self.x2 + tol
            and other.y2 <= self.y2 + tol
        )

    def overlaps(self, other: "Rect", tol: float = 1e-9) -> bool:
        """True when the interiors of the rectangles intersect."""
        return (
            self.x + tol < other.x2
            and other.x + tol < self.x2
            and self.y + tol < other.y2
            and other.y + tol < self.y2
        )

    def clamp(self, p: Point) -> Point:
        """Closest point to ``p`` inside self."""
        return Point(min(max(p.x, self.x), self.x2), min(max(p.y, self.y), self.y2))

    def split_vertical(self, left_fraction: float) -> Tuple["Rect", "Rect"]:
        """Split into left/right rectangles at ``left_fraction`` of width."""
        if not 0.0 < left_fraction < 1.0:
            raise FloorplanError("split fraction must be in (0,1), got %r" % left_fraction)
        wl = self.w * left_fraction
        return (
            Rect(self.x, self.y, wl, self.h),
            Rect(self.x + wl, self.y, self.w - wl, self.h),
        )

    def split_horizontal(self, bottom_fraction: float) -> Tuple["Rect", "Rect"]:
        """Split into bottom/top rectangles at ``bottom_fraction`` of height."""
        if not 0.0 < bottom_fraction < 1.0:
            raise FloorplanError("split fraction must be in (0,1), got %r" % bottom_fraction)
        hb = self.h * bottom_fraction
        return (
            Rect(self.x, self.y, self.w, hb),
            Rect(self.x, self.y + hb, self.w, self.h - hb),
        )
