"""Island region allocation by recursive area slicing.

The chip is a square die whose area covers all cores plus a whitespace
margin.  Voltage islands must be *contiguous* regions — that is the
whole point of islands: one pair of power/ground rails per region, one
set of sleep transistors (Sections 1 and 3.1).  We allocate them with a
classic slicing floorplan:

* sort regions by area (descending, name-tiebroken, deterministic);
* recursively split the region list into two halves of roughly equal
  total area, cutting the current rectangle proportionally — vertical
  or horizontal, whichever keeps aspect ratios closer to square;
* a singleton list claims the whole rectangle.

Slicing yields a perfect tiling (no overlap, no dead space between
regions), which keeps the geometry honest for the area-overhead claims
and trivially satisfies island contiguity.

The intermediate NoC island, when present, participates like any other
region using its switch area; the paper models exactly this "take the
availability of power and ground lines for the intermediate VI as an
input" scenario.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..exceptions import FloorplanError
from .geometry import Rect


def slice_regions(
    rect: Rect,
    areas: Sequence[Tuple[object, float]],
) -> Dict[object, Rect]:
    """Tile ``rect`` into one sub-rectangle per (key, area) entry.

    Sub-rectangle areas are proportional to the requested areas; the
    tiling is exact (sums to ``rect.area``).  Keys may be any hashable
    (island ids, core names).

    >>> r = slice_regions(Rect(0, 0, 2, 2), [("a", 1.0), ("b", 1.0)])
    >>> abs(r["a"].area - 2.0) < 1e-9 and abs(r["b"].area - 2.0) < 1e-9
    True
    """
    if not areas:
        raise FloorplanError("no regions to slice")
    for key, a in areas:
        if a <= 0:
            raise FloorplanError("region %r has non-positive area %r" % (key, a))
    if rect.area <= 0:
        raise FloorplanError("cannot slice a degenerate rectangle")
    ordered = sorted(areas, key=lambda ka: (-ka[1], str(ka[0])))
    out: Dict[object, Rect] = {}
    _slice(rect, ordered, out)
    return out


def _slice(
    rect: Rect,
    areas: List[Tuple[object, float]],
    out: Dict[object, Rect],
) -> None:
    if len(areas) == 1:
        out[areas[0][0]] = rect
        return
    total = sum(a for _, a in areas)
    # Greedy halving: walk the (sorted) list, stop when half the area is
    # reached.  Keeps both sides non-empty.
    acc = 0.0
    split_at = 1
    for i, (_, a) in enumerate(areas[:-1]):
        acc += a
        if acc >= total / 2.0:
            split_at = i + 1
            break
    else:
        split_at = len(areas) - 1
    left = areas[:split_at]
    right = areas[split_at:]
    frac = sum(a for _, a in left) / total
    frac = min(max(frac, 1e-6), 1.0 - 1e-6)
    # Cut across the longer dimension so children stay square-ish.
    if rect.w >= rect.h:
        r1, r2 = rect.split_vertical(frac)
    else:
        r1, r2 = rect.split_horizontal(frac)
    _slice(r1, left, out)
    _slice(r2, right, out)


def chip_rect(total_area_mm2: float, whitespace_fraction: float = 0.25, aspect: float = 1.0) -> Rect:
    """Die outline: total area inflated by whitespace, given aspect.

    ``aspect`` is width/height.
    """
    if total_area_mm2 <= 0:
        raise FloorplanError("total area must be positive")
    if whitespace_fraction < 0:
        raise FloorplanError("whitespace fraction must be >= 0")
    if aspect <= 0:
        raise FloorplanError("aspect must be positive")
    area = total_area_mm2 * (1.0 + whitespace_fraction)
    h = math.sqrt(area / aspect)
    w = area / h
    return Rect(0.0, 0.0, w, h)
