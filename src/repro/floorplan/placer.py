"""Placement of cores, NIs and switches on the die.

The flow mirrors the paper's "the NoC components are inserted on the
floorplan and the wire lengths, wire power and delay are calculated"
(Section 4, last step):

1. allocate island regions (:mod:`repro.floorplan.islands`);
2. tile each island region with its cores (same slicing machinery,
   cores inflated by a local whitespace factor that reserves room for
   the NoC components — this inflation is what the NoC *area overhead*
   is measured against);
3. drop each NI at its core's boundary-facing center;
4. drop each switch at the bandwidth-weighted centroid of the NIs and
   peer switches it connects to, clamped into its island's region
   (switches must sit inside their island — their power rails come from
   it);
5. intermediate-island switches land in the intermediate region (when
   instantiated).

The result is a :class:`Floorplan` that the wire model
(:mod:`repro.floorplan.wires`) and exports (Figure 5) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..arch.topology import INTERMEDIATE_ISLAND, Topology
from ..exceptions import FloorplanError
from .geometry import Point, Rect
from .islands import chip_rect, slice_regions


@dataclass(frozen=True)
class FloorplanConfig:
    """Floorplanner knobs."""

    #: Die whitespace on top of the summed region areas.
    whitespace_fraction: float = 0.12
    #: Extra area per island to host NoC components and local routing.
    island_noc_margin: float = 0.06
    #: Die aspect ratio (width / height).
    aspect: float = 1.0
    #: Floor for the intermediate island's region area (mm^2).
    min_intermediate_area_mm2: float = 0.35


@dataclass
class Floorplan:
    """Placed design: die, island regions, core cells, NoC positions."""

    chip: Rect
    island_rects: Dict[int, Rect]
    core_rects: Dict[str, Rect]
    switch_pos: Dict[str, Point]
    ni_pos: Dict[str, Point]

    def position_of(self, comp_id: str) -> Point:
        """Die position of a component (switch or NI) by id."""
        if comp_id in self.switch_pos:
            return self.switch_pos[comp_id]
        if comp_id in self.ni_pos:
            return self.ni_pos[comp_id]
        raise FloorplanError("unplaced component %r" % comp_id)

    def wire_length_mm(self, src_id: str, dst_id: str) -> float:
        """Manhattan distance between two placed components."""
        return self.position_of(src_id).manhattan(self.position_of(dst_id))


def place(
    topology: Topology,
    config: Optional[FloorplanConfig] = None,
    core_order: Optional[Mapping[int, Sequence[str]]] = None,
    skeleton_cache: Optional[dict] = None,
) -> Floorplan:
    """Produce a floorplan for a synthesized topology.

    ``core_order`` optionally fixes the per-island core ordering fed to
    the slicing tiler — the annealer uses this hook to explore
    placements; by default cores are tiled in bandwidth-affinity order.

    ``skeleton_cache`` memoizes the floorplan *skeleton* — chip
    outline, island regions, core rectangles and NI positions — across
    calls for the same spec.  The skeleton is a pure function of the
    island region areas (plus the config knobs), and candidates of one
    synthesis sweep mostly repeat the same areas (only intermediate
    switches change them), so the slicing tiler runs once per distinct
    area vector instead of once per design point.  Only switch
    placement depends on the routed links and is recomputed per call;
    cached geometry objects are immutable and shared, the dicts are
    copied.  The annealer's ``core_order`` hook bypasses the cache.
    """
    cfg = config or FloorplanConfig()
    spec = topology.spec
    lib = topology.library

    island_core_area: Dict[int, float] = {}
    for isl in spec.islands:
        area = sum(spec.core(c).area_mm2 for c in spec.cores_in_island(isl))
        island_core_area[isl] = area * (1.0 + cfg.island_noc_margin)
    region_areas: List[Tuple[object, float]] = sorted(island_core_area.items())
    if topology.has_intermediate_island:
        mid_area = sum(
            lib.switch_area_mm2(max(s.n_in, 1), max(s.n_out, 1))
            for s in topology.intermediate_switches
        )
        region_areas.append(
            (INTERMEDIATE_ISLAND, max(mid_area * 4.0, cfg.min_intermediate_area_mm2))
        )

    skeleton = None
    skeleton_key = None
    if skeleton_cache is not None and core_order is None:
        skeleton_key = (
            tuple(region_areas),
            cfg.whitespace_fraction,
            cfg.island_noc_margin,
            cfg.aspect,
            cfg.min_intermediate_area_mm2,
        )
        skeleton = skeleton_cache.get(skeleton_key)
    if skeleton is None:
        total = sum(a for _, a in region_areas)
        chip = chip_rect(total, cfg.whitespace_fraction, cfg.aspect)
        island_rects_any = slice_regions(chip, region_areas)
        island_rects: Dict[int, Rect] = {
            int(k): v for k, v in island_rects_any.items()
        }

        core_rects: Dict[str, Rect] = {}
        for isl in spec.islands:
            cores = list(spec.cores_in_island(isl))
            if core_order and isl in core_order:
                ordered = list(core_order[isl])
                if sorted(ordered) != sorted(cores):
                    raise FloorplanError(
                        "core_order for island %d does not match its cores" % isl
                    )
                cores = ordered
            rect = island_rects[isl]
            entries = [(c, spec.core(c).area_mm2) for c in cores]
            placed = slice_regions(rect, entries)
            for c, r in placed.items():
                core_rects[str(c)] = r

        ni_pos: Dict[str, Point] = {}
        for nid, ni in topology.nis.items():
            ni_pos[nid] = core_rects[ni.core].center

        skeleton = (chip, island_rects, core_rects, ni_pos)
        if skeleton_key is not None:
            skeleton_cache[skeleton_key] = skeleton
    chip, island_rects, core_rects, ni_pos = skeleton

    switch_pos = _place_switches(topology, island_rects, ni_pos)
    return Floorplan(
        chip=chip,
        island_rects=dict(island_rects),
        core_rects=dict(core_rects),
        switch_pos=switch_pos,
        ni_pos=dict(ni_pos),
    )


def _place_switches(
    topology: Topology,
    island_rects: Mapping[int, Rect],
    ni_pos: Mapping[str, Point],
) -> Dict[str, Point]:
    """Bandwidth-weighted centroid placement with island clamping.

    Two fixed-point passes: the first places every switch at the
    centroid of its attached NIs (intermediate switches start at die
    center), the second refines with switch-to-switch link weights now
    that peers have positions.
    """
    # One incidence scan over the links replaces the old
    # per-switch-per-pass full link sweep (O(switches x links) became
    # the evaluation hot spot at benchmark scale).  Each switch gets its
    # attraction list in global link order — the same order the old scan
    # appended in — so the centroid accumulation is bit-identical.  NI
    # anchors are fixed points; switch anchors (``fixed=False``) are
    # resolved against the evolving position map each pass.
    inbound_ni: Dict[str, List[Tuple[Point, float]]] = {
        sid: [] for sid in topology.switches
    }
    pulls: Dict[str, List[Tuple[bool, object, float]]] = {
        sid: [] for sid in topology.switches
    }
    for link in topology.links.values():
        w = max(link.used_mbps, 1.0)
        if link.kind == "ni2sw":
            inbound_ni[link.dst].append((ni_pos[link.src], w))
            pulls[link.dst].append((True, ni_pos[link.src], w))
        elif link.kind == "sw2ni":
            pulls[link.src].append((True, ni_pos[link.dst], w))
        else:  # sw2sw pulls both endpoints toward each other
            pulls[link.dst].append((False, link.src, w))
            pulls[link.src].append((False, link.dst, w))

    positions: Dict[str, Point] = {}
    # Pass 0: NI centroids (inbound NI links only, as before).
    for sid, sw in topology.switches.items():
        pts = inbound_ni[sid]
        if pts:
            positions[sid] = _weighted_centroid(pts)
        else:
            rect = island_rects[sw.island]
            positions[sid] = rect.center
    # Pass 1..2: include switch-to-switch attraction.
    for _ in range(2):
        updated: Dict[str, Point] = {}
        for sid, sw in topology.switches.items():
            plist = pulls[sid]
            if not plist:
                continue
            total = 0.0
            x = 0.0
            y = 0.0
            for fixed, anchor, w in plist:
                p = anchor if fixed else positions[anchor]
                total += w
                x += p.x * w
                y += p.y * w
            if total <= 0:
                total = float(len(plist))
                x = y = 0.0
                for fixed, anchor, w in plist:
                    p = anchor if fixed else positions[anchor]
                    x += p.x * 1.0
                    y += p.y * 1.0
            updated[sid] = island_rects[sw.island].clamp(Point(x / total, y / total))
        positions.update(updated)
    return positions


def _weighted_centroid(points: Sequence[Tuple[Point, float]]) -> Point:
    total = sum(w for _, w in points)
    if total <= 0:
        total = float(len(points))
        points = [(p, 1.0) for p, _ in points]
    x = sum(p.x * w for p, w in points) / total
    y = sum(p.y * w for p, w in points) / total
    return Point(x, y)
