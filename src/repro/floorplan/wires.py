"""Wire length assignment and wire power/delay reporting.

After placement, every topology link gets its Manhattan wire length;
power analysis then charges traffic energy per millimetre, and the
timing check flags intra-island links that exceed one clock cycle of
wire reach (the paper uses unpipelined links inside islands, and
over-the-cell unpipelined links across islands whose 4-cycle converter
budget absorbs the flight time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..arch.topology import Topology
from .placer import Floorplan


@dataclass(frozen=True)
class WireReport:
    """Wire statistics of a placed topology."""

    total_length_mm: float
    ni_length_mm: float
    intra_island_length_mm: float
    cross_island_length_mm: float
    #: Intra-island sw2sw links needing more than 1 cycle of wire reach.
    timing_violations: Tuple[int, ...]
    #: Cross-island links longer than the converter crossing budget.
    crossing_violations: Tuple[int, ...]

    @property
    def clean(self) -> bool:
        """True when no link breaks its timing budget."""
        return not self.timing_violations and not self.crossing_violations


def assign_wire_lengths(topology: Topology, floorplan: Floorplan) -> WireReport:
    """Fill ``link.length_mm`` for every link and report wire stats."""
    lib = topology.library
    total = ni_len = intra = cross = 0.0
    timing: List[int] = []
    crossing: List[int] = []
    for link in topology.links.values():
        length = floorplan.wire_length_mm(link.src, link.dst)
        link.length_mm = length
        total += length
        if link.kind in ("ni2sw", "sw2ni"):
            ni_len += length
            continue
        if link.converter:
            cross += length
            budget = lib.wire_length_per_cycle_mm(link.freq_mhz) * lib.fifo_crossing_cycles
            if length > budget:
                crossing.append(link.id)
        else:
            intra += length
            if lib.link_cycles(length, link.freq_mhz) > lib.link_traversal_cycles:
                timing.append(link.id)
    return WireReport(
        total_length_mm=total,
        ni_length_mm=ni_len,
        intra_island_length_mm=intra,
        cross_island_length_mm=cross,
        timing_violations=tuple(sorted(timing)),
        crossing_violations=tuple(sorted(crossing)),
    )


def wirelength_objective(topology: Topology, floorplan: Floorplan) -> float:
    """Bandwidth-weighted total wire length (annealer objective).

    Lower is better: high-bandwidth links want to be short since wire
    energy is per bit *and* per millimetre.
    """
    cost = 0.0
    for link in topology.links.values():
        length = floorplan.wire_length_mm(link.src, link.dst)
        cost += length * max(link.used_mbps, 1.0)
    return cost
