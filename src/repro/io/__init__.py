"""Serialization and rendering.

Modules: JSON round-trip (`json_io`), Graphviz DOT topologies (`dot`),
floorplan ASCII/SVG (`floorplan_art`), structural Verilog netlists
(`netlist`) and text/CSV tables (`report`).
"""
