"""Graphviz DOT export of synthesized topologies (Figure 4).

The paper's Figure 4 shows the synthesized topology for the 6-island
logical partitioning: cores hanging off island switches, converters on
the island crossings.  :func:`topology_to_dot` renders any topology the
same way — islands become DOT clusters, NIs/cores become boxes,
switches ellipses, and cross-island links are drawn dashed with the
converter annotation.
"""

from __future__ import annotations

from typing import Dict, List

from ..arch.topology import INTERMEDIATE_ISLAND, Topology

#: Pastel fill colours cycled per island cluster.
_ISLAND_COLORS = (
    "#cfe2f3", "#d9ead3", "#fff2cc", "#f4cccc", "#d9d2e9",
    "#fce5cd", "#d0e0e3", "#ead1dc", "#e6b8af", "#c9daf8",
)


def _island_color(island: int) -> str:
    if island == INTERMEDIATE_ISLAND:
        return "#eeeeee"
    return _ISLAND_COLORS[island % len(_ISLAND_COLORS)]


def _island_label(island: int) -> str:
    if island == INTERMEDIATE_ISLAND:
        return "intermediate NoC VI (never gated)"
    return "VI %d" % island


def topology_to_dot(topology: Topology, include_nis: bool = False) -> str:
    """Render the topology as a DOT digraph string.

    ``include_nis`` draws explicit NI nodes between cores and switches;
    by default cores connect straight to their switch, which matches
    the paper's figure style.
    """
    spec = topology.spec
    lines: List[str] = []
    lines.append("digraph %s {" % _dot_id(spec.name))
    lines.append("  rankdir=LR;")
    lines.append('  node [fontname="Helvetica", fontsize=10];')
    lines.append('  edge [fontname="Helvetica", fontsize=8];')

    islands = sorted({s.island for s in topology.switches.values()})
    for isl in islands:
        lines.append("  subgraph cluster_isl%s {" % str(isl).replace("-", "m"))
        lines.append('    label="%s";' % _island_label(isl))
        lines.append('    style=filled; color="%s";' % _island_color(isl))
        freq = topology.island_freqs.get(isl)
        if freq:
            lines.append('    fontsize=11; tooltip="%.0f MHz";' % freq)
        for sw in topology.island_switches(isl):
            lines.append(
                '    %s [shape=ellipse, style=filled, fillcolor=white, '
                'label="%s\\n%dx%d @ %.0fMHz"];'
                % (_dot_id(sw.id), sw.id, sw.n_in, sw.n_out, sw.freq_mhz)
            )
        if isl != INTERMEDIATE_ISLAND:
            for core in spec.cores_in_island(isl):
                lines.append(
                    '    %s [shape=box, style=filled, fillcolor=white, label="%s"];'
                    % (_dot_id("core_" + core), core)
                )
                if include_nis:
                    ni = "ni.%s" % core
                    lines.append(
                        '    %s [shape=box, style="filled,rounded", '
                        'fillcolor="#f7f7f7", label="NI"];' % _dot_id(ni)
                    )
        lines.append("  }")

    # Core attachments.
    for core, sw_id in sorted(topology.core_switch.items()):
        if include_nis:
            ni = _dot_id("ni.%s" % core)
            lines.append("  %s -> %s [dir=both, arrowsize=0.6];" % (_dot_id("core_" + core), ni))
            lines.append("  %s -> %s [dir=both, arrowsize=0.6];" % (ni, _dot_id(sw_id)))
        else:
            lines.append(
                "  %s -> %s [dir=both, arrowsize=0.6];" % (_dot_id("core_" + core), _dot_id(sw_id))
            )

    # Switch-to-switch links (merge antiparallel pairs into dir=both).
    drawn = set()
    for link in sorted(topology.sw_links(), key=lambda l: l.id):
        key = tuple(sorted((link.src, link.dst)))
        reverse = topology.links_between(link.dst, link.src)
        both = bool(reverse)
        if both and key in drawn:
            continue
        drawn.add(key)
        style = "dashed" if link.converter else "solid"
        label = "conv" if link.converter else ""
        lines.append(
            '  %s -> %s [style=%s, dir=%s, label="%s", penwidth=%.1f];'
            % (
                _dot_id(link.src),
                _dot_id(link.dst),
                style,
                "both" if both else "forward",
                label,
                1.0 + 2.0 * min(link.utilization, 1.0),
            )
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def save_dot(topology: Topology, path: str, include_nis: bool = False) -> None:
    """Write the DOT rendering to a file."""
    with open(path, "w") as f:
        f.write(topology_to_dot(topology, include_nis))


def _dot_id(name: str) -> str:
    """A safe DOT identifier for any component name."""
    return '"%s"' % name.replace('"', "'")
