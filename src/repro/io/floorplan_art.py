"""Floorplan rendering: ASCII art and SVG (Figure 5).

The paper's Figure 5 shows the placed design: island regions tiling
the die, cores inside their islands, switches sitting among the cores
they serve.  :func:`floorplan_to_ascii` gives a terminal-friendly
rendering for reports and benches; :func:`floorplan_to_svg` produces a
standalone vector image without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..arch.topology import INTERMEDIATE_ISLAND, Topology
from ..floorplan.placer import Floorplan

_SVG_COLORS = (
    "#cfe2f3", "#d9ead3", "#fff2cc", "#f4cccc", "#d9d2e9",
    "#fce5cd", "#d0e0e3", "#ead1dc", "#e6b8af", "#c9daf8",
)


def floorplan_to_ascii(
    floorplan: Floorplan,
    topology: Optional[Topology] = None,
    width: int = 72,
) -> str:
    """Render the floorplan as a character grid.

    Each core cell is drawn with the first letters of its name; island
    boundaries appear as changes in background character; switches are
    marked ``*``.  A legend follows the grid.
    """
    chip = floorplan.chip
    height = max(10, int(width * chip.h / chip.w * 0.5))  # chars are ~2:1
    grid = [[" " for _ in range(width)] for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, max(0, int(x / chip.w * width)))

    def to_row(y: float) -> int:
        # y grows upward; rows grow downward.
        return min(height - 1, max(0, height - 1 - int(y / chip.h * height)))

    shades = ".,:;~-+=o"
    for isl, rect in sorted(floorplan.island_rects.items()):
        shade = "#" if isl == INTERMEDIATE_ISLAND else shades[isl % len(shades)]
        for r in range(to_row(rect.y2), to_row(rect.y) + 1):
            for c in range(to_col(rect.x), to_col(rect.x2) + 1):
                grid[r][c] = shade

    labels: List[str] = []
    for i, (core, rect) in enumerate(sorted(floorplan.core_rects.items())):
        tag = core[:4]
        center = rect.center
        r, c = to_row(center.y), to_col(center.x)
        for j, ch in enumerate(tag):
            if c + j < width:
                grid[r][c + j] = ch
        labels.append("%-10s" % core)

    if topology is not None:
        for sid in sorted(floorplan.switch_pos):
            p = floorplan.switch_pos[sid]
            grid[to_row(p.y)][to_col(p.x)] = "*"

    out = ["+" + "-" * width + "+"]
    for row in grid:
        out.append("|" + "".join(row) + "|")
    out.append("+" + "-" * width + "+")
    out.append("die %.2f x %.2f mm; '*' = switch; islands shaded differently" % (chip.w, chip.h))
    return "\n".join(out) + "\n"


def floorplan_to_svg(
    floorplan: Floorplan,
    topology: Optional[Topology] = None,
    scale_px_per_mm: float = 80.0,
) -> str:
    """Render the floorplan as a standalone SVG document string."""
    chip = floorplan.chip
    W = chip.w * scale_px_per_mm
    H = chip.h * scale_px_per_mm

    def X(x: float) -> float:
        return x * scale_px_per_mm

    def Y(y: float) -> float:
        return H - y * scale_px_per_mm  # SVG y is top-down

    parts: List[str] = []
    parts.append(
        '<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" '
        'viewBox="0 0 %.0f %.0f">' % (W, H, W, H)
    )
    parts.append(
        '<rect x="0" y="0" width="%.0f" height="%.0f" fill="white" stroke="black"/>' % (W, H)
    )
    for isl, rect in sorted(floorplan.island_rects.items()):
        color = "#eeeeee" if isl == INTERMEDIATE_ISLAND else _SVG_COLORS[isl % len(_SVG_COLORS)]
        parts.append(
            '<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" '
            'stroke="#333" stroke-width="2"/>'
            % (X(rect.x), Y(rect.y2), rect.w * scale_px_per_mm, rect.h * scale_px_per_mm, color)
        )
        label = "mid" if isl == INTERMEDIATE_ISLAND else "VI%d" % isl
        parts.append(
            '<text x="%.1f" y="%.1f" font-size="13" fill="#333">%s</text>'
            % (X(rect.x) + 3, Y(rect.y2) + 14, label)
        )
    for core, rect in sorted(floorplan.core_rects.items()):
        parts.append(
            '<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" '
            'stroke="#666" stroke-width="1"/>'
            % (X(rect.x), Y(rect.y2), rect.w * scale_px_per_mm, rect.h * scale_px_per_mm)
        )
        c = rect.center
        parts.append(
            '<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle" '
            'fill="#222">%s</text>' % (X(c.x), Y(c.y) + 3, core)
        )
    if topology is not None:
        # Draw sw2sw links under the switch markers.
        for link in topology.sw_links():
            a = floorplan.position_of(link.src)
            b = floorplan.position_of(link.dst)
            dash = ' stroke-dasharray="6,4"' if link.converter else ""
            parts.append(
                '<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#b00" '
                'stroke-width="1.5"%s/>' % (X(a.x), Y(a.y), X(b.x), Y(b.y), dash)
            )
        for sid, p in sorted(floorplan.switch_pos.items()):
            parts.append(
                '<circle cx="%.1f" cy="%.1f" r="6" fill="#b00" stroke="black"/>'
                % (X(p.x), Y(p.y))
            )
            parts.append(
                '<text x="%.1f" y="%.1f" font-size="9" fill="#b00">%s</text>'
                % (X(p.x) + 8, Y(p.y) + 3, sid)
            )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def save_floorplan_svg(
    floorplan: Floorplan, path: str, topology: Optional[Topology] = None
) -> None:
    """Write the SVG rendering to a file."""
    with open(path, "w") as f:
        f.write(floorplan_to_svg(floorplan, topology))
