"""JSON serialization of specs, topologies and design-point summaries.

Specs round-trip losslessly (they are plain data).  Topologies export
to a complete structural description — components, links, routes,
island clocks — suitable for driving a downstream implementation flow
or re-loading for analysis; reconstruction returns a fully functional
:class:`~repro.arch.topology.Topology` bound to the spec embedded in
the same file.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..arch.topology import Link, NetworkInterface, Switch, Topology
from ..core.design_point import DesignPoint
from ..core.spec import CoreSpec, SoCSpec, TrafficFlow
from ..exceptions import SpecError
from ..power.library import NocLibrary


# ----------------------------------------------------------------------
# Spec
# ----------------------------------------------------------------------


def spec_to_dict(spec: SoCSpec) -> Dict[str, Any]:
    """Spec as a JSON-compatible dict."""
    return {
        "name": spec.name,
        "cores": [
            {
                "name": c.name,
                "area_mm2": c.area_mm2,
                "dynamic_power_mw": c.dynamic_power_mw,
                "leakage_power_mw": c.leakage_power_mw,
                "kind": c.kind,
                "group": c.group,
                "freq_mhz": c.freq_mhz,
            }
            for c in spec.cores
        ],
        "flows": [
            {
                "src": f.src,
                "dst": f.dst,
                "bandwidth_mbps": f.bandwidth_mbps,
                "latency_cycles": f.latency_cycles,
            }
            for f in spec.flows
        ],
        "vi_assignment": dict(spec.vi_assignment),
    }


def spec_from_dict(data: Dict[str, Any]) -> SoCSpec:
    """Rebuild a spec from :func:`spec_to_dict` output."""
    try:
        cores = tuple(
            CoreSpec(
                name=c["name"],
                area_mm2=c["area_mm2"],
                dynamic_power_mw=c["dynamic_power_mw"],
                leakage_power_mw=c["leakage_power_mw"],
                kind=c.get("kind", "peripheral"),
                group=c.get("group", ""),
                freq_mhz=c.get("freq_mhz", 200.0),
            )
            for c in data["cores"]
        )
        flows = tuple(
            TrafficFlow(
                src=f["src"],
                dst=f["dst"],
                bandwidth_mbps=f["bandwidth_mbps"],
                latency_cycles=f.get("latency_cycles", 20.0),
            )
            for f in data["flows"]
        )
        return SoCSpec(
            name=data["name"],
            cores=cores,
            flows=flows,
            vi_assignment={k: int(v) for k, v in data.get("vi_assignment", {}).items()},
        )
    except KeyError as exc:
        raise SpecError("spec dict missing field %s" % exc)


def save_spec(spec: SoCSpec, path: str) -> None:
    """Write a spec to a JSON file."""
    with open(path, "w") as f:
        json.dump(spec_to_dict(spec), f, indent=2, sort_keys=True)


def load_spec(path: str) -> SoCSpec:
    """Read a spec from a JSON file."""
    with open(path) as f:
        return spec_from_dict(json.load(f))


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------


def topology_to_dict(topology: Topology) -> Dict[str, Any]:
    """Topology (with its spec) as a JSON-compatible dict."""
    return {
        "spec": spec_to_dict(topology.spec),
        "island_freqs": {str(k): v for k, v in topology.island_freqs.items()},
        "switches": [
            {
                "id": s.id,
                "island": s.island,
                "freq_mhz": s.freq_mhz,
                "n_in": s.n_in,
                "n_out": s.n_out,
            }
            for s in sorted(topology.switches.values(), key=lambda s: s.id)
        ],
        "nis": [
            {"id": n.id, "core": n.core, "island": n.island, "freq_mhz": n.freq_mhz}
            for n in sorted(topology.nis.values(), key=lambda n: n.id)
        ],
        "core_switch": dict(topology.core_switch),
        "links": [
            {
                "id": l.id,
                "src": l.src,
                "dst": l.dst,
                "src_island": l.src_island,
                "dst_island": l.dst_island,
                "freq_mhz": l.freq_mhz,
                "capacity_mbps": l.capacity_mbps,
                "kind": l.kind,
                "length_mm": l.length_mm,
                "flows": [[list(k), bw] for k, bw in l.flows],
                "has_converter": l.has_converter,
            }
            for l in sorted(topology.links.values(), key=lambda l: l.id)
        ],
        "routes": {
            "%s->%s" % key: list(route.links)
            for key, route in sorted(topology.routes.items())
        },
    }


def topology_from_dict(data: Dict[str, Any], library: Optional[NocLibrary] = None) -> Topology:
    """Rebuild a topology (bypassing construction-time invariants —
    the data is trusted to come from :func:`topology_to_dict`)."""
    from ..arch.topology import Route  # local: avoid cycle at import time

    spec = spec_from_dict(data["spec"])
    lib = library or NocLibrary()
    freqs = {int(k): float(v) for k, v in data["island_freqs"].items()}
    topo = Topology(spec, lib, freqs)
    for s in data["switches"]:
        topo.switches[s["id"]] = Switch(
            id=s["id"],
            island=s["island"],
            freq_mhz=s["freq_mhz"],
            n_in=s["n_in"],
            n_out=s["n_out"],
        )
    for n in data["nis"]:
        topo.nis[n["id"]] = NetworkInterface(
            id=n["id"], core=n["core"], island=n["island"], freq_mhz=n["freq_mhz"]
        )
    topo.core_switch = dict(data["core_switch"])
    max_id = -1
    for l in data["links"]:
        link = Link(
            id=l["id"],
            src=l["src"],
            dst=l["dst"],
            src_island=l["src_island"],
            dst_island=l["dst_island"],
            freq_mhz=l["freq_mhz"],
            capacity_mbps=l["capacity_mbps"],
            kind=l["kind"],
            length_mm=l["length_mm"],
            flows=[((k[0], k[1]), bw) for k, bw in l["flows"]],
            has_converter=l.get("has_converter"),
        )
        topo.links[link.id] = link
        topo._links_by_pair.setdefault((link.src, link.dst), []).append(link.id)
        max_id = max(max_id, link.id)
    topo._next_link_id = max_id + 1
    for key_str, link_ids in data["routes"].items():
        src, dst = key_str.split("->")
        comps: List[str] = [topo.links[link_ids[0]].src]
        for lid in link_ids:
            comps.append(topo.links[lid].dst)
        topo.routes[(src, dst)] = Route(
            flow=(src, dst), components=tuple(comps), links=tuple(link_ids)
        )
    return topo


def save_topology(topology: Topology, path: str) -> None:
    """Write a topology (plus its spec) to a JSON file."""
    with open(path, "w") as f:
        json.dump(topology_to_dict(topology), f, indent=2, sort_keys=True)


def load_topology(path: str, library: Optional[NocLibrary] = None) -> Topology:
    """Read a topology from a JSON file."""
    with open(path) as f:
        return topology_from_dict(json.load(f), library)


# ----------------------------------------------------------------------
# Design points (summary only — topologies are exported separately)
# ----------------------------------------------------------------------


def design_point_summary(point: DesignPoint) -> Dict[str, Any]:
    """Flat JSON summary of one design point's metrics.

    Points synthesized under a co-synthesis objective
    (``SynthesisConfig(objective=...)``) additionally carry their
    objective cost vector and metrics.
    """
    out: Dict[str, Any] = {
        "label": point.label(),
        "switch_counts": {str(k): v for k, v in point.switch_counts.items()},
        "num_intermediate": point.num_intermediate_used,
        "noc_dynamic_power_mw": point.noc_power.fig2_dynamic_mw,
        "noc_total_dynamic_mw": point.noc_power.dynamic_mw,
        "noc_leakage_mw": point.noc_power.leakage_mw,
        "avg_latency_cycles": point.latency.average_cycles,
        "max_latency_cycles": point.latency.max_cycles,
        "noc_area_mm2": point.soc_power.noc_area_mm2,
        "soc_area_mm2": point.soc_power.total_area_mm2,
        "wire_length_mm": point.wires.total_length_mm,
        "latency_violations": len(point.latency.violations),
    }
    if point.objective_result is not None:
        out["objective_cost"] = list(point.objective_result.cost)
        out["objective_metrics"] = dict(point.objective_result.metrics)
    return out


# ----------------------------------------------------------------------
# Resilience
# ----------------------------------------------------------------------


def spare_plan_summary(plan) -> Dict[str, Any]:
    """Flat, deterministic JSON summary of a :class:`SparePlan`.

    Keys sort and every collection is ordered, so two allocations on
    equal topologies serialize byte-identically — the determinism pin
    the resilience bench checks with ``json.dumps(..., sort_keys=True)``.
    """
    return {
        "k": plan.k,
        "node_disjoint": plan.node_disjoint,
        "protected_flows": plan.protected_flows,
        "trivially_safe": ["%s->%s" % key for key in plan.trivially_safe],
        "unprotected": ["%s->%s" % key for key in plan.unprotected],
        "links_opened": plan.links_opened,
        "opened_links": list(plan.opened_links),
        "reserved_mbps": {
            str(lid): round(mbps, 6)
            for lid, mbps in sorted(plan.reserved_mbps.items())
        },
        "backups": {
            "%s->%s" % key: [list(route.links) for route in routes]
            for key, routes in sorted(plan.backups.items())
        },
        "backup_cycles": {
            "%s->%s" % key: list(cycles)
            for key, cycles in sorted(plan.backup_cycles.items())
        },
    }


def coverage_summary(report) -> Dict[str, Any]:
    """JSON summary of a :class:`CoverageReport` (rollup + per-scenario)."""
    out = dict(report.summary())
    out["per_scenario"] = [
        {
            "scenario": s.scenario.name,
            "kind": s.scenario.kind,
            "eligible": s.eligible,
            "covered": s.covered,
            "rerouted": s.rerouted,
            "lost": ["%s->%s" % f for f in s.lost_flows],
            "max_added_cycles": s.max_added_cycles,
        }
        for s in report.scenarios
    ]
    return out


# ----------------------------------------------------------------------
# Control plane
# ----------------------------------------------------------------------


def control_summary(report) -> Dict[str, Any]:
    """JSON summary of a controller-driven :class:`RuntimeReport`.

    Bundles the per-fault recovery timelines and the telemetry stream
    with the headline service metrics; everything is JSON-native
    (``inf`` timestamps become ``null``) and deterministically ordered,
    so ``json.dumps(..., sort_keys=True)`` of two identical replays is
    byte-identical — the pin the control-plane bench and tests check.
    """
    from ..control.telemetry import recovery_summary, telemetry_summary

    return {
        "trace": report.trace_name,
        "policy": report.policy,
        "routable": report.routable,
        "controlled": report.controlled,
        "deadlock_free": report.recoveries_deadlock_free,
        "worst_recovery_ms": round(report.worst_recovery_ms, 6),
        "lost_traffic_mbits": round(report.lost_traffic_mbits, 6),
        "fault_delta_mj": round(report.fault_delta_mj, 9),
        "fault_stall_ms": round(report.fault_stall_ms, 6),
        "recoveries": [recovery_summary(r) for r in report.recoveries],
        "telemetry": telemetry_summary(report.telemetry),
    }
