"""Plain-text and CSV tabulation for benches and the CLI.

Every experiment in :mod:`benchmarks` prints its rows through
:func:`format_table` so the output matches the paper's tables/figures
structure: one row per sweep point, named columns, fixed-width
alignment readable in a terminal log.
"""

from __future__ import annotations

import io
import csv
from typing import Any, Dict, List, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
    float_format: str = "%.2f",
) -> str:
    """Render dict-rows as an aligned fixed-width text table.

    ``columns`` fixes the column order (default: keys of the first row
    in insertion order).  Floats go through ``float_format``; other
    values through ``str``.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)\n"
    cols = list(columns) if columns else list(rows[0].keys())

    def fmt(v: Any) -> str:
        if isinstance(v, bool):
            return "yes" if v else "no"
        if isinstance(v, float):
            return float_format % v
        return str(v)

    cells = [[fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)]
    out: List[str] = []
    if title:
        out.append(title)
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(cols))
    out.append(header)
    out.append("  ".join("-" * w for w in widths))
    for row in cells:
        out.append("  ".join(row[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(out) + "\n"


def rows_to_csv(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render dict-rows as CSV text."""
    if not rows:
        return ""
    cols = list(columns) if columns else list(rows[0].keys())
    buf = io.StringIO()
    writer = csv.DictWriter(
        buf, fieldnames=cols, extrasaction="ignore", lineterminator="\n"
    )
    writer.writeheader()
    for r in rows:
        writer.writerow({c: r.get(c, "") for c in cols})
    return buf.getvalue()


def save_csv(
    rows: Sequence[Mapping[str, Any]],
    path: str,
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Write dict-rows to a CSV file."""
    with open(path, "w", newline="") as f:
        f.write(rows_to_csv(rows, columns))


def percent(x: float) -> str:
    """Format a fraction as a percentage string.

    >>> percent(0.0312)
    '3.1%'
    """
    return "%.1f%%" % (100.0 * x)
