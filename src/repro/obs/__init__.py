"""Structured observability: spans, metrics, exporters, dashboard.

The unified instrumentation layer over synthesis, the trace-replay
runtime, and the reconfiguration control plane.  It subsumes the
:mod:`repro.perf` counters (which stay as the zero-dependency hot-path
accumulator; :meth:`MetricsRegistry.absorb_perf` lifts them into the
registry) and adds what they cannot express: *where* time went
(hierarchical spans, cross-process), *how values distribute*
(histograms), and *how a run looked* (dashboard, Perfetto traces).

Determinism contract: span identity and ordering never touch the wall
clock, every exporter orders its output canonically, and timing fields
can be dropped at export (``timing=False``) — so byte-identical runs
export byte-identical event sequences, which the bench harness gates.
"""

from .dashboard import (
    cache_lines,
    counter_lines,
    island_gantt_lines,
    phase_breakdown_lines,
    recovery_timeline_lines,
    render_dashboard,
    render_html,
)
from .live import (
    LiveRenderer,
    LiveStatus,
    follow_render,
    status_lines,
)
from .export import (
    chrome_trace_events,
    chrome_trace_json,
    prometheus_text,
    span_log_lines,
    telemetry_log_lines,
    write_lines,
)
from .metrics import (
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    publish_metrics,
    record_cache_hit_rates,
    record_cache_metrics,
    record_control_metrics,
    record_runtime_metrics,
)
from .spans import (
    SpanRecord,
    SpanRecorder,
    active_tracer,
    set_tracer,
    span,
    stable_span_id,
    tracing,
)
from .stream import (
    EVENT_KINDS,
    CallbackSink,
    EventBus,
    JsonlSink,
    MemorySink,
    ObsEvent,
    active_bus,
    canonical_events,
    emit,
    event_from_record,
    event_lines,
    event_record,
    follow_events,
    read_events,
    set_bus,
    streaming,
)

__all__ = [
    "DEFAULT_MS_BUCKETS",
    "EVENT_KINDS",
    "CallbackSink",
    "Counter",
    "EventBus",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LiveRenderer",
    "LiveStatus",
    "MemorySink",
    "MetricsRegistry",
    "ObsEvent",
    "SpanRecord",
    "SpanRecorder",
    "active_bus",
    "active_tracer",
    "cache_lines",
    "canonical_events",
    "chrome_trace_events",
    "chrome_trace_json",
    "counter_lines",
    "emit",
    "event_from_record",
    "event_lines",
    "event_record",
    "follow_events",
    "follow_render",
    "island_gantt_lines",
    "phase_breakdown_lines",
    "prometheus_text",
    "publish_metrics",
    "read_events",
    "record_cache_hit_rates",
    "record_cache_metrics",
    "record_control_metrics",
    "record_runtime_metrics",
    "recovery_timeline_lines",
    "render_dashboard",
    "render_html",
    "set_bus",
    "set_tracer",
    "span",
    "span_log_lines",
    "stable_span_id",
    "status_lines",
    "streaming",
    "telemetry_log_lines",
    "tracing",
    "write_lines",
]
