"""Terminal (and static-HTML) dashboard over a traced, controlled run.

Four panels, each a pure function from observability data to lines of
text so they compose into the CLI, the example tour, and tests alike:

* :func:`phase_breakdown_lines` — flamegraph-style span tree with
  per-path call counts, total seconds and proportional bars;
* :func:`recovery_timeline_lines` — the controller's staged
  fault -> detected -> installed -> restored repair per scenario;
* :func:`island_gantt_lines` — one row per island, the trace window
  rendered as ON ``#`` / WAKING ``~`` / OFF ``.`` cells;
* :func:`counter_lines` — top-N perf counters from the metrics
  registry's compatibility shim (``perf.counters.*``).

:func:`render_dashboard` stitches the panels into one report;
:func:`render_html` wraps the same text in a minimal self-contained
page (monospace ``<pre>`` blocks, no external assets) for ``--html``.
"""

from __future__ import annotations

import html as _html
import math
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry
from .spans import SpanRecorder

#: Gantt cell glyphs per island state (ASCII so every terminal works).
_STATE_GLYPH = {"on": "#", "waking": "~", "off": "."}


def _bar(fraction: float, width: int) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


# ----------------------------------------------------------------------
# Panel 1: phase breakdown (span flamegraph, folded)
# ----------------------------------------------------------------------


def phase_breakdown_lines(
    tracer: SpanRecorder, width: int = 28, max_paths: int = 40
) -> List[str]:
    """Span totals as an indented tree with proportional time bars.

    Paths are folded (one row per distinct path, counts aggregated)
    and ordered depth-first by path so children sit under parents.
    Bars are scaled to the largest root total.
    """
    totals = tracer.totals_by_path()
    if not totals:
        return ["  (no spans recorded)"]
    scale = max(
        (t for p, (_, t) in totals.items() if "/" not in p),
        default=max(t for _, t in totals.values()),
    )
    scale = scale or 1.0
    lines = []
    shown = 0
    for path in sorted(totals):
        count, seconds = totals[path]
        if shown >= max_paths:
            lines.append("  ... %d more paths" % (len(totals) - shown))
            break
        depth = path.count("/")
        name = path.rsplit("/", 1)[-1]
        lines.append(
            "  %s%-*s %s %9.4fs x%-5d"
            % (
                "  " * depth,
                max(30 - 2 * depth, 8),
                name,
                _bar(seconds / scale, width),
                seconds,
                count,
            )
        )
        shown += 1
    return lines


# ----------------------------------------------------------------------
# Panel 2: controller recovery timeline
# ----------------------------------------------------------------------


def recovery_timeline_lines(report, width: int = 48) -> List[str]:
    """Per-fault staged-repair timelines from ``report.recoveries``.

    Each row places the stage markers ``F`` (fault raised), ``D``
    (detected), ``I`` (routing installed) and ``R`` (primaries
    restored) on a shared trace-time axis; the span between ``I`` and
    ``R`` — degraded service — is shaded ``=``.  An unrepaired fault
    runs degraded to the trace edge.
    """
    recoveries = getattr(report, "recoveries", ())
    if not recoveries:
        return ["  (no recoveries: run with a controller and fault events)"]
    total = getattr(report, "total_ms", 0.0) or max(
        (r.installed_ms for r in recoveries), default=1.0
    )

    def col(t_ms: float) -> int:
        if not math.isfinite(t_ms):
            return width - 1
        return min(int(t_ms / total * (width - 1)), width - 1)

    lines = [
        "  %-22s |%s|  detect  failover    flows"
        % ("scenario", "0 ms".ljust(width - len("%.0f ms" % total)) + "%.0f ms" % total)
    ]
    for rec in recoveries:
        axis = ["-"] * width
        i_col, r_col = col(rec.installed_ms), col(rec.restored_ms)
        for c in range(i_col, r_col + 1):
            axis[c] = "="
        axis[col(rec.fault_ms)] = "F"
        axis[col(rec.detected_ms)] = "D"
        axis[i_col] = "I"
        if math.isfinite(rec.restored_ms):
            axis[r_col] = "R"
        flows = "%d ok" % rec.recovered_flows
        if rec.lost_flows:
            flows += ", %d lost" % rec.lost_flows
        lines.append(
            "  %-22s |%s| %6.3fms %7.3fms  %s%s"
            % (
                rec.scenario[:22],
                "".join(axis),
                rec.detection_ms,
                rec.failover_ms,
                flows,
                "" if rec.deadlock_free and rec.restore_deadlock_free
                else "  [DEADLOCK AUDIT FAIL]",
            )
        )
    lines.append("  F fault  D detected  I installed  R restored  = degraded")
    return lines


# ----------------------------------------------------------------------
# Panel 3: island-state Gantt rows
# ----------------------------------------------------------------------


def island_gantt_lines(report, width: int = 60) -> List[str]:
    """One Gantt row per island from each ``IslandRuntime.timeline``.

    Cells sample the dominant state of each time bucket; islands
    without a recorded timeline fall back to a residency summary.
    """
    per_island = getattr(report, "per_island", {})
    if not per_island:
        return ["  (no islands simulated)"]
    total = getattr(report, "total_ms", 0.0)
    lines = []
    for isl in sorted(per_island):
        r = per_island[isl]
        timeline = getattr(r, "timeline", ())
        if not timeline or total <= 0:
            lines.append(
                "  island %-3d on %.1f ms / off %.1f ms / waking %.3f ms"
                % (isl, r.on_ms, r.off_ms, r.waking_ms)
            )
            continue
        cells = []
        for c in range(width):
            lo = c * total / width
            hi = (c + 1) * total / width
            best_state, best_overlap = "on", 0.0
            for iv in timeline:
                overlap = min(iv.end_ms, hi) - max(iv.start_ms, lo)
                if overlap > best_overlap:
                    best_overlap = overlap
                    best_state = str(iv.state)
            cells.append(_STATE_GLYPH.get(best_state, "?"))
        lines.append(
            "  island %-3d |%s| off %4.1f%%  %d gates"
            % (isl, "".join(cells), 100.0 * r.off_fraction, r.gate_events)
        )
    lines.append(
        "  %s on  %s waking  %s off"
        % (_STATE_GLYPH["on"], _STATE_GLYPH["waking"], _STATE_GLYPH["off"])
    )
    return lines


# ----------------------------------------------------------------------
# Panel 4: top-N counters
# ----------------------------------------------------------------------


def counter_lines(
    registry: MetricsRegistry, top: int = 10, width: int = 24
) -> List[str]:
    """The ``top`` largest unlabelled counter series, bar-scaled."""
    rows: List[Tuple[float, str]] = []
    for metric in registry:
        if metric.kind != "counter":
            continue
        for key, value in metric.samples.items():
            label = metric.name + (
                "{%s}" % ",".join("%s=%s" % kv for kv in key) if key else ""
            )
            rows.append((value, label))
    if not rows:
        return ["  (no counters recorded)"]
    rows.sort(key=lambda r: (-r[0], r[1]))
    scale = rows[0][0] or 1.0
    return [
        "  %-46s %s %14s"
        % (
            label[:46],
            _bar(value / scale, width),
            ("%.4f" % value).rstrip("0").rstrip("."),
        )
        for value, label in rows[:top]
    ]


# ----------------------------------------------------------------------
# Panel 5: cache effectiveness
# ----------------------------------------------------------------------


def cache_lines(registry: MetricsRegistry, width: int = 24) -> List[str]:
    """Per-tier cache hit rates from the ``cache.hit_rate`` gauge.

    Empty when the registry carries no hit-rate samples (no cache
    store was active), so the panel disappears rather than rendering
    zeros.  The ``overall`` row is hits over *all* lookups; tier rows
    share that denominator, so they sum to it.
    """
    gauge = registry.get("cache.hit_rate")
    if gauge is None or not gauge.samples:
        return []
    lines = []
    for key, value in sorted(gauge.samples.items()):
        tier = dict(key).get("tier", "?")
        lines.append(
            "  %-14s %s %6.1f%% hit rate"
            % (tier, _bar(value, width), 100.0 * value)
        )
    return lines


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------


def render_dashboard(
    tracer: Optional[SpanRecorder] = None,
    registry: Optional[MetricsRegistry] = None,
    report=None,
    title: str = "observability dashboard",
    top: int = 10,
) -> str:
    """Stitch the available panels into one text report.

    Panels for data that was not supplied are omitted entirely, so the
    same renderer serves a synthesis-only trace and a full controlled
    replay.
    """
    sections: List[Tuple[str, List[str]]] = []
    if tracer is not None:
        sections.append(("phase breakdown (spans)", phase_breakdown_lines(tracer)))
    if report is not None:
        sections.append(("recovery timeline", recovery_timeline_lines(report)))
        sections.append(("island states", island_gantt_lines(report)))
    if registry is not None:
        sections.append(("top counters", counter_lines(registry, top=top)))
        cache = cache_lines(registry)
        if cache:
            sections.append(("cache hit rate", cache))
    rule = "=" * 78
    out = [rule, " %s" % title, rule]
    for heading, lines in sections:
        out.append("")
        out.append("-- %s %s" % (heading, "-" * max(72 - len(heading), 0)))
        out.extend(lines)
    out.append("")
    return "\n".join(out)


def render_html(
    tracer: Optional[SpanRecorder] = None,
    registry: Optional[MetricsRegistry] = None,
    report=None,
    title: str = "observability dashboard",
    top: int = 10,
) -> str:
    """The dashboard as a self-contained static HTML page.

    Deliberately asset-free: one ``<pre>`` per panel with a dark
    monospace theme, so the file opens anywhere (CI artifacts, shared
    over plain HTTP) without a toolchain.
    """
    panels: List[Tuple[str, str]] = []
    if tracer is not None:
        panels.append(
            ("Phase breakdown", "\n".join(phase_breakdown_lines(tracer)))
        )
    if report is not None:
        panels.append(
            ("Recovery timeline", "\n".join(recovery_timeline_lines(report)))
        )
        panels.append(("Island states", "\n".join(island_gantt_lines(report))))
    if registry is not None:
        panels.append(
            ("Top counters", "\n".join(counter_lines(registry, top=top)))
        )
        cache = cache_lines(registry)
        if cache:
            panels.append(("Cache hit rate", "\n".join(cache)))
    body = "\n".join(
        "<section><h2>%s</h2><pre>%s</pre></section>"
        % (_html.escape(name), _html.escape(text))
        for name, text in panels
    )
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        "<title>%s</title>\n<style>\n"
        "body{background:#111;color:#ddd;font-family:monospace;margin:2em}\n"
        "h1{color:#fff}h2{color:#8cf;border-bottom:1px solid #333}\n"
        "pre{background:#1a1a1a;padding:1em;overflow-x:auto}\n"
        "</style></head>\n<body>\n<h1>%s</h1>\n%s\n</body></html>\n"
        % (_html.escape(title), _html.escape(title), body)
    )
