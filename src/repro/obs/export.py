"""Exporters: Chrome/Perfetto trace JSON, JSON-lines logs, Prometheus text.

Every exporter is a pure function over a finished
:class:`~repro.obs.spans.SpanRecorder` / :class:`~repro.obs.metrics.MetricsRegistry`
(or a telemetry event list) that produces deterministically ordered
output.  Wall-clock numbers are confined to fields the caller can drop
with ``timing=False``, so two byte-identical runs export byte-identical
event sequences — the property the bench harness gates on.

Formats:

* :func:`chrome_trace_events` — ``trace_event`` complete events
  (``"ph": "X"``) plus process-name metadata, loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev;
* :func:`span_log_lines` / :func:`telemetry_log_lines` — one JSON
  object per line, grep- and ``jq``-friendly;
* :func:`prometheus_text` — the Prometheus exposition text format,
  with dotted internal metric names sanitized to legal identifiers.
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from .metrics import MetricsRegistry
from .spans import SpanRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..control.telemetry import TelemetryEvent


def _dumps(obj: object) -> str:
    """Canonical single-line JSON: sorted keys, no float formatting games."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Chrome / Perfetto trace_event JSON
# ----------------------------------------------------------------------


def chrome_trace_events(
    tracer: SpanRecorder, timing: bool = True
) -> List[Dict[str, object]]:
    """Spans as ``trace_event`` dicts (complete events, ``ph="X"``).

    Each process label in the trace becomes one synthetic pid (assigned
    by sorted label, not OS pid, so the output is rerun-stable) with a
    ``process_name`` metadata event.  With ``timing=False`` the ``ts``
    and ``dur`` fields are dropped — what remains is the deterministic
    event sequence used for byte-comparison across reruns.
    """
    labels = sorted({s.process for s in tracer.spans} | set(tracer.process_meta))
    pid_of = {label: i + 1 for i, label in enumerate(labels)}
    events: List[Dict[str, object]] = []
    for label in labels:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid_of[label],
                "tid": 0,
                "args": {"name": label},
            }
        )
    for s in tracer.ordered():
        event: Dict[str, object] = {
            "ph": "X",
            "name": s.name,
            "cat": s.path.split("/", 1)[0],
            "pid": pid_of[s.process],
            "tid": 0,
            "args": dict(s.attrs, span_id=s.span_id, path=s.path, seq=s.seq),
        }
        if s.parent_id is not None:
            event["args"]["parent_id"] = s.parent_id  # type: ignore[index]
        if timing:
            event["ts"] = round(s.start_s * 1e6, 3)
            event["dur"] = round(s.duration_s * 1e6, 3)
        events.append(event)
    return events


def chrome_trace_json(tracer: SpanRecorder, timing: bool = True) -> str:
    """The full ``{"traceEvents": [...]}`` document as a JSON string."""
    return _dumps(
        {
            "traceEvents": chrome_trace_events(tracer, timing=timing),
            "displayTimeUnit": "ms",
        }
    )


# ----------------------------------------------------------------------
# JSON-lines event logs
# ----------------------------------------------------------------------


def span_log_lines(tracer: SpanRecorder, timing: bool = True) -> List[str]:
    """One JSON object per span, canonical order, ``type: "span"``."""
    lines = []
    for s in tracer.ordered():
        record: Dict[str, object] = {
            "type": "span",
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "name": s.name,
            "path": s.path,
            "seq": s.seq,
            "depth": s.depth,
            "process": s.process,
            "attrs": dict(s.attrs),
        }
        if timing:
            record["start_s"] = round(s.start_s, 6)
            record["duration_s"] = round(s.duration_s, 6)
        lines.append(_dumps(record))
    return lines


def telemetry_log_lines(events: Sequence["TelemetryEvent"]) -> List[str]:
    """Controller telemetry as JSON lines (``type: "telemetry"``).

    Each line keeps the event's own ``kind`` (``fault_raised``,
    ``routing_installed``, ...) and adds the stream discriminator
    ``type`` so span and telemetry lines can share one log file.
    Rides on :func:`~repro.control.telemetry.telemetry_summary`, which
    already sorts the stream and maps ``inf`` to ``None`` — the log is
    deterministic because the controller is.  (Imported lazily: the
    core synthesis layers import :mod:`repro.obs`, so this module must
    not pull the control plane in at import time.)
    """
    from ..control.telemetry import telemetry_summary

    return [_dumps(dict(row, type="telemetry")) for row in telemetry_summary(events)]


def write_lines(path: str, lines: Iterable[str]) -> int:
    """Write a JSON-lines file (one trailing newline per line)."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line)
            fh.write("\n")
            count += 1
    return count


# ----------------------------------------------------------------------
# Prometheus exposition text format
# ----------------------------------------------------------------------

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL = re.compile(r"[^a-zA-Z0-9_]")


def prom_name(name: str) -> str:
    """Sanitize a dotted internal name to a legal Prometheus name."""
    sanitized = _PROM_NAME.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return sanitized


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_str(labels: Sequence, extra: Optional[Sequence] = None) -> str:
    pairs = list(labels) + list(extra or ())
    if not pairs:
        return ""
    body = ",".join(
        '%s="%s"'
        % (
            _PROM_LABEL.sub("_", k),
            str(v).replace("\\", "\\\\").replace('"', '\\"'),
        )
        for k, v in pairs
    )
    return "{%s}" % body


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format.

    Histograms expand to cumulative ``_bucket`` series (with the
    implicit ``+Inf``) plus ``_sum`` and ``_count``, matching what a
    real Prometheus client library would expose.
    """
    out: List[str] = []
    for metric in registry:
        name = prom_name(metric.name)
        if metric.help:
            out.append("# HELP %s %s" % (name, metric.help))
        out.append("# TYPE %s %s" % (name, metric.kind))
        if metric.kind == "histogram":
            for key, (counts, total, n) in sorted(metric.samples.items()):
                running = 0
                for edge, c in zip(metric.buckets, counts):
                    running += c
                    out.append(
                        "%s_bucket%s %d"
                        % (name, _label_str(key, [("le", _fmt(edge))]), running)
                    )
                out.append(
                    "%s_bucket%s %d"
                    % (name, _label_str(key, [("le", "+Inf")]), n)
                )
                out.append("%s_sum%s %s" % (name, _label_str(key), _fmt(total)))
                out.append("%s_count%s %d" % (name, _label_str(key), n))
        else:
            for key, value in sorted(metric.samples.items()):
                out.append("%s%s %s" % (name, _label_str(key), _fmt(value)))
    return "\n".join(out) + ("\n" if out else "")
