"""Live terminal rendering of a streaming observability feed.

The consumer side of :mod:`repro.obs.stream`: a :class:`LiveStatus`
aggregate that folds the event stream into the numbers an operator
watches (sweep progress, feasibility, cache hit/miss deltas, per-phase
span activity, worker heartbeats), a :class:`LiveRenderer` sink that
repaints those numbers in place as events arrive, and
:func:`follow_render`, the driver behind ``repro-noc obs --follow``
that tails a JSONL feed written by another process.

Stall detection is deliberately *renderer-side*: it compares the
wall-clock **arrival** time of each process's latest event against a
threshold, so liveness judgments never enter the event stream itself —
the stream stays byte-deterministic while the view on top of it is
free to consult the clock.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, IO, List, Optional

from .stream import ObsEvent, follow_events


class LiveStatus:
    """Aggregate view of a streaming run, folded event by event.

    Every field derives from the deterministic event payloads except
    :attr:`last_seen`, which records renderer-side arrival times
    (``time.monotonic``) for stall detection only.
    """

    def __init__(self) -> None:
        self.events = 0
        self.by_kind: Dict[str, int] = {}
        self.tasks_total = 0
        self.tasks_done = 0
        self.feasible = 0
        self.design_points = 0
        self.workers = 0
        self.done = False
        self.cache_hits = 0
        self.cache_misses = 0
        #: span path -> (count, total seconds) over the whole feed.
        self.span_counts: Dict[str, int] = {}
        self.span_seconds: Dict[str, float] = {}
        self.telemetry_counts: Dict[str, int] = {}
        self.telemetry_last: Optional[str] = None
        #: process label -> wall-clock arrival time of its latest event.
        self.last_seen: Dict[str, float] = {}
        #: process label -> latest heartbeat phase (``start`` / ``end``).
        self.phase_by_process: Dict[str, str] = {}

    def apply(self, event: ObsEvent, now: Optional[float] = None) -> None:
        """Fold one event into the aggregate."""
        self.events += 1
        self.by_kind[event.kind] = self.by_kind.get(event.kind, 0) + 1
        self.last_seen[event.process] = (
            now if now is not None else time.monotonic()
        )
        attrs = event.attrs
        if event.kind == "progress":
            if event.name == "sweep.start":
                self.tasks_total = int(attrs.get("tasks", 0))  # type: ignore[arg-type]
                self.workers = int(attrs.get("workers", 0))  # type: ignore[arg-type]
            elif event.name == "sweep.task":
                self.tasks_done += 1
                if attrs.get("feasible"):
                    self.feasible += 1
                self.design_points += int(attrs.get("design_points", 0))  # type: ignore[arg-type]
                self.cache_hits += int(attrs.get("cache_hits", 0))  # type: ignore[arg-type]
                self.cache_misses += int(attrs.get("cache_misses", 0))  # type: ignore[arg-type]
            elif event.name == "sweep.done":
                self.done = True
        elif event.kind == "heartbeat":
            phase = attrs.get("phase")
            if isinstance(phase, str):
                self.phase_by_process[event.process] = phase
        elif event.kind == "span":
            self.span_counts[event.name] = self.span_counts.get(event.name, 0) + 1
            duration = event.timing.get("duration_s")
            if isinstance(duration, (int, float)):
                self.span_seconds[event.name] = (
                    self.span_seconds.get(event.name, 0.0) + float(duration)
                )
        elif event.kind == "telemetry":
            self.telemetry_counts[event.name] = (
                self.telemetry_counts.get(event.name, 0) + 1
            )
            scenario = attrs.get("scenario")
            self.telemetry_last = (
                "%s %s" % (event.name, scenario) if scenario else event.name
            )

    def stalled(
        self, threshold_s: float, now: Optional[float] = None
    ) -> List[str]:
        """Processes whose latest event arrived over ``threshold_s`` ago.

        Only processes still mid-task (no ``end`` heartbeat) count —
        a worker that finished its batch is idle, not stuck.
        """
        t = now if now is not None else time.monotonic()
        out = []
        for process in sorted(self.last_seen):
            if self.phase_by_process.get(process) == "end":
                continue
            if t - self.last_seen[process] >= threshold_s:
                out.append(process)
        return out


def status_lines(
    status: LiveStatus,
    stall_s: float = 5.0,
    top: int = 4,
    now: Optional[float] = None,
) -> List[str]:
    """Render the aggregate as the lines the live view repaints."""
    lines: List[str] = []
    total = "%d" % status.tasks_total if status.tasks_total else "?"
    head = "sweep %d/%s tasks | %d feasible | %d design points" % (
        status.tasks_done, total, status.feasible, status.design_points,
    )
    if status.workers:
        head += " | workers %d" % status.workers
    if status.done:
        head += " | done"
    lines.append(head)
    kinds = ", ".join(
        "%s %d" % (k, status.by_kind[k]) for k in sorted(status.by_kind)
    )
    line = "events %d (%s)" % (status.events, kinds or "none")
    if status.cache_hits or status.cache_misses:
        line += " | cache %d hits / %d misses" % (
            status.cache_hits, status.cache_misses,
        )
    lines.append(line)
    if status.span_counts:
        busiest = sorted(
            status.span_counts,
            key=lambda p: (-status.span_seconds.get(p, 0.0), p),
        )[:top]
        lines.append(
            "spans: " + " | ".join(
                "%s x%d %.2fs" % (
                    path,
                    status.span_counts[path],
                    status.span_seconds.get(path, 0.0),
                )
                for path in busiest
            )
        )
    if status.telemetry_counts:
        lines.append(
            "control: %d events (last: %s)" % (
                sum(status.telemetry_counts.values()),
                status.telemetry_last or "-",
            )
        )
    workers = [p for p in sorted(status.phase_by_process) if p != "main"]
    if workers:
        stalled = set(status.stalled(stall_s, now=now))
        lines.append(
            "workers: " + " | ".join(
                "%s %s%s" % (
                    p,
                    status.phase_by_process[p],
                    " STALLED" if p in stalled else "",
                )
                for p in workers
            )
        )
    return lines


class LiveRenderer:
    """Event-bus sink that repaints a status block as events arrive.

    On a TTY the block rewrites itself in place (ANSI cursor-up);
    elsewhere it prints the headline whenever the task count moves, so
    piped output stays a readable log instead of a control-code soup.
    Attach it with ``bus.add_sink(LiveRenderer())`` or pass it to
    :class:`~repro.obs.stream.EventBus` as a sink.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        interval_s: float = 0.1,
        stall_s: float = 5.0,
        top: int = 4,
    ) -> None:
        self.status = LiveStatus()
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self.stall_s = stall_s
        self.top = top
        self._painted = 0
        self._last_paint = 0.0
        self._last_logged = -1
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())

    def on_event(self, event: ObsEvent) -> None:
        self.status.apply(event)
        now = time.monotonic()
        if now - self._last_paint >= self.interval_s:
            self.paint(now=now)

    def paint(self, now: Optional[float] = None) -> None:
        """Repaint immediately (the sink normally rate-limits this)."""
        t = now if now is not None else time.monotonic()
        self._last_paint = t
        lines = status_lines(
            self.status, stall_s=self.stall_s, top=self.top, now=t
        )
        if self._tty:
            out = ""
            if self._painted:
                out += "\x1b[%dA\x1b[J" % self._painted
            out += "\n".join(lines) + "\n"
            self.stream.write(out)
            self._painted = len(lines)
        else:
            if self.status.tasks_done != self._last_logged or self.status.done:
                self.stream.write(lines[0] + "\n")
                self._last_logged = self.status.tasks_done
        try:
            self.stream.flush()
        except Exception:
            pass

    def close(self) -> None:
        """Final repaint so the last event's state is always visible."""
        self.paint()


def follow_render(
    path: str,
    stream: Optional[IO[str]] = None,
    poll_s: float = 0.2,
    idle_timeout_s: Optional[float] = 5.0,
    stall_s: float = 5.0,
    stop: Optional[Callable[[], bool]] = None,
) -> LiveStatus:
    """Tail a JSONL event feed and render it live; returns the final state.

    The driver behind ``repro-noc obs --follow``: the feed may still be
    growing (another process holds the writer), may not exist yet, or
    may end mid-line — :func:`~repro.obs.stream.follow_events` handles
    all three, and the follower exits once no new bytes arrive for
    ``idle_timeout_s`` seconds.
    """
    renderer = LiveRenderer(stream=stream, stall_s=stall_s)
    for event in follow_events(
        path, poll_s=poll_s, idle_timeout_s=idle_timeout_s, stop=stop
    ):
        renderer.on_event(event)
    renderer.close()
    return renderer.status
