"""Typed metrics registry: counters, gauges, fixed-bucket histograms.

The second leg of the observability layer: where spans answer *where
did the time go inside this run*, metrics answer *how much / how often
/ how distributed* across runs, islands and flows.  Three metric
kinds, deliberately Prometheus-shaped so the text exporter is a
straight serialization:

* **counter** — monotone accumulation (``inc``); merging sums;
* **gauge** — last-written value (``set``); merging overwrites;
* **histogram** — observations bucketed into *fixed* edges chosen at
  registration (``observe``); merging sums buckets, and two
  registries can only merge a histogram when their edges agree.

Every metric takes optional labels (``registry.counter("x").inc(1,
island=3, state="on")``); samples are keyed by the sorted label set so
snapshot order — and therefore every exported byte — is deterministic.

The legacy :class:`repro.perf.PerfRecorder` is absorbed behind a
compatibility shim (:meth:`MetricsRegistry.absorb_perf`): its counters
become ``perf.counters.<name>`` counters and its phase timers become
``perf.phase_seconds`` counters labelled by phase, so existing
consumers of ``BENCH_synthesis.json`` keep their numbers while new
consumers read one registry.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..exceptions import SpecError
from .stream import EventBus, active_bus as _active_bus

#: Label sets are stored as sorted ``(key, value)`` tuples — hashable,
#: order-free, deterministic to serialize.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default bucket edges for millisecond-scale latency histograms
#: (detection, failover, wake stalls).  A trailing +Inf bucket is
#: implicit in every histogram.
DEFAULT_MS_BUCKETS: Tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
)


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotone accumulator (float-valued so phase seconds fit too)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.samples: Dict[LabelKey, float] = {}

    def inc(self, amount: Union[int, float] = 1, **labels: object) -> None:
        if amount < 0:
            raise SpecError(
                "counter %r cannot decrease (inc %r)" % (self.name, amount)
            )
        key = _label_key(labels)
        self.samples[key] = self.samples.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self.samples.get(_label_key(labels), 0.0)


class Gauge:
    """Last-written value per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.samples: Dict[LabelKey, float] = {}

    def set(self, value: Union[int, float], **labels: object) -> None:
        self.samples[_label_key(labels)] = float(value)

    def value(self, **labels: object) -> Optional[float]:
        return self.samples.get(_label_key(labels))


class Histogram:
    """Fixed-bucket histogram (Prometheus cumulative-on-export shape).

    ``buckets`` are the finite upper edges, strictly increasing; the
    +Inf bucket is implicit.  Internally counts are stored
    *per-bucket* (not cumulative) so merging is a plain elementwise
    sum; the exporters cumulate.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_MS_BUCKETS,
        help: str = "",
    ) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise SpecError(
                "histogram %r needs strictly increasing bucket edges, got %r"
                % (name, buckets)
            )
        self.name = name
        self.help = help
        self.buckets = edges
        #: label key -> (per-bucket counts incl. +Inf, sum, count)
        self.samples: Dict[LabelKey, Tuple[List[int], float, int]] = {}

    def observe(self, value: Union[int, float], **labels: object) -> None:
        key = _label_key(labels)
        entry = self.samples.get(key)
        if entry is None:
            entry = ([0] * (len(self.buckets) + 1), 0.0, 0)
        counts, total, n = entry
        counts[bisect_left(self.buckets, float(value))] += 1
        self.samples[key] = (counts, total + float(value), n + 1)

    def count(self, **labels: object) -> int:
        entry = self.samples.get(_label_key(labels))
        return entry[2] if entry is not None else 0

    def sum(self, **labels: object) -> float:
        entry = self.samples.get(_label_key(labels))
        return entry[1] if entry is not None else 0.0


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named, typed metrics with get-or-create registration.

    Re-registering a name with the same kind returns the existing
    metric; a kind clash (or histogram edge clash) raises
    :class:`~repro.exceptions.SpecError` — silent shadowing would make
    two call sites disagree about what a series means.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, kind: str) -> Optional[Metric]:
        existing = self._metrics.get(name)
        if existing is not None and existing.kind != kind:
            raise SpecError(
                "metric %r already registered as %s, not %s"
                % (name, existing.kind, kind)
            )
        return existing

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get(name, "counter")
        if metric is None:
            metric = Counter(name, help)
            self._metrics[name] = metric
        return metric  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get(name, "gauge")
        if metric is None:
            metric = Gauge(name, help)
            self._metrics[name] = metric
        return metric  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_MS_BUCKETS,
        help: str = "",
    ) -> Histogram:
        metric = self._get(name, "histogram")
        if metric is None:
            metric = Histogram(name, buckets, help)
            self._metrics[name] = metric
        elif tuple(float(b) for b in buckets) != metric.buckets:  # type: ignore[union-attr]
            raise SpecError(
                "histogram %r already registered with edges %r"
                % (name, metric.buckets)  # type: ignore[union-attr]
            )
        return metric  # type: ignore[return-value]

    def __iter__(self):
        """Metrics in deterministic (name) order."""
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready dump, deterministically ordered."""
        out: Dict[str, object] = {}
        for metric in self:
            entry: Dict[str, object] = {"kind": metric.kind, "help": metric.help}
            if metric.kind == "histogram":
                entry["buckets"] = list(metric.buckets)  # type: ignore[union-attr]
                entry["samples"] = [
                    {
                        "labels": dict(key),
                        "bucket_counts": list(counts),
                        "sum": total,
                        "count": n,
                    }
                    for key, (counts, total, n) in sorted(metric.samples.items())
                ]
            else:
                entry["samples"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(metric.samples.items())
                ]
            out[metric.name] = entry
        return out

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram buckets sum; gauges take the incoming
        value (last write wins — the snapshot is the fresher reading).
        """
        for name in sorted(snapshot):
            entry = snapshot[name]
            kind = entry["kind"]  # type: ignore[index]
            if kind == "counter":
                metric = self.counter(name, str(entry.get("help", "")))  # type: ignore[union-attr]
                for s in entry["samples"]:  # type: ignore[index]
                    metric.inc(float(s["value"]), **s.get("labels", {}))
            elif kind == "gauge":
                metric = self.gauge(name, str(entry.get("help", "")))  # type: ignore[union-attr]
                for s in entry["samples"]:  # type: ignore[index]
                    metric.set(float(s["value"]), **s.get("labels", {}))
            elif kind == "histogram":
                metric = self.histogram(
                    name,
                    entry["buckets"],  # type: ignore[index]
                    str(entry.get("help", "")),  # type: ignore[union-attr]
                )
                for s in entry["samples"]:  # type: ignore[index]
                    key = _label_key(s.get("labels", {}))
                    incoming = (
                        list(s["bucket_counts"]),
                        float(s["sum"]),
                        int(s["count"]),
                    )
                    existing = metric.samples.get(key)
                    if existing is None:
                        metric.samples[key] = incoming
                    else:
                        counts, total, n = existing
                        metric.samples[key] = (
                            [a + b for a, b in zip(counts, incoming[0])],
                            total + incoming[1],
                            n + incoming[2],
                        )
            else:
                raise SpecError("unknown metric kind %r for %r" % (kind, name))

    # -- compatibility shim over repro.perf ----------------------------

    def absorb_perf(self, perf: object) -> None:
        """Absorb a :class:`repro.perf.PerfRecorder` (or its snapshot).

        Counters land as ``perf.counters.<name>``; phase timers as the
        ``perf.phase_seconds`` counter labelled by phase.  Idempotent
        per distinct recorder state, additive across calls — exactly
        the semantics of merging one more worker's counters.
        """
        snap = perf.snapshot() if hasattr(perf, "snapshot") else perf
        for name, value in sorted(snap.get("counters", {}).items()):  # type: ignore[union-attr]
            self.counter(
                "perf.counters.%s" % name, "synthesis hot-path counter"
            ).inc(value)
        phases = self.counter(
            "perf.phase_seconds", "cumulative synthesis phase wall-clock"
        )
        for name, seconds in sorted(snap.get("phase_seconds", {}).items()):  # type: ignore[union-attr]
            phases.inc(seconds, phase=name)


# ----------------------------------------------------------------------
# Streaming hook: publish a registry onto the event bus
# ----------------------------------------------------------------------


def publish_metrics(
    registry: MetricsRegistry, bus: Optional[EventBus] = None
) -> int:
    """Emit every sample of ``registry`` as ``metric`` events.

    The streaming analogue of :meth:`MetricsRegistry.snapshot`: one
    event per sample, in the registry's deterministic (name, label)
    order, so two identical runs publish byte-identical event
    sequences.  Uses the active bus when ``bus`` is ``None``; a no-op
    returning 0 when streaming is off.  Values are deterministic
    except ``perf.phase_seconds``-style wall-clock counters, which
    callers exclude from byte-comparisons the same way they already do
    for span durations.
    """
    target = bus if bus is not None else _active_bus()
    if target is None:
        return 0
    count = 0
    for metric in registry:
        if metric.kind == "histogram":
            for key, (counts, total, n) in sorted(metric.samples.items()):
                target.emit(
                    "metric",
                    metric.name,
                    attrs={
                        "metric_kind": metric.kind,
                        "labels": dict(key),
                        "bucket_counts": list(counts),
                        "sum": round(total, 9),
                        "count": n,
                    },
                )
                count += 1
        else:
            for key, value in sorted(metric.samples.items()):
                target.emit(
                    "metric",
                    metric.name,
                    attrs={
                        "metric_kind": metric.kind,
                        "labels": dict(key),
                        "value": round(value, 9),
                    },
                )
                count += 1
    return count


# ----------------------------------------------------------------------
# Standard metric builders over the runtime / control reports
# ----------------------------------------------------------------------


def record_runtime_metrics(registry: MetricsRegistry, report) -> None:
    """Project a :class:`~repro.runtime.report.RuntimeReport` into metrics.

    Emits the per-island ON/OFF/WAKING residency gauges, gating event
    counters, per-flow wake-stall histogram and the energy-by-source
    gauges the dashboard's top-line tiles read.
    """
    residency = registry.gauge(
        "runtime.island.residency_ms", "time per power state over the trace"
    )
    events = registry.counter(
        "runtime.island.events", "gate/wake transitions per island"
    )
    for isl in sorted(report.per_island):
        r = report.per_island[isl]
        residency.set(r.on_ms, island=isl, state="on")
        residency.set(r.off_ms, island=isl, state="off")
        residency.set(r.waking_ms, island=isl, state="waking")
        events.inc(r.gate_events, island=isl, kind="gate")
        events.inc(r.wake_events, island=isl, kind="wake")
    stalls = registry.histogram(
        "runtime.wake_stall_ms", help="worst wake stall per active flow"
    )
    for key in sorted(report.flow_stall_ms):
        stalls.observe(report.flow_stall_ms[key])
    energy = registry.gauge(
        "runtime.energy_mj", "trace energy decomposed by source"
    )
    energy.set(report.core_dynamic_mj, source="core_dynamic")
    energy.set(report.noc_traffic_mj, source="noc_traffic")
    energy.set(report.islands_on_mj, source="islands_on")
    energy.set(report.islands_off_mj, source="islands_off")
    energy.set(report.always_on_mj, source="always_on")
    energy.set(report.wake_energy_mj, source="wake_events")
    energy.set(report.fault_delta_mj, source="fault_delta")
    energy.set(report.total_mj, source="total")
    registry.gauge("runtime.stalled_ms", "island-ms waiting on wakes").set(
        report.stalled_ms
    )
    registry.counter("runtime.violations", "routability violations").inc(
        len(report.violations)
    )


def record_control_metrics(registry: MetricsRegistry, report) -> None:
    """Project the controller's recovery timelines into metrics.

    Detection / failover (recovery) latency histograms, per-action flow
    counters, lost-traffic and degraded-window gauges — empty when the
    report carries no recoveries.
    """
    detect = registry.histogram(
        "control.detection_ms", help="fault-to-observation latency"
    )
    recover = registry.histogram(
        "control.recovery_ms", help="fault-to-installed-routing latency"
    )
    flows = registry.counter("control.flow_actions", "flow fates per recovery")
    lost = registry.gauge("control.lost_traffic_mbits", "undelivered traffic")
    degraded = registry.gauge(
        "control.degraded_window_ms", "time on alternate routing"
    )
    audits = registry.counter("control.deadlock_audits", "install-time audits")
    total_lost = 0.0
    total_degraded = 0.0
    for rec in report.recoveries:
        detect.observe(rec.detection_ms, scenario=rec.scenario)
        recover.observe(rec.failover_ms, scenario=rec.scenario)
        for f in rec.flows:
            flows.inc(1, action=f.action)
        audits.inc(
            1,
            verdict="pass"
            if rec.deadlock_free and rec.restore_deadlock_free
            else "fail",
        )
        total_lost += rec.lost_traffic_mbits
        total_degraded += rec.degraded_window_ms
    lost.set(total_lost)
    degraded.set(total_degraded)


def record_cache_metrics(registry: MetricsRegistry, stats) -> None:
    """Project :class:`~repro.cache.store.CacheStats` into metrics.

    Emits the ``cache.*`` counter family the dashboard's top-counters
    panel shows: hits labeled by storage tier and entry kind, misses by
    kind, evictions, bytes moved, corruption/verification events.
    ``stats`` may be a :class:`~repro.cache.store.CacheStore`, a
    :class:`~repro.cache.store.CacheStats` or a raw counter mapping
    (a worker's shipped delta).
    """
    counters = getattr(stats, "stats", stats)
    counters = getattr(counters, "counters", counters)
    hits = registry.counter("cache.hits", "cache hits by tier and kind")
    misses = registry.counter("cache.misses", "cache misses by kind")
    evictions = registry.counter("cache.evictions", "LRU evictions by tier")
    bytes_written = registry.counter(
        "cache.bytes_written", "bytes persisted to the disk tier"
    )
    bytes_read = registry.counter("cache.bytes_read", "bytes read by tier")
    corrupt = registry.counter(
        "cache.corrupt_entries", "entries dropped as corrupt"
    )
    verify = registry.counter(
        "cache.verify", "verify_on_hit recomputes by outcome"
    )
    key_errors = registry.counter(
        "cache.key_errors", "values that refused canonicalization"
    )
    for name in sorted(counters):
        value = counters[name]
        parts = name.split(".")
        event = parts[0]
        if event == "hits" and len(parts) == 3:
            hits.inc(value, tier=parts[1], kind=parts[2])
        elif event == "misses" and len(parts) == 2:
            misses.inc(value, kind=parts[1])
        elif event == "evictions":
            evictions.inc(value, tier=parts[1] if len(parts) > 1 else "memory")
        elif event == "bytes_written":
            bytes_written.inc(value)
        elif event == "bytes_read":
            bytes_read.inc(value, tier=parts[1] if len(parts) > 1 else "disk")
        elif event == "corrupt":
            corrupt.inc(value, where=parts[1] if len(parts) > 1 else "disk")
        elif event == "verify_runs":
            verify.inc(value, outcome="run")
        elif event == "verify_mismatches":
            verify.inc(value, outcome="mismatch")
        elif event == "key_errors":
            key_errors.inc(value)
    record_cache_hit_rates(registry)


def record_cache_hit_rates(registry: MetricsRegistry) -> Dict[str, float]:
    """Derive the ``cache.hit_rate`` gauge from the raw counters.

    ``hits / (hits + misses)`` per storage tier (a miss means the
    lookup fell through *every* tier, so each tier's rate shares the
    total-lookup denominator) plus the ``overall`` rate the dashboard
    headline shows.  Recomputed from the counters' current state, so
    repeated calls — one per merged worker delta — stay correct.
    Returns the rates that were set (empty when no lookups recorded).
    """
    hits = registry.get("cache.hits")
    misses = registry.get("cache.misses")
    total_hits = sum(hits.samples.values()) if hits is not None else 0.0
    total_misses = sum(misses.samples.values()) if misses is not None else 0.0
    lookups = total_hits + total_misses
    if lookups <= 0:
        return {}
    rate = registry.gauge(
        "cache.hit_rate", "hits / (hits + misses) per storage tier"
    )
    by_tier: Dict[str, float] = {}
    if hits is not None:
        for key, value in hits.samples.items():
            tier = dict(key).get("tier", "memory")
            by_tier[tier] = by_tier.get(tier, 0.0) + value
    out: Dict[str, float] = {}
    for tier in sorted(by_tier):
        out[tier] = by_tier[tier] / lookups
        rate.set(out[tier], tier=tier)
    out["overall"] = total_hits / lookups
    rate.set(out["overall"], tier="overall")
    return out
