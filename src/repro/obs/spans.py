"""Hierarchical span tracing with near-zero disabled overhead.

The tracing analogue of :mod:`repro.perf.instrument`: a module-level
active tracer that instrumented code consults through the free
function :func:`span`.  When no tracer is installed (the default),
``span(...)`` returns a shared null context manager — no allocation,
no timer syscalls, no dict traffic — so the instrumentation can stay
in hot-adjacent paths permanently.

Determinism is a design contract, not an accident:

* span **identity** (``span_id``) derives from the span's *path* (the
  ``/``-joined names of its ancestors) and its *sequence number* (the
  start-order index within the process stream) — never from
  ``time.time()`` or object ids — so byte-identical reruns produce
  byte-identical span streams modulo the measured durations;
* spans are reported in **start order** (monotonic ``seq``), which is
  deterministic whenever the traced code is;
* wall-clock enters only through ``start_s`` / ``duration_s``, which
  the exporters can drop (``timing=False``) for byte-comparison.

Cross-process merging: a worker process records into its own
:class:`SpanRecorder` and ships :meth:`SpanRecorder.snapshot` home;
the parent folds it in with :meth:`SpanRecorder.merge` under a
distinct process label, keeping every stream's ids and ordering
intact (ids are unique per ``(process, seq)``).

Usage::

    from repro.obs import SpanRecorder, span, tracing

    with tracing() as tracer:
        with span("synthesis", spec="d26"):
            with span("allocation.vector", k_mid=1):
                ...
    print(tracer.snapshot())
"""

from __future__ import annotations

import os
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from .stream import active_bus as _active_bus

#: The installed tracer, or ``None`` (tracing disabled).
_ACTIVE: Optional["SpanRecorder"] = None


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: identity, position, timing and attributes."""

    #: Stable id: CRC-32 of ``path#seq`` — reproducible across reruns,
    #: unique within one process stream.
    span_id: str
    #: The enclosing span's id, or ``None`` for a root span.
    parent_id: Optional[str]
    #: Leaf name (``allocation.vector``).
    name: str
    #: ``/``-joined ancestry (``synthesis/allocation.vector``).
    path: str
    #: Start-order index within the process stream (monotonic).
    seq: int
    #: Nesting depth (0 for roots).
    depth: int
    #: Process label the span was recorded under (``main`` by default;
    #: merged worker streams carry the label the parent assigned).
    process: str
    #: Seconds from the recorder's timebase to span start.
    start_s: float
    #: Measured wall-clock duration in seconds.
    duration_s: float
    #: JSON-safe key/value annotations.
    attrs: Mapping[str, object] = field(default_factory=dict)


def stable_span_id(path: str, seq: int) -> str:
    """Deterministic span id from path + sequence (no wall clock)."""
    return "%08x" % zlib.crc32(("%s#%d" % (path, seq)).encode("utf-8"))


class _NullSpan:
    """Shared do-nothing context manager for the disabled case."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _OpenSpan:
    """A span between ``__enter__`` and ``__exit__``.

    Yielded by the ``with`` statement so instrumented code can attach
    result attributes before the span closes::

        with span("control.route_around", flow=str(key)) as s:
            found = ...
            if s is not None:
                s.set(found=found is not None)
    """

    __slots__ = (
        "_rec", "span_id", "parent_id", "name", "path",
        "seq", "depth", "attrs", "_start",
    )

    def __init__(self, rec: "SpanRecorder", name: str, attrs: Dict[str, object]):
        self._rec = rec
        self.name = name
        self.attrs = attrs
        parent = rec._stack[-1] if rec._stack else None
        self.parent_id = parent.span_id if parent is not None else None
        self.depth = parent.depth + 1 if parent is not None else 0
        self.path = "%s/%s" % (parent.path, name) if parent is not None else name
        self.seq = rec._seq
        rec._seq += 1
        self.span_id = stable_span_id(self.path, self.seq)
        self._start = 0.0

    def set(self, **attrs: object) -> "_OpenSpan":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_OpenSpan":
        self._rec._stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = time.perf_counter()
        rec = self._rec
        if rec._stack and rec._stack[-1] is self:
            rec._stack.pop()
        rec.spans.append(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                path=self.path,
                seq=self.seq,
                depth=self.depth,
                process=rec.process,
                start_s=self._start - rec._t0,
                duration_s=end - self._start,
                attrs=self.attrs,
            )
        )
        # Streaming hook: a finished span becomes one event on the
        # active bus.  Completion order is deterministic whenever the
        # traced code is; the wall-clock fields ride in ``timing`` so
        # ``timing=False`` exports stay byte-comparable.  The process
        # label lives on the event envelope, not the payload — the
        # parent relabels merged worker streams there.
        bus = _active_bus()
        if bus is not None:
            bus.emit(
                "span",
                self.path,
                attrs={
                    "span_id": self.span_id,
                    "parent_id": self.parent_id,
                    "name": self.name,
                    "path": self.path,
                    "span_seq": self.seq,
                    "depth": self.depth,
                    "attrs": dict(self.attrs),
                },
                timing={
                    "start_s": self._start - rec._t0,
                    "duration_s": end - self._start,
                },
            )
        return False


class SpanRecorder:
    """Accumulates a process's span stream (plus merged worker streams).

    ``spans`` holds finished spans in *completion* order; use
    :meth:`ordered` (or :meth:`snapshot`) for the canonical start-order
    view.  ``process_meta`` maps each process label present in the
    trace to the OS pid that recorded it — the cross-process merge
    check in the bench harness reads it; exporters do not.
    """

    def __init__(self, process: str = "main") -> None:
        self.process = process
        self.spans: List[SpanRecord] = []
        self.process_meta: Dict[str, int] = {process: os.getpid()}
        self._stack: List[_OpenSpan] = []
        self._seq = 0
        self._t0 = time.perf_counter()

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attrs: object) -> _OpenSpan:
        """Open a child span of whatever span is currently active."""
        return _OpenSpan(self, name, dict(attrs))

    # -- views ---------------------------------------------------------

    def ordered(self) -> List[SpanRecord]:
        """All finished spans in canonical (process, seq) order."""
        return sorted(self.spans, key=lambda s: (s.process, s.seq))

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready dump of the stream (canonical order).

        The ``pid`` field is metadata for cross-process bookkeeping;
        it never enters span identity or the exported event sequences.
        """
        return {
            "process": self.process,
            "pid": os.getpid(),
            "spans": [
                {
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    "name": s.name,
                    "path": s.path,
                    "seq": s.seq,
                    "depth": s.depth,
                    "process": s.process,
                    "start_s": s.start_s,
                    "duration_s": s.duration_s,
                    "attrs": dict(s.attrs),
                }
                for s in self.ordered()
            ],
        }

    # -- cross-process merge -------------------------------------------

    def merge(
        self, snapshot: Mapping[str, object], process: Optional[str] = None
    ) -> int:
        """Fold a worker's :meth:`snapshot` into this trace.

        ``process`` relabels the merged stream (e.g. ``task3``) so the
        parent's trace stays deterministic even though worker pids are
        not; the worker's pid is kept in :attr:`process_meta` under the
        new label.  Returns the number of spans merged.
        """
        label = process if process is not None else str(snapshot.get("process", "worker"))
        pid = snapshot.get("pid")
        if isinstance(pid, int):
            self.process_meta[label] = pid
        merged = 0
        for s in snapshot.get("spans", ()):  # type: ignore[union-attr]
            self.spans.append(
                SpanRecord(
                    span_id=str(s["span_id"]),
                    parent_id=s.get("parent_id"),
                    name=str(s["name"]),
                    path=str(s["path"]),
                    seq=int(s["seq"]),
                    depth=int(s["depth"]),
                    process=label,
                    start_s=float(s["start_s"]),
                    duration_s=float(s["duration_s"]),
                    attrs=dict(s.get("attrs", {})),
                )
            )
            merged += 1
        return merged

    # -- aggregation ---------------------------------------------------

    def totals_by_path(self) -> Dict[str, Tuple[int, float]]:
        """``path -> (count, total seconds)`` over every stream."""
        out: Dict[str, Tuple[int, float]] = {}
        for s in self.spans:
            count, total = out.get(s.path, (0, 0.0))
            out[s.path] = (count + 1, total + s.duration_s)
        return out


# ----------------------------------------------------------------------
# Module-level active tracer (the repro.perf.active_recorder pattern)
# ----------------------------------------------------------------------


def active_tracer() -> Optional[SpanRecorder]:
    """The installed tracer, or ``None`` when tracing is off."""
    return _ACTIVE


def set_tracer(tracer: Optional[SpanRecorder]) -> Optional[SpanRecorder]:
    """Install ``tracer`` globally; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextmanager
def tracing(tracer: Optional[SpanRecorder] = None) -> Iterator[SpanRecorder]:
    """Install a tracer for a ``with`` block (nests safely)."""
    t = tracer if tracer is not None else SpanRecorder()
    previous = set_tracer(t)
    try:
        yield t
    finally:
        set_tracer(previous)


def span(name: str, **attrs: object):
    """Open a span on the active tracer; a shared no-op when disabled.

    The disabled path does one global read and returns a singleton —
    cheap enough to leave in per-candidate (not per-edge) code
    permanently, mirroring :func:`repro.perf.instrument.maybe_phase`.
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)
