"""Live telemetry streaming: deterministic event bus and sinks.

The streaming leg of the observability layer.  Where
:mod:`repro.obs.spans` and :mod:`repro.obs.metrics` answer questions
about a *finished* run, the event bus carries observations out of a
*running* one — sweep progress, span completions, controller
telemetry, cache deltas — in an order an external observer can trust.

Determinism is the same contract the rest of :mod:`repro.obs` keeps:

* every event carries a **monotone per-process sequence number**
  assigned at emit time — never a wall-clock timestamp — so two
  byte-identical runs emit byte-identical event streams;
* wall-clock enters only through the optional ``t_s`` field and the
  per-event ``timing`` mapping, both of which :func:`event_record`
  drops under ``timing=False``;
* cross-process streams merge in **canonical** ``(process, seq)``
  order (:func:`canonical_events`), so a live view assembled from
  worker batches and a post-hoc export of the same run serialize
  identically.

The bus is bounded: events land in a ring buffer of fixed capacity,
and overflow is *counted, never silent* (:attr:`EventBus.dropped`,
per-kind in :attr:`EventBus.dropped_by_kind`).  Sinks observe every
event regardless of ring evictions:

* :class:`MemorySink` — bounded in-memory capture with its own drop
  accounting (the post-hoc view of a live run);
* :class:`CallbackSink` — hand each event to a callable (renderers,
  tests);
* :class:`JsonlSink` — append canonical JSON lines to a file, flushed
  per line so another process can tail it (``repro-noc obs --follow``);
  byte-deterministic under ``timing=False``.

Like the tracer and the perf recorder, a module-level active bus is
consulted through free functions (:func:`active_bus`, :func:`emit`)
so instrumented code pays one global read when streaming is off::

    from repro.obs import EventBus, MemorySink, streaming

    capture = MemorySink()
    with streaming(EventBus(sinks=[capture])) as bus:
        run_the_sweep()
    lines = event_lines(canonical_events(capture.events), timing=False)
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..exceptions import SpecError

#: Event kinds the standard emit hooks produce.  The bus accepts any
#: kind string; this tuple documents (and tests pin) the built-ins.
EVENT_KINDS: Tuple[str, ...] = (
    "span",        # a finished span (obs/spans.py close hook)
    "telemetry",   # one controller observation (control/telemetry.py)
    "metric",      # one metric sample (obs/metrics.py publish hook)
    "progress",    # sweep/task progress (core/explore.py)
    "heartbeat",   # liveness beacon from a process (pool workers)
)

#: The installed bus, or ``None`` (streaming disabled).
_ACTIVE: Optional["EventBus"] = None


@dataclass(frozen=True)
class ObsEvent:
    """One observation on the stream: identity, payload, timing.

    ``(process, seq)`` is the event's identity and canonical position;
    ``attrs`` holds only deterministic values, while wall-clock numbers
    live in ``t_s`` (seconds from the bus timebase) and ``timing``
    (named extras such as a span's ``duration_s``) so exports can drop
    them for byte-comparison.
    """

    #: Process label the event was emitted under (relabelled on merge).
    process: str
    #: Monotone emit-order index within the process stream.
    seq: int
    #: Event kind (see :data:`EVENT_KINDS`).
    kind: str
    #: Subject name: a span path, telemetry kind, metric name, ...
    name: str
    #: JSON-safe deterministic payload.
    attrs: Mapping[str, object] = field(default_factory=dict)
    #: Seconds from the emitting bus's timebase (wall clock; droppable).
    t_s: Optional[float] = None
    #: Named wall-clock extras (e.g. ``duration_s``; droppable).
    timing: Mapping[str, float] = field(default_factory=dict)


def _dumps(obj: object) -> str:
    """Canonical single-line JSON (sorted keys, minimal separators)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def event_record(event: ObsEvent, timing: bool = True) -> Dict[str, object]:
    """JSON-ready dict of one event; ``timing=False`` strips wall clock."""
    record: Dict[str, object] = {
        "type": event.kind,
        "process": event.process,
        "seq": event.seq,
        "name": event.name,
        "attrs": dict(event.attrs),
    }
    if timing:
        if event.t_s is not None:
            record["t_s"] = round(event.t_s, 6)
        if event.timing:
            record["timing"] = {
                k: round(float(v), 6) for k, v in sorted(event.timing.items())
            }
    return record


def event_from_record(record: Mapping[str, object]) -> ObsEvent:
    """Rebuild an :class:`ObsEvent` from :func:`event_record` output."""
    t_s = record.get("t_s")
    return ObsEvent(
        process=str(record.get("process", "main")),
        seq=int(record.get("seq", 0)),  # type: ignore[arg-type]
        kind=str(record.get("type", "event")),
        name=str(record.get("name", "")),
        attrs=dict(record.get("attrs", {})),  # type: ignore[arg-type]
        t_s=float(t_s) if isinstance(t_s, (int, float)) else None,
        timing=dict(record.get("timing", {})),  # type: ignore[arg-type]
    )


def event_lines(events: Iterable[ObsEvent], timing: bool = True) -> List[str]:
    """Events as canonical JSON lines (order preserved from input)."""
    return [_dumps(event_record(e, timing=timing)) for e in events]


def canonical_events(events: Iterable[ObsEvent]) -> List[ObsEvent]:
    """The canonical merged view: sorted by ``(process, seq)``.

    This is the order in which a live stream assembled from several
    process batches and a post-hoc export of the same run agree —
    within a process, ``seq`` is emit order; across processes, the
    label sorts (``main`` before ``task0`` before ``task1``...).
    """
    return sorted(events, key=lambda e: (e.process, e.seq))


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------


class MemorySink:
    """Bounded in-memory capture with explicit drop accounting.

    ``max_events=0`` means unbounded (the post-hoc capture mode the
    determinism gates use); otherwise the oldest events are evicted
    and counted in :attr:`dropped`.
    """

    def __init__(self, max_events: int = 0) -> None:
        if max_events < 0:
            raise SpecError("max_events must be >= 0, got %r" % max_events)
        self._ring: Deque[ObsEvent] = deque(
            maxlen=max_events if max_events > 0 else None
        )
        self.max_events = max_events
        self.dropped = 0

    @property
    def events(self) -> List[ObsEvent]:
        return list(self._ring)

    def on_event(self, event: ObsEvent) -> None:
        if self._ring.maxlen is not None and len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(event)

    def close(self) -> None:
        pass


class CallbackSink:
    """Forward every event to a callable (renderers, tests).

    A raising callback must not take the instrumented run down with
    it: errors are counted in :attr:`errors` and swallowed.
    """

    def __init__(self, fn: Callable[[ObsEvent], object]) -> None:
        self.fn = fn
        self.errors = 0

    def on_event(self, event: ObsEvent) -> None:
        try:
            self.fn(event)
        except Exception:
            self.errors += 1

    def close(self) -> None:
        pass


class JsonlSink:
    """Tail-able JSON-lines file sink (one event per line, line-flushed).

    Every line is flushed as it is written so another process can
    follow the file while the run is live (:func:`follow_events`).
    With ``timing=False`` the output is byte-deterministic across
    reruns of deterministic code — the property the stream bench gate
    byte-compares.
    """

    def __init__(self, path: str, timing: bool = True) -> None:
        self.path = path
        self.timing = timing
        self.lines_written = 0
        self._fh: Optional[IO[str]] = open(path, "w", encoding="utf-8")

    def on_event(self, event: ObsEvent) -> None:
        fh = self._fh
        if fh is None:
            return
        fh.write(_dumps(event_record(event, timing=self.timing)))
        fh.write("\n")
        fh.flush()
        self.lines_written += 1

    def close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()


# ----------------------------------------------------------------------
# The bus
# ----------------------------------------------------------------------


class EventBus:
    """Per-process event stream: sequence numbers, ring buffer, sinks.

    One bus per process; the parent of a worker pool folds worker
    batches in with :meth:`ingest` under deterministic ``task<i>``
    labels, preserving each stream's own sequence numbers.  The ring
    (:meth:`events`) is the bus's bounded recent-history view; sinks
    see every event exactly once, in arrival order, regardless of ring
    evictions.
    """

    def __init__(
        self,
        process: str = "main",
        max_events: int = 4096,
        sinks: Optional[Sequence[object]] = None,
    ) -> None:
        if max_events < 1:
            raise SpecError("max_events must be >= 1, got %r" % max_events)
        self.process = process
        self.max_events = max_events
        self._ring: Deque[ObsEvent] = deque(maxlen=max_events)
        self._seq = 0
        self._t0 = time.perf_counter()
        self.sinks: List[object] = list(sinks or ())
        #: Events evicted from the ring (total and per kind).  Sinks
        #: are unaffected; this counts bounded-history loss only.
        self.dropped = 0
        self.dropped_by_kind: Dict[str, int] = {}
        self._dropped_shipped = 0
        #: Events accepted (emitted + ingested), for progress feeds.
        self.emitted = 0
        #: pid metadata per process label (bookkeeping, never identity).
        self.process_meta: Dict[str, int] = {process: os.getpid()}

    # -- emit / ingest -------------------------------------------------

    def add_sink(self, sink: object) -> object:
        self.sinks.append(sink)
        return sink

    def _accept(self, event: ObsEvent) -> None:
        if len(self._ring) == self._ring.maxlen:
            evicted = self._ring[0]
            self.dropped += 1
            self.dropped_by_kind[evicted.kind] = (
                self.dropped_by_kind.get(evicted.kind, 0) + 1
            )
        self._ring.append(event)
        self.emitted += 1
        for sink in self.sinks:
            sink.on_event(event)  # type: ignore[attr-defined]

    def emit(
        self,
        kind: str,
        name: str,
        attrs: Optional[Mapping[str, object]] = None,
        timing: Optional[Mapping[str, float]] = None,
    ) -> ObsEvent:
        """Append one event to this process's stream (monotone seq)."""
        event = ObsEvent(
            process=self.process,
            seq=self._seq,
            kind=kind,
            name=name,
            attrs=dict(attrs or {}),
            t_s=time.perf_counter() - self._t0,
            timing=dict(timing or {}),
        )
        self._seq += 1
        self._accept(event)
        return event

    def ingest(
        self, snapshot: Mapping[str, object], process: Optional[str] = None
    ) -> int:
        """Fold a worker bus's :meth:`snapshot` into this stream.

        ``process`` relabels the merged batch (e.g. ``task3``) so the
        combined stream stays deterministic even though worker pids
        and scheduling are not; each event keeps its own sequence
        number, so :func:`canonical_events` restores the exact
        within-worker emit order.  Returns the number of events
        ingested.
        """
        label = process if process is not None else str(
            snapshot.get("process", "worker")
        )
        pid = snapshot.get("pid")
        if isinstance(pid, int):
            self.process_meta[label] = pid
        count = 0
        for record in snapshot.get("events", ()):  # type: ignore[union-attr]
            event = event_from_record(record)
            self._accept(
                ObsEvent(
                    process=label,
                    seq=event.seq,
                    kind=event.kind,
                    name=event.name,
                    attrs=event.attrs,
                    t_s=event.t_s,
                    timing=event.timing,
                )
            )
            count += 1
        dropped = snapshot.get("dropped")
        if isinstance(dropped, int) and dropped > 0:
            # A worker's bounded ring lost events before shipping; the
            # loss surfaces in the parent's accounting, never silently.
            self.dropped += dropped
            self.dropped_by_kind["ingested"] = (
                self.dropped_by_kind.get("ingested", 0) + dropped
            )
        return count

    # -- views ---------------------------------------------------------

    def events(self) -> List[ObsEvent]:
        """The ring's current contents, in arrival order."""
        return list(self._ring)

    def snapshot(self, timing: bool = True) -> Dict[str, object]:
        """JSON-ready dump of the ring for cross-process shipping."""
        return {
            "process": self.process,
            "pid": os.getpid(),
            "next_seq": self._seq,
            "dropped": self.dropped,
            "events": [event_record(e, timing=timing) for e in self._ring],
        }

    def drain(self) -> List[ObsEvent]:
        """Remove and return the ring's contents (drop counters stay).

        The worker-side shipping primitive: a pool worker drains its
        bus after every task so each result carries exactly that
        task's events and nothing ships twice.
        """
        out = list(self._ring)
        self._ring.clear()
        return out

    def drain_snapshot(self, timing: bool = True) -> Dict[str, object]:
        """:meth:`snapshot` of the ring, then clear it (ship-once).

        The shipped ``dropped`` field is the *delta* since the last
        drain, so a parent ingesting one batch per task never counts a
        worker's loss twice.
        """
        snap = {
            "process": self.process,
            "pid": os.getpid(),
            "next_seq": self._seq,
            "dropped": self.dropped - self._dropped_shipped,
            "events": [event_record(e, timing=timing) for e in self._ring],
        }
        self._dropped_shipped = self.dropped
        self._ring.clear()
        return snap

    def close(self) -> None:
        """Close every sink (idempotent)."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if callable(close):
                close()


# ----------------------------------------------------------------------
# Module-level active bus (the active_recorder / active_tracer pattern)
# ----------------------------------------------------------------------


def active_bus() -> Optional[EventBus]:
    """The installed bus, or ``None`` when streaming is off."""
    return _ACTIVE


def set_bus(bus: Optional[EventBus]) -> Optional[EventBus]:
    """Install ``bus`` globally; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = bus
    return previous


@contextmanager
def streaming(bus: Optional[EventBus] = None) -> Iterator[EventBus]:
    """Install a bus for a ``with`` block (nests safely)."""
    b = bus if bus is not None else EventBus()
    previous = set_bus(b)
    try:
        yield b
    finally:
        set_bus(previous)
        b.close()


def emit(
    kind: str,
    name: str,
    attrs: Optional[Mapping[str, object]] = None,
    timing: Optional[Mapping[str, float]] = None,
) -> Optional[ObsEvent]:
    """Emit on the active bus; a no-op returning ``None`` when off.

    The disabled path is one global read — cheap enough for the same
    hot-adjacent placement rules as :func:`repro.obs.spans.span`.
    """
    bus = _ACTIVE
    if bus is None:
        return None
    return bus.emit(kind, name, attrs=attrs, timing=timing)


# ----------------------------------------------------------------------
# Reading a feed back: whole files and live tails
# ----------------------------------------------------------------------


def read_events(path: str) -> List[ObsEvent]:
    """Parse a JSONL event feed; a trailing partial line is ignored.

    Mid-write feeds are normal (the writer flushes per line but the
    reader can race the final line), so an unterminated or undecodable
    *last* line is skipped silently; a corrupt line elsewhere raises
    :class:`~repro.exceptions.SpecError`.
    """
    events: List[ObsEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        raw = fh.read()
    lines = raw.split("\n")
    complete, tail = lines[:-1], lines[-1]
    for i, line in enumerate(complete):
        if not line.strip():
            continue
        try:
            events.append(event_from_record(json.loads(line)))
        except (ValueError, TypeError):
            raise SpecError(
                "corrupt event line %d in %s: %r" % (i + 1, path, line[:80])
            )
    if tail.strip():
        # Unterminated final line: the writer is (or was) mid-write.
        try:
            events.append(event_from_record(json.loads(tail)))
        except (ValueError, TypeError):
            pass
    return events


def follow_events(
    path: str,
    poll_s: float = 0.2,
    idle_timeout_s: Optional[float] = 5.0,
    stop: Optional[Callable[[], bool]] = None,
) -> Iterator[ObsEvent]:
    """Tail a JSONL event feed from another (possibly live) process.

    Yields events as complete lines appear, buffering partial writes
    until their terminating newline arrives — a half-written line is
    *held*, never mis-parsed or dropped.  Stops when ``stop()`` goes
    true or no new bytes arrive for ``idle_timeout_s`` seconds
    (``None`` follows forever).  The file may not exist yet; the
    follower waits for it under the same idle budget.
    """
    buffer = ""
    offset = 0
    last_data = time.monotonic()
    while True:
        if stop is not None and stop():
            return
        try:
            with open(path, "rb") as fh:
                fh.seek(offset)
                raw = fh.read()
        except OSError:
            raw = b""
        if raw:
            offset += len(raw)
            chunk = raw.decode("utf-8", errors="replace")
            buffer += chunk
            last_data = time.monotonic()
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                if not line.strip():
                    continue
                try:
                    yield event_from_record(json.loads(line))
                except (ValueError, TypeError):
                    # A corrupt interior line in a live feed: skip it
                    # rather than kill the follower mid-run.
                    continue
            continue
        if (
            idle_timeout_s is not None
            and time.monotonic() - last_data >= idle_timeout_s
        ):
            return
        time.sleep(poll_s)
