"""Performance instrumentation for the synthesis engine.

Counters and phase timers threaded through the hot path (path
allocation, partitioning, evaluation) with near-zero overhead when
disabled.  ``scripts/run_benchmarks.py`` uses this to emit the
machine-readable ``BENCH_synthesis.json`` perf record; see
``docs/performance.md`` for how to read it.
"""

from .instrument import (
    PerfRecorder,
    active_recorder,
    maybe_phase,
    recording,
    set_recorder,
)

__all__ = [
    "PerfRecorder",
    "active_recorder",
    "maybe_phase",
    "recording",
    "set_recorder",
]
