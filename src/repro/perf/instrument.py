"""Lightweight synthesis instrumentation: counters and phase timers.

The synthesis hot path (Dijkstra pops, edge-cost evaluations, link
opens, cache hits) is far too hot for per-event callbacks, so the
design is pull-based and nearly free when disabled:

* hot loops accumulate plain local integers and flush them *once* per
  allocation attempt via :meth:`PerfRecorder.count`;
* coarse stages wrap themselves in :meth:`PerfRecorder.phase` timers;
* when no recorder is installed (the default), the module-level
  :func:`active_recorder` returns ``None`` and instrumented code skips
  the flush entirely — zero dict traffic, zero timer syscalls.

Usage::

    from repro.perf import PerfRecorder, recording

    rec = PerfRecorder()
    with recording(rec):
        synthesize(spec)
    print(rec.snapshot())
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: The installed recorder, or ``None`` (instrumentation disabled).
_ACTIVE: Optional["PerfRecorder"] = None


class PerfRecorder:
    """Accumulates named event counters and named phase wall-clocks.

    Counters are plain integer sums; phases are cumulative seconds (a
    phase entered N times accumulates N intervals, so per-candidate
    stages like ``allocation`` report their total share of the run).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.phase_seconds: Dict[str, float] = {}

    # -- counters ------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created on first use)."""
        self.counters[name] = self.counters.get(name, 0) + n

    # -- phase timers --------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block and add it to phase ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + time.perf_counter() - t0
            )

    # -- reporting -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view (JSON-ready) of everything recorded."""
        return {
            "counters": dict(self.counters),
            "phase_seconds": {k: round(v, 6) for k, v in self.phase_seconds.items()},
        }

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold another recorder's :meth:`snapshot` into this one.

        Counters and phase seconds both sum — the semantics of merging
        one more worker process's share of the run.  This is how
        parallel :class:`~repro.core.explore.ExplorationEngine` sweeps
        ship child-process counters back to the parent recorder.
        """
        for name, value in snapshot.get("counters", {}).items():  # type: ignore[union-attr]
            self.count(name, int(value))
        for name, seconds in snapshot.get("phase_seconds", {}).items():  # type: ignore[union-attr]
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + float(seconds)
            )

    def reset(self) -> None:
        """Clear all counters and timers."""
        self.counters.clear()
        self.phase_seconds.clear()


def active_recorder() -> Optional[PerfRecorder]:
    """The installed recorder, or ``None`` when instrumentation is off."""
    return _ACTIVE


def set_recorder(recorder: Optional[PerfRecorder]) -> Optional[PerfRecorder]:
    """Install ``recorder`` globally; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    return previous


@contextmanager
def recording(recorder: Optional[PerfRecorder] = None) -> Iterator[PerfRecorder]:
    """Install a recorder for the duration of a ``with`` block.

    Yields the recorder (a fresh one when none is given) and restores
    the previously installed recorder on exit, so scopes nest safely.
    """
    rec = recorder if recorder is not None else PerfRecorder()
    previous = set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)


@contextmanager
def maybe_phase(name: str) -> Iterator[None]:
    """Phase-time a block against the active recorder, if any."""
    rec = _ACTIVE
    if rec is None:
        yield
    else:
        with rec.phase(name):
            yield
