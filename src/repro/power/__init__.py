"""Power, area and timing models.

Modules: the 65nm component library (`library`), NoC power rollup
(`noc_power`), SoC totals (`soc_power`), island shutdown analysis
(`leakage`), gating event economics (`gating`) and per-island voltage
scaling (`voltage`).
"""
