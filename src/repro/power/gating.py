"""Power-gating event economics: wake-up cost and break-even time.

The paper delegates the *mechanics* of shutdown to the power-gating
literature ([5]-[8]): sleep transistors between the island's logic and
the real rails, isolation cells on its outputs, state retention or
re-initialization on wake-up.  Those mechanics make gating a *decision*
rather than a free win — switching an island off and on costs energy
(draining and recharging the virtual rail and the local clock tree) and
time (rail ramp plus converter/NI re-synchronization).

This module prices that decision:

* :func:`island_gating_cost` — the energy and latency of one off/on
  cycle of an island, derived from the island's gated capacitance
  (approximated through its leakage and area) and the technology
  constants in :class:`GatingModel`;
* :func:`break_even_time_ms` — the minimum idle duration for which
  gating saves net energy ("don't gate for a 10 µs pause");
* :func:`gating_schedule_savings` — given a use-case residency profile
  and a mode-switch rate, the net savings including event overheads —
  a refinement of :func:`repro.power.leakage.analyze_shutdown`, which
  assumes long residencies.

All constants are exposed for ablation, like the rest of the library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..arch.topology import Topology
from ..exceptions import SpecError
from ..power.leakage import ShutdownReport
from ..sim.scenarios import UseCase


@dataclass(frozen=True)
class GatingModel:
    """Technology constants of the power-gating machinery (65 nm)."""

    #: Energy to drain + recharge the island's virtual rail per mm^2 of
    #: gated silicon (switched capacitance scales with area).
    rail_cycle_energy_nj_per_mm2: float = 18.0
    #: Fixed controller/sequencer energy per gating event.
    event_energy_nj: float = 4.0
    #: Rail ramp time per mm^2 (sleep transistors are sized ~ area).
    wakeup_us_per_mm2: float = 1.6
    #: Fixed re-synchronization time (clock ungating, NI/converter
    #: handshake) per wake-up.
    wakeup_fixed_us: float = 3.0
    #: Residual leakage of a gated island as a fraction of its powered
    #: leakage (sleep transistors leak a little too).
    residual_leakage_fraction: float = 0.04

    def __post_init__(self) -> None:
        if not 0.0 <= self.residual_leakage_fraction < 1.0:
            raise SpecError("residual leakage fraction must be in [0, 1)")


@dataclass(frozen=True)
class GatingCost:
    """Cost of one off/on cycle of one island."""

    island: int
    gated_area_mm2: float
    #: Leakage eliminated while gated (powered leakage minus residual).
    leakage_saved_mw: float
    #: Energy burned by one off+on event.
    event_energy_nj: float
    #: Time from wake request to the island being usable.
    wakeup_latency_us: float


def island_gated_area_mm2(topology: Topology, island: int) -> float:
    """Silicon area switched off when ``island`` gates.

    Cores assigned to the island plus its NoC components (switches and
    the island-side NIs).
    """
    spec = topology.spec
    lib = topology.library
    if island not in spec.islands:
        raise SpecError("unknown island %r" % island)
    area = sum(spec.core(c).area_mm2 for c in spec.cores_in_island(island))
    for sw in topology.island_switches(island):
        area += lib.switch_area_mm2(max(sw.n_in, 1), max(sw.n_out, 1))
    for ni in topology.nis.values():
        if ni.island == island:
            area += lib.ni_area_mm2
    return area


def island_powered_leakage_mw(topology: Topology, island: int) -> float:
    """Leakage of the island (cores + its NoC share) when powered."""
    spec = topology.spec
    lib = topology.library
    leak = sum(spec.core(c).leakage_power_mw for c in spec.cores_in_island(island))
    for sw in topology.island_switches(island):
        leak += lib.switch_leakage_mw(max(sw.n_in, 1), max(sw.n_out, 1))
    for ni in topology.nis.values():
        if ni.island == island:
            leak += lib.ni_leakage_mw()
    return leak


def island_gating_cost(
    topology: Topology, island: int, model: Optional[GatingModel] = None
) -> GatingCost:
    """Price one gating cycle of ``island``."""
    m = model or GatingModel()
    area = island_gated_area_mm2(topology, island)
    leak = island_powered_leakage_mw(topology, island)
    saved = leak * (1.0 - m.residual_leakage_fraction)
    energy = m.event_energy_nj + m.rail_cycle_energy_nj_per_mm2 * area
    latency = m.wakeup_fixed_us + m.wakeup_us_per_mm2 * area
    return GatingCost(
        island=island,
        gated_area_mm2=area,
        leakage_saved_mw=saved,
        event_energy_nj=energy,
        wakeup_latency_us=latency,
    )


def break_even_time_ms(cost: GatingCost) -> float:
    """Idle duration above which gating the island saves net energy.

    Gating saves ``leakage_saved_mw`` for the idle duration ``t`` but
    spends ``event_energy_nj`` per cycle::

        t_be = E_event / P_saved

    >>> c = GatingCost(0, 1.0, leakage_saved_mw=10.0,
    ...                event_energy_nj=20.0, wakeup_latency_us=5.0)
    >>> break_even_time_ms(c)
    0.002
    """
    if cost.leakage_saved_mw <= 0:
        return math.inf
    # nJ / mW = microseconds; convert to ms.
    return cost.event_energy_nj / cost.leakage_saved_mw / 1000.0


@dataclass(frozen=True)
class ScheduleSavings:
    """Net savings of a gating schedule over a scenario mix."""

    #: mW saved ignoring event overheads (long-residency limit).
    ideal_savings_mw: float
    #: mW burned by gating events at the given mode-switch rate.
    event_overhead_mw: float

    @property
    def net_savings_mw(self) -> float:
        return max(0.0, self.ideal_savings_mw - self.event_overhead_mw)

    @property
    def overhead_fraction(self) -> float:
        """Share of ideal savings eaten by event costs."""
        if self.ideal_savings_mw <= 0:
            return 0.0
        return min(1.0, self.event_overhead_mw / self.ideal_savings_mw)


def gating_schedule_savings(
    topology: Topology,
    reports: Sequence[ShutdownReport],
    use_cases: Sequence[UseCase],
    mode_switches_per_second: float = 10.0,
    model: Optional[GatingModel] = None,
) -> ScheduleSavings:
    """Net savings of island gating over a use-case mix.

    ``reports`` are per-use-case :class:`ShutdownReport` s (from
    :func:`repro.power.leakage.analyze_shutdown`); the event overhead
    assumes each mode switch re-gates the islands whose state differs
    between consecutive modes — approximated as every gated island
    cycling once per mode switch, which upper-bounds the overhead.
    """
    if mode_switches_per_second < 0:
        raise SpecError("mode switch rate must be >= 0")
    m = model or GatingModel()
    fractions = {u.name: u.time_fraction for u in use_cases}
    total_w = sum(fractions.get(r.use_case, 0.0) for r in reports)
    ideal = 0.0
    event_nj_per_s = 0.0
    for r in reports:
        w = fractions.get(r.use_case, 0.0) / total_w if total_w > 0 else 1.0 / len(reports)
        ideal += w * r.savings_mw
        for isl in r.gated_islands:
            cost = island_gating_cost(topology, isl, m)
            event_nj_per_s += w * mode_switches_per_second * cost.event_energy_nj
    # nJ/s = 1e-9 W = 1e-6 mW.
    return ScheduleSavings(
        ideal_savings_mw=ideal,
        event_overhead_mw=event_nj_per_s * 1e-6,
    )
