"""Island shutdown analysis: what power gating actually saves.

This module closes the paper's argument: the VI-aware NoC costs a few
percent of dynamic power (Figure 2, overhead table), but *because* its
topology never routes third-party traffic through a gateable island,
whole islands can be shut down in partial use cases — eliminating their
core **and** NoC leakage, plus the idle (clock) power of everything in
them.  "In many SoCs, the shutdown of cores can lead to ... even 25% or
more reduction in overall system power" (Section 5).

An island is gateable in a use case when

1. none of its cores is active, and
2. no active flow routes through any of its switches.

Condition 2 holds *by construction* for topologies from
:mod:`repro.core.synthesis`; for arbitrary topologies (e.g. the
VI-oblivious baseline) it fails, which is exactly the paper's
motivation — see :mod:`repro.baseline.checker`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..arch.topology import INTERMEDIATE_ISLAND, Topology
from ..arch.validate import audit_shutdown_safety
from ..sim.scenarios import UseCase
from .noc_power import NocPower, compute_noc_power


@dataclass(frozen=True)
class ShutdownReport:
    """Power accounting of one use case on one topology, in mW."""

    use_case: str
    #: Islands actually gated (idle and not blocked by routed traffic).
    gated_islands: Tuple[int, ...]
    #: Idle islands that could NOT be gated because active traffic
    #: routes through their switches (always empty for synthesized
    #: VI-aware topologies).
    blocked_islands: Tuple[int, ...]
    #: Total power without any gating (all islands on, active traffic).
    power_no_gating_mw: float
    #: Total power with idle islands gated.
    power_gated_mw: float

    @property
    def savings_mw(self) -> float:
        return self.power_no_gating_mw - self.power_gated_mw

    @property
    def savings_fraction(self) -> float:
        """Fractional total-power reduction from shutdown."""
        if self.power_no_gating_mw <= 0:
            return 0.0
        return self.savings_mw / self.power_no_gating_mw


def statically_pinned_islands(topology: Topology) -> Set[int]:
    """Islands that can never be guaranteed gateable, by construction.

    An island hosting a switch that carries any third-party flow is
    *statically pinned*: the power controller cannot gate it without
    route analysis of the momentary traffic, which no sign-off flow
    accepts ("such methods do not guarantee the availability of paths
    when elements are shutdown", Section 2).  VI-aware synthesis yields
    an empty set; the VI-oblivious baseline does not.
    """
    return {v.island for v in audit_shutdown_safety(topology)}


def blocked_idle_islands(
    topology: Topology, use_case: UseCase, policy: str = "static"
) -> Tuple[List[int], List[int]]:
    """Split a use case's idle islands into (gateable, blocked).

    ``policy="static"`` (default, the paper's design-time guarantee):
    an idle island is blocked when it is statically pinned — some flow
    in the application routes through its switches, so the island can
    never be certified safe to gate.

    ``policy="dynamic"`` (optimistic upper bound): an idle island is
    blocked only when a *currently active* flow routes through it.
    """
    spec = topology.spec
    idle = set(use_case.idle_islands(spec))
    if policy == "static":
        pinned = statically_pinned_islands(topology)
        blocked = idle & pinned
    elif policy == "dynamic":
        blocked = set()
        active_keys = {f.key for f in use_case.active_flows(spec)}
        for key in active_keys:
            if key not in topology.routes:
                continue
            for isl in topology.islands_touched(key):
                if isl in idle:
                    blocked.add(isl)
    else:
        raise ValueError("policy must be 'static' or 'dynamic', got %r" % policy)
    gateable = sorted(idle - blocked)
    return gateable, sorted(blocked)


def analyze_shutdown(
    topology: Topology,
    use_case: UseCase,
    use_lengths: bool = True,
    gating_overhead_fraction: float = 0.01,
    policy: str = "static",
) -> ShutdownReport:
    """Compute the power saved by gating idle islands in a use case.

    ``gating_overhead_fraction`` models the sleep-transistor and
    isolation-cell overhead on the *remaining* powered logic (power
    gating is not free [6]); it inflates the gated-mode power slightly.
    ``policy`` selects the gateability rule (see
    :func:`blocked_idle_islands`).
    """
    use_case.validate_against(topology.spec)
    spec = topology.spec
    active_flow_keys = [f.key for f in use_case.active_flows(spec)]
    gateable, blocked = blocked_idle_islands(topology, use_case, policy)

    # --- no gating: every island powered, active cores run ------------
    noc_all_on = compute_noc_power(
        topology, active_flows=active_flow_keys, use_lengths=use_lengths
    )
    core_dyn = sum(
        spec.core(c).dynamic_power_mw for c in use_case.active_cores
    )
    core_leak_all = spec.total_core_leakage_power_mw
    no_gating = core_dyn + core_leak_all + noc_all_on.dynamic_mw + noc_all_on.leakage_mw

    # --- gated: idle unblocked islands powered off ---------------------
    powered = set(topology.island_freqs.keys()) - set(gateable)
    noc_gated = compute_noc_power(
        topology,
        active_flows=active_flow_keys,
        powered_islands=powered,
        use_lengths=use_lengths,
    )
    core_leak_gated = sum(
        spec.core(c).leakage_power_mw
        for c in spec.core_names
        if spec.island_of(c) not in gateable
    )
    gated = core_dyn + core_leak_gated + noc_gated.dynamic_mw + noc_gated.leakage_mw
    gated *= 1.0 + gating_overhead_fraction

    return ShutdownReport(
        use_case=use_case.name,
        gated_islands=tuple(gateable),
        blocked_islands=tuple(blocked),
        power_no_gating_mw=no_gating,
        power_gated_mw=min(gated, no_gating),
    )


def weighted_savings_fraction(
    reports: Sequence[ShutdownReport], use_cases: Sequence[UseCase]
) -> float:
    """Time-weighted average savings over a scenario set."""
    if not reports:
        return 0.0
    fractions = {u.name: u.time_fraction for u in use_cases}
    total_w = sum(fractions.get(r.use_case, 0.0) for r in reports)
    if total_w <= 0:
        return sum(r.savings_fraction for r in reports) / len(reports)
    return (
        sum(r.savings_fraction * fractions.get(r.use_case, 0.0) for r in reports)
        / total_w
    )
