"""65 nm NoC component library: power, area and timing models.

The paper evaluates with "power, area and latency models for the NoC
components based on the architecture from [25]" (xpipesLite) "built for
the 65nm technology node", extended "with models for the bi-synchronous
voltage and frequency converters".  The original library is post-layout
and proprietary; this module substitutes analytic models whose constants
are calibrated to the published DAC-era figures:

* a 32-bit 5x5 xpipesLite switch closes timing around 0.9 GHz at 65 nm
  and spends roughly 0.2 pJ per bit switched;
* global wires cost about 0.4 pJ/bit/mm with repeaters;
* a bi-synchronous FIFO crossing costs 4 cycles of latency (Section 5)
  plus level-shifter energy;
* crossbar critical path grows with port count, so the maximum feasible
  switch size shrinks as the target frequency rises (Section 4, step 1).

Only the *monotone shape* of these curves feeds the synthesis
algorithm — power grows with ports, frequency and traffic; fmax falls
with size — so the reproduction preserves the paper's qualitative
results even where absolute numbers differ from silicon.

All model parameters live in :class:`NocLibrary` as plain dataclass
fields, making ablations ("what if links were twice as expensive?") a
one-line change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .. import units


@dataclass(frozen=True)
class NocLibrary:
    """Technology library describing NoC building blocks at 65 nm.

    The default values are the calibrated 65 nm set used by every
    benchmark in this repository.  Instances are immutable; derive
    variants with :func:`dataclasses.replace`.
    """

    #: Link data width in bits (the paper fixes it; Section 4 step 1).
    data_width_bits: int = 32

    # -- crossbar timing ------------------------------------------------
    #: Achievable frequency of a minimal (2-port) switch.
    switch_fmax_base_mhz: float = 1000.0
    #: Frequency lost per additional port on the critical path.
    switch_fmax_slope_mhz_per_port: float = 28.0
    #: Hard floor under which no switch is usable.
    switch_fmax_floor_mhz: float = 90.0

    # -- dynamic energy (pJ/bit of payload moved) -----------------------
    #: Fixed part of the switch traversal energy.
    switch_ebit_base_pj: float = 0.082
    #: Port-count-dependent part (bigger crossbars burn more per bit).
    switch_ebit_per_port_pj: float = 0.0115
    #: Network interface traversal energy (packetization + clock conv).
    ni_ebit_pj: float = 0.19
    #: Wire energy per bit per millimetre (repeatered global wire).
    link_ebit_per_mm_pj: float = 0.18
    #: Bi-synchronous FIFO + level shifter crossing energy.
    fifo_ebit_pj: float = 0.28

    # -- idle (clock-tree + control) dynamic power ----------------------
    # Idle power scales with the clock frequency and the component size;
    # this is what lets low-frequency islands save power relative to the
    # single-island reference (Figure 2, communication-based curve).
    #: mW per MHz per switch port.
    switch_idle_mw_per_mhz_per_port: float = 0.00085
    #: mW per MHz per switch, fixed part.
    switch_idle_mw_per_mhz_base: float = 0.0030
    #: mW per MHz per network interface.
    ni_idle_mw_per_mhz: float = 0.0025
    #: mW per MHz per bi-synchronous FIFO (both clock domains).
    fifo_idle_mw_per_mhz: float = 0.0011

    # -- leakage (mW, always-on unless the island is gated) -------------
    switch_leak_mw_base: float = 0.045
    switch_leak_mw_per_port: float = 0.028
    switch_leak_mw_per_crosspoint: float = 0.0042
    ni_leak_mw: float = 0.065
    fifo_leak_mw: float = 0.052
    link_leak_mw_per_mm: float = 0.011

    # -- area (mm^2) -----------------------------------------------------
    switch_area_mm2_base: float = 0.0046
    switch_area_mm2_per_port: float = 0.0019
    switch_area_mm2_per_crosspoint: float = 0.00078
    ni_area_mm2: float = 0.0125
    fifo_area_mm2: float = 0.006

    # -- latency (cycles / wire speed) -----------------------------------
    #: Cycles to traverse one switch (input buffering + crossbar).
    switch_traversal_cycles: int = 1
    #: Cycles on an intra-island, length-feasible link.
    link_traversal_cycles: int = 1
    #: Bi-synchronous FIFO crossing penalty (Section 5: "a 4 cycle
    #: delay is incurred on the voltage-frequency converters").
    fifo_crossing_cycles: int = 4
    #: Signal velocity on repeatered wire, mm per ns.
    wire_speed_mm_per_ns: float = 1.6

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def switch_fmax_mhz(self, size: int) -> float:
        """Maximum clock of a switch with ``size`` ports per direction.

        ``size`` is max(inputs, outputs); the crossbar critical path
        grows with the wider side.  Monotone non-increasing in ``size``.
        """
        if size < 1:
            raise ValueError("switch size must be >= 1, got %r" % size)
        f = self.switch_fmax_base_mhz - self.switch_fmax_slope_mhz_per_port * max(0, size - 2)
        return max(self.switch_fmax_floor_mhz, f)

    def max_switch_size_for_freq(self, freq_mhz: float) -> int:
        """Largest switch size that still closes timing at ``freq_mhz``.

        This is ``max_sw_size_j`` of Algorithm 1 (step 1).  Always at
        least 2 — a one-core island still needs a functioning 2-port
        switch; frequencies above what a 2-port switch sustains raise
        ``ValueError`` because the spec is physically infeasible at the
        chosen link width.
        """
        if freq_mhz <= 0:
            raise ValueError("frequency must be positive, got %r" % freq_mhz)
        if self.switch_fmax_mhz(2) < freq_mhz:
            raise ValueError(
                "no switch closes timing at %.1f MHz (2-port fmax %.1f MHz); "
                "increase the link data width" % (freq_mhz, self.switch_fmax_mhz(2))
            )
        size = 2
        while self.switch_fmax_mhz(size + 1) >= freq_mhz:
            size += 1
        return size

    def wire_length_per_cycle_mm(self, freq_mhz: float) -> float:
        """Wire distance coverable in one clock cycle at ``freq_mhz``."""
        if freq_mhz <= 0:
            raise ValueError("frequency must be positive, got %r" % freq_mhz)
        period_ns = 1000.0 / freq_mhz
        return self.wire_speed_mm_per_ns * period_ns

    def link_cycles(self, length_mm: float, freq_mhz: float) -> int:
        """Cycles to traverse a link of ``length_mm`` at ``freq_mhz``.

        The paper uses unpipelined links; a link longer than one cycle
        of wire reach would need pipelining, which we model as extra
        cycles (and which :mod:`repro.floorplan.wires` reports).
        """
        if length_mm < 0:
            raise ValueError("length must be >= 0, got %r" % length_mm)
        if length_mm == 0.0:
            return self.link_traversal_cycles
        reach = self.wire_length_per_cycle_mm(freq_mhz)
        return max(self.link_traversal_cycles, int(math.ceil(length_mm / reach)))

    # ------------------------------------------------------------------
    # Dynamic energy / power
    # ------------------------------------------------------------------

    def switch_ebit_pj(self, n_in: int, n_out: int) -> float:
        """Energy per payload bit through a switch with given ports."""
        self._check_ports(n_in, n_out)
        return self.switch_ebit_base_pj + self.switch_ebit_per_port_pj * (n_in + n_out)

    def link_ebit_pj(self, length_mm: float) -> float:
        """Energy per payload bit over ``length_mm`` of wire."""
        if length_mm < 0:
            raise ValueError("length must be >= 0, got %r" % length_mm)
        return self.link_ebit_per_mm_pj * length_mm

    def switch_idle_power_mw(self, n_in: int, n_out: int, freq_mhz: float) -> float:
        """Clock-tree + control power of an idle switch."""
        self._check_ports(n_in, n_out)
        if freq_mhz < 0:
            raise ValueError("frequency must be >= 0, got %r" % freq_mhz)
        per_port = self.switch_idle_mw_per_mhz_per_port * (n_in + n_out)
        return (self.switch_idle_mw_per_mhz_base + per_port) * freq_mhz

    def ni_idle_power_mw(self, freq_mhz: float) -> float:
        """Clock power of an idle network interface."""
        if freq_mhz < 0:
            raise ValueError("frequency must be >= 0, got %r" % freq_mhz)
        return self.ni_idle_mw_per_mhz * freq_mhz

    def fifo_idle_power_mw(self, freq_a_mhz: float, freq_b_mhz: float) -> float:
        """Clock power of an idle bi-synchronous FIFO (both domains)."""
        if freq_a_mhz < 0 or freq_b_mhz < 0:
            raise ValueError("frequencies must be >= 0")
        return self.fifo_idle_mw_per_mhz * (freq_a_mhz + freq_b_mhz) / 2.0 * 2.0

    # ------------------------------------------------------------------
    # Leakage
    # ------------------------------------------------------------------

    def switch_leakage_mw(self, n_in: int, n_out: int) -> float:
        """Leakage of a powered switch."""
        self._check_ports(n_in, n_out)
        return (
            self.switch_leak_mw_base
            + self.switch_leak_mw_per_port * (n_in + n_out)
            + self.switch_leak_mw_per_crosspoint * n_in * n_out
        )

    def ni_leakage_mw(self) -> float:
        """Leakage of a powered network interface."""
        return self.ni_leak_mw

    def fifo_leakage_mw(self) -> float:
        """Leakage of a powered bi-synchronous FIFO."""
        return self.fifo_leak_mw

    def link_leakage_mw(self, length_mm: float) -> float:
        """Repeater leakage of a link of ``length_mm``."""
        if length_mm < 0:
            raise ValueError("length must be >= 0, got %r" % length_mm)
        return self.link_leak_mw_per_mm * length_mm

    # ------------------------------------------------------------------
    # Area
    # ------------------------------------------------------------------

    def switch_area_mm2(self, n_in: int, n_out: int) -> float:
        """Silicon area of a switch (buffers + crossbar + arbiter)."""
        self._check_ports(n_in, n_out)
        return (
            self.switch_area_mm2_base
            + self.switch_area_mm2_per_port * (n_in + n_out)
            + self.switch_area_mm2_per_crosspoint * n_in * n_out
        )

    def ni_area_mm2_(self) -> float:
        """Area of one network interface."""
        return self.ni_area_mm2

    def fifo_area_mm2_(self) -> float:
        """Area of one bi-synchronous FIFO."""
        return self.fifo_area_mm2

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def link_capacity_mbps(self, freq_mhz: float) -> float:
        """Capacity of a link clocked at ``freq_mhz`` with library width."""
        return units.link_capacity_mbps(self.data_width_bits, freq_mhz)

    def required_freq_mhz(self, bandwidth_mbps: float) -> float:
        """Clock needed to carry ``bandwidth_mbps`` at library width."""
        return units.required_freq_mhz(bandwidth_mbps, self.data_width_bits)

    @staticmethod
    def _check_ports(n_in: int, n_out: int) -> None:
        if n_in < 1 or n_out < 1:
            raise ValueError(
                "switch needs at least one input and one output, got %dx%d" % (n_in, n_out)
            )


#: Shared default library instance used across benchmarks and examples.
DEFAULT_LIBRARY = NocLibrary()
