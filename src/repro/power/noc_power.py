"""NoC power aggregation for a synthesized (and placed) topology.

Two power classes:

* **dynamic** — clock/idle power of every powered component (scales
  with island frequency and component size) plus traffic power (energy
  per bit times routed bandwidth, walking each flow's route through
  NIs, switches, wires and converters);
* **leakage** — always-on component leakage, the part island shutdown
  eliminates.

Figure 2 plots the NoC dynamic power "on switches, links and the
synchronizers" — NIs are excluded there because every design point has
exactly one NI per core, so they cancel; :meth:`NocPower.fig2_dynamic_mw`
reproduces that metric while the full breakdown keeps NI numbers for
the SoC-level overhead accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

from .. import units
from ..arch.topology import INTERMEDIATE_ISLAND, FlowKey, Topology


@dataclass(frozen=True)
class NocPower:
    """Power breakdown of one topology, all figures in mW."""

    switch_idle_mw: float
    switch_traffic_mw: float
    ni_idle_mw: float
    ni_traffic_mw: float
    link_traffic_mw: float
    fifo_idle_mw: float
    fifo_traffic_mw: float
    leakage_mw: float
    #: Dynamic power grouped by island id (incl. INTERMEDIATE_ISLAND).
    dynamic_by_island: Mapping[int, float]
    #: Leakage grouped by island id.
    leakage_by_island: Mapping[int, float]

    @property
    def dynamic_mw(self) -> float:
        """Total NoC dynamic power, NIs included."""
        return (
            self.switch_idle_mw
            + self.switch_traffic_mw
            + self.ni_idle_mw
            + self.ni_traffic_mw
            + self.link_traffic_mw
            + self.fifo_idle_mw
            + self.fifo_traffic_mw
        )

    @property
    def fig2_dynamic_mw(self) -> float:
        """Figure 2's metric: switches + links + synchronizers."""
        return (
            self.switch_idle_mw
            + self.switch_traffic_mw
            + self.link_traffic_mw
            + self.fifo_idle_mw
            + self.fifo_traffic_mw
        )

    @property
    def total_mw(self) -> float:
        """Dynamic plus leakage."""
        return self.dynamic_mw + self.leakage_mw


def compute_noc_power(
    topology: Topology,
    active_flows: Optional[Iterable[FlowKey]] = None,
    powered_islands: Optional[Set[int]] = None,
    use_lengths: bool = True,
) -> NocPower:
    """Aggregate the power of a topology.

    Parameters
    ----------
    topology:
        The synthesized NoC; if the floorplanner ran, link lengths feed
        the wire energy model (``use_lengths=True``).
    active_flows:
        Restrict traffic power to these flows (used by the shutdown
        analysis); ``None`` means all routed flows.
    powered_islands:
        Islands whose components are powered; gated islands contribute
        neither idle nor leakage power.  ``None`` means all islands
        (including the intermediate island) are on.
    use_lengths:
        Use placed wire lengths for link energy; otherwise wire energy
        is skipped (pre-floorplan estimate).
    """
    lib = topology.library
    spec = topology.spec
    routes = topology.routes
    switches = topology.switches
    links = topology.links
    if active_flows is None:
        active = sorted(routes.keys())
    else:
        active = [k for k in sorted(set(active_flows)) if k in routes]
    all_islands = set(topology.island_freqs.keys())
    powered = all_islands if powered_islands is None else set(powered_islands)

    dyn_by_island: Dict[int, float] = {isl: 0.0 for isl in all_islands}
    leak_by_island: Dict[int, float] = {isl: 0.0 for isl in all_islands}

    switch_idle = ni_idle = fifo_idle = 0.0
    leakage = 0.0

    # Per-call memos for the pure library terms: port shapes and island
    # frequencies repeat across components, so the library arithmetic
    # runs once per distinct input instead of once per component.  The
    # memoized values are the exact floats the direct calls return, so
    # every accumulation below is bit-identical to the unmemoized loop.
    sw_power_memo: Dict[Tuple[int, int, float], Tuple[float, float]] = {}
    for sw in switches.values():
        if sw.island not in powered:
            continue
        shape = (sw.n_in, sw.n_out, sw.freq_mhz)
        cached = sw_power_memo.get(shape)
        if cached is None:
            n_in, n_out = max(sw.n_in, 1), max(sw.n_out, 1)
            cached = (
                lib.switch_idle_power_mw(n_in, n_out, sw.freq_mhz),
                lib.switch_leakage_mw(n_in, n_out),
            )
            sw_power_memo[shape] = cached
        idle, leak = cached
        switch_idle += idle
        dyn_by_island[sw.island] += idle
        leakage += leak
        leak_by_island[sw.island] += leak

    ni_leak = lib.ni_leakage_mw()
    ni_idle_memo: Dict[float, float] = {}
    for ni in topology.nis.values():
        if ni.island not in powered:
            continue
        idle = ni_idle_memo.get(ni.freq_mhz)
        if idle is None:
            idle = lib.ni_idle_power_mw(ni.freq_mhz)
            ni_idle_memo[ni.freq_mhz] = idle
        ni_idle += idle
        dyn_by_island[ni.island] += idle
        leakage += ni_leak
        leak_by_island[ni.island] += ni_leak

    island_freqs = topology.island_freqs
    fifo_leak = lib.fifo_leakage_mw()
    fifo_idle_memo: Dict[Tuple[float, float], float] = {}
    link_leak_memo: Dict[float, float] = {}
    for link in links.values():
        src_isl = link.src_island
        dst_isl = link.dst_island
        src_on = src_isl in powered
        dst_on = dst_isl in powered
        if link.converter and src_on and dst_on:
            fpair = (island_freqs[src_isl], island_freqs[dst_isl])
            idle = fifo_idle_memo.get(fpair)
            if idle is None:
                idle = lib.fifo_idle_power_mw(fpair[0], fpair[1])
                fifo_idle_memo[fpair] = idle
            fifo_idle += idle
            dyn_by_island[dst_isl] += idle
            leakage += fifo_leak
            leak_by_island[dst_isl] += fifo_leak
        if src_on and dst_on and link.kind == "sw2sw":
            length = link.length_mm if use_lengths else 0.0
            leak = link_leak_memo.get(length)
            if leak is None:
                leak = lib.link_leakage_mw(length)
                link_leak_memo[length] = leak
            leakage += leak
            leak_by_island[src_isl] += leak

    switch_traffic = ni_traffic = link_traffic = fifo_traffic = 0.0
    # Traffic memos: switch crossbars repeat the same port shapes and
    # every flow over a link sees the same wire energy.  The inlined
    # ``units.traffic_power_mw`` formula keeps the exact accumulation
    # order (bits/s first, then energy, then the mW factor).
    sw_ebit_memo: Dict[Tuple[int, int], float] = {}
    link_info_memo: Dict[int, Tuple[float, bool, int, int]] = {}
    ni_ebit2 = 2.0 * lib.ni_ebit_pj
    fifo_ebit = lib.fifo_ebit_pj
    to_mw = units.PJ_PER_BIT_TIMES_BITS_PER_S_TO_MW
    bits_factor = units.MEGA * units.BITS_PER_BYTE
    flow_of = spec.flow
    island_of = spec.island_of
    for key in active:
        flow = flow_of(*key)
        bw = flow.bandwidth_mbps
        bits_per_s = bw * bits_factor
        route = routes[key]
        # NI energy at both ends.
        p = bits_per_s * ni_ebit2 * to_mw
        ni_traffic += p
        dyn_by_island[island_of(flow.src)] += p / 2.0
        dyn_by_island[island_of(flow.dst)] += p / 2.0
        for comp in route.components[1:-1]:
            sw = switches[comp]
            shape = (sw.n_in, sw.n_out)
            ebit = sw_ebit_memo.get(shape)
            if ebit is None:
                ebit = lib.switch_ebit_pj(max(sw.n_in, 1), max(sw.n_out, 1))
                sw_ebit_memo[shape] = ebit
            p = bits_per_s * ebit * to_mw
            switch_traffic += p
            dyn_by_island[sw.island] += p
        for lid in route.links:
            info = link_info_memo.get(lid)
            if info is None:
                link = links[lid]
                info = (
                    lib.link_ebit_pj(link.length_mm if use_lengths else 0.0),
                    link.converter,
                    link.src_island,
                    link.dst_island,
                )
                link_info_memo[lid] = info
            p = bits_per_s * info[0] * to_mw
            link_traffic += p
            dyn_by_island[info[2]] += p
            if info[1]:
                p = bits_per_s * fifo_ebit * to_mw
                fifo_traffic += p
                dyn_by_island[info[3]] += p

    return NocPower(
        switch_idle_mw=switch_idle,
        switch_traffic_mw=switch_traffic,
        ni_idle_mw=ni_idle,
        ni_traffic_mw=ni_traffic,
        link_traffic_mw=link_traffic,
        fifo_idle_mw=fifo_idle,
        fifo_traffic_mw=fifo_traffic,
        leakage_mw=leakage,
        dynamic_by_island=dyn_by_island,
        leakage_by_island=leak_by_island,
    )


def route_traffic_power_mw(
    topology: Topology,
    bandwidth_mbps: float,
    links: Iterable[int],
    use_lengths: bool = True,
    include_ni: bool = False,
) -> float:
    """Traffic power of one flow over an explicit link path.

    The per-route slice of :func:`compute_noc_power`'s traffic terms —
    switch crossbars (each switch charged once, as the receiver of its
    incoming link), wire energy per link, converter energy on
    island-crossing links, and optionally the two NI endpoints.  The
    runtime fault injection uses the difference between a backup and a
    primary route to integrate degraded-mode energy, so the accounting
    here must mirror ``compute_noc_power`` term for term.
    """
    lib = topology.library
    power = 0.0
    for lid in links:
        link = topology.links[lid]
        ebit = lib.link_ebit_pj(link.length_mm if use_lengths else 0.0)
        power += units.traffic_power_mw(bandwidth_mbps, ebit)
        if link.converter:
            power += units.traffic_power_mw(bandwidth_mbps, lib.fifo_ebit_pj)
        sw = topology.switches.get(link.dst)
        if sw is not None:
            power += units.traffic_power_mw(
                bandwidth_mbps, lib.switch_ebit_pj(max(sw.n_in, 1), max(sw.n_out, 1))
            )
    if include_ni:
        power += units.traffic_power_mw(bandwidth_mbps, 2.0 * lib.ni_ebit_pj)
    return power


def noc_area_mm2(topology: Topology) -> float:
    """Total silicon area of the NoC components (switches, NIs, FIFOs)."""
    lib = topology.library
    area = sum(
        lib.switch_area_mm2(max(s.n_in, 1), max(s.n_out, 1))
        for s in topology.switches.values()
    )
    area += len(topology.nis) * lib.ni_area_mm2
    area += topology.num_converters() * lib.fifo_area_mm2
    return area
