"""SoC-level power and area accounting.

The paper's headline overhead numbers (Section 5) compare the
VI-shutdown-capable NoC against the system: "a 3% overhead on the total
system's dynamic power" and "less than 0.5% increase in the total SoC
area".  This module rolls cores and NoC together so those ratios can be
reproduced on any benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..arch.topology import Topology
from ..core.spec import SoCSpec
from .noc_power import NocPower, compute_noc_power, noc_area_mm2


@dataclass(frozen=True)
class SocPower:
    """System totals in mW / mm^2 with the NoC share broken out."""

    core_dynamic_mw: float
    core_leakage_mw: float
    noc_dynamic_mw: float
    noc_leakage_mw: float
    core_area_mm2: float
    noc_area_mm2: float

    @property
    def total_dynamic_mw(self) -> float:
        return self.core_dynamic_mw + self.noc_dynamic_mw

    @property
    def total_leakage_mw(self) -> float:
        return self.core_leakage_mw + self.noc_leakage_mw

    @property
    def total_mw(self) -> float:
        return self.total_dynamic_mw + self.total_leakage_mw

    @property
    def total_area_mm2(self) -> float:
        return self.core_area_mm2 + self.noc_area_mm2

    @property
    def noc_dynamic_fraction(self) -> float:
        """NoC share of the SoC dynamic power (the 3% claim's basis)."""
        if self.total_dynamic_mw <= 0:
            return 0.0
        return self.noc_dynamic_mw / self.total_dynamic_mw

    @property
    def noc_area_fraction(self) -> float:
        """NoC share of the SoC area (the 0.5% claim's basis)."""
        if self.total_area_mm2 <= 0:
            return 0.0
        return self.noc_area_mm2 / self.total_area_mm2


def compute_soc_power(
    topology: Topology,
    noc_power: Optional[NocPower] = None,
    use_lengths: bool = True,
) -> SocPower:
    """System power/area rollup for a topology and its spec."""
    spec = topology.spec
    noc = noc_power if noc_power is not None else compute_noc_power(
        topology, use_lengths=use_lengths
    )
    return SocPower(
        core_dynamic_mw=spec.total_core_dynamic_power_mw,
        core_leakage_mw=spec.total_core_leakage_power_mw,
        noc_dynamic_mw=noc.dynamic_mw,
        noc_leakage_mw=noc.leakage_mw,
        core_area_mm2=spec.total_core_area_mm2,
        noc_area_mm2=noc_area_mm2(topology),
    )


def dynamic_overhead_fraction(candidate: SocPower, reference: SocPower) -> float:
    """Relative SoC dynamic-power overhead of ``candidate`` vs ``reference``.

    This is the paper's 3%-average metric: how much more dynamic power
    the whole system burns because the NoC supports island shutdown,
    compared to the same system with the reference (single-island) NoC.
    """
    if reference.total_dynamic_mw <= 0:
        return 0.0
    return (
        candidate.total_dynamic_mw - reference.total_dynamic_mw
    ) / reference.total_dynamic_mw


def area_overhead_fraction(candidate: SocPower, reference: SocPower) -> float:
    """Relative SoC area overhead of ``candidate`` vs ``reference``."""
    if reference.total_area_mm2 <= 0:
        return 0.0
    return (
        candidate.total_area_mm2 - reference.total_area_mm2
    ) / reference.total_area_mm2
