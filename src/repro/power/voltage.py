"""Per-island voltage assignment and voltage-aware power scaling.

The paper fixes one voltage per island as an *input* ("cores in a VI
have the same operating voltage") and reports power at the library's
nominal corner.  A natural extension — explored by Leung & Tsui [19]
for NoCs with VIs — is to let each island run at the *lowest voltage
its clock frequency permits*: dynamic power scales as ``V^2`` and
leakage roughly as ``V^3`` at constant temperature, so slow islands
get cheaper still.

This module implements that refinement on top of any synthesized
topology:

* :class:`VoltageTable` — the discrete voltage/frequency corners the
  process supports (default: a 65 nm-plausible 0.9/1.0/1.1/1.2 V
  ladder);
* :func:`assign_island_voltages` — lowest feasible corner per island;
* :func:`voltage_aware_noc_power` — re-scale a topology's NoC power
  breakdown by its islands' voltage corners.

It composes with, and does not alter, the baseline nominal-voltage
results used for the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..arch.topology import INTERMEDIATE_ISLAND, Topology
from ..exceptions import SpecError
from .noc_power import NocPower, compute_noc_power


@dataclass(frozen=True)
class VoltageCorner:
    """One supported (voltage, max frequency) operating point."""

    vdd: float
    max_freq_mhz: float

    def __post_init__(self) -> None:
        if self.vdd <= 0 or self.max_freq_mhz <= 0:
            raise SpecError("voltage corner must have positive vdd and fmax")


@dataclass(frozen=True)
class VoltageTable:
    """The discrete voltage ladder of the process.

    ``nominal_vdd`` is the corner the component library was
    characterized at; scaling factors are relative to it.  The default
    ladder is a plausible 65 nm set: timing closes at the library's
    full speed only at 1.2 V, with progressively slower corners below.
    """

    corners: Tuple[VoltageCorner, ...] = (
        VoltageCorner(0.9, 260.0),
        VoltageCorner(1.0, 420.0),
        VoltageCorner(1.1, 650.0),
        VoltageCorner(1.2, 1000.0),
    )
    nominal_vdd: float = 1.2
    #: Leakage scaling exponent (DIBL + subthreshold, empirical ~3).
    leakage_exponent: float = 3.0

    def __post_init__(self) -> None:
        if not self.corners:
            raise SpecError("voltage table needs at least one corner")
        freqs = [c.max_freq_mhz for c in self.corners]
        vdds = [c.vdd for c in self.corners]
        if sorted(freqs) != freqs or sorted(vdds) != vdds:
            raise SpecError("corners must be sorted by (vdd, fmax) ascending")

    def corner_for_freq(self, freq_mhz: float) -> VoltageCorner:
        """Lowest corner whose ``max_freq_mhz`` covers ``freq_mhz``."""
        for corner in self.corners:
            if corner.max_freq_mhz >= freq_mhz - 1e-9:
                return corner
        raise SpecError(
            "no voltage corner sustains %.0f MHz (ladder tops out at %.0f)"
            % (freq_mhz, self.corners[-1].max_freq_mhz)
        )

    def dynamic_scale(self, vdd: float) -> float:
        """Dynamic power multiplier at ``vdd`` vs nominal (V^2 law)."""
        return (vdd / self.nominal_vdd) ** 2

    def leakage_scale(self, vdd: float) -> float:
        """Leakage multiplier at ``vdd`` vs nominal (~V^3 law)."""
        return (vdd / self.nominal_vdd) ** self.leakage_exponent


def assign_island_voltages(
    topology: Topology, table: Optional[VoltageTable] = None
) -> Dict[int, VoltageCorner]:
    """Lowest feasible voltage corner per island of a topology.

    The island clock was fixed by synthesis (worst NI link bandwidth);
    the island then runs at the lowest rung of the ladder that still
    closes timing at that clock.
    """
    t = table or VoltageTable()
    return {
        isl: t.corner_for_freq(freq) for isl, freq in topology.island_freqs.items()
    }


@dataclass(frozen=True)
class VoltageAwarePower:
    """NoC power after per-island voltage scaling."""

    nominal: NocPower
    corners: Mapping[int, VoltageCorner]
    dynamic_mw: float
    leakage_mw: float
    dynamic_by_island: Mapping[int, float]

    @property
    def dynamic_savings_fraction(self) -> float:
        """Dynamic power saved vs the nominal-voltage accounting."""
        if self.nominal.dynamic_mw <= 0:
            return 0.0
        return 1.0 - self.dynamic_mw / self.nominal.dynamic_mw


def voltage_aware_noc_power(
    topology: Topology,
    table: Optional[VoltageTable] = None,
    use_lengths: bool = True,
) -> VoltageAwarePower:
    """Re-scale the NoC power breakdown by island voltage corners.

    Each island's dynamic share scales with its corner's ``V^2`` and
    its leakage share with ``V^3``.  Cross-island converters sit at the
    receiving island, which is where :func:`compute_noc_power` already
    books them.
    """
    t = table or VoltageTable()
    nominal = compute_noc_power(topology, use_lengths=use_lengths)
    corners = assign_island_voltages(topology, t)
    dyn_total = 0.0
    dyn_by_isl: Dict[int, float] = {}
    for isl, mw in nominal.dynamic_by_island.items():
        scale = t.dynamic_scale(corners[isl].vdd)
        dyn_by_isl[isl] = mw * scale
        dyn_total += mw * scale
    leak_total = 0.0
    for isl, mw in nominal.leakage_by_island.items():
        leak_total += mw * t.leakage_scale(corners[isl].vdd)
    return VoltageAwarePower(
        nominal=nominal,
        corners=corners,
        dynamic_mw=dyn_total,
        leakage_mw=leak_total,
        dynamic_by_island=dyn_by_isl,
    )
