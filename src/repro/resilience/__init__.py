"""Resilience: fault models, spare paths and failure-aware degradation.

The paper's central trick — routing every flow so it never transits a
third-party voltage island — makes a *planned* shutdown survivable; an
*unplanned* link or switch failure is the same routing problem without
the planning.  This package unifies both failure kinds:

``faults``
    Deterministic failure-scenario enumeration (single/double link,
    switch, whole-island) plus :class:`FaultEvent` for runtime
    injection.
``spare_paths``
    k-edge-disjoint backup-route allocation on the synthesis engine's
    int-indexed Dijkstra — backups honor the VI shutdown-safety rule,
    reserve cold-standby bandwidth, and are costed as measured
    power/wire/area overhead (:func:`protect_design_point`).
``coverage``
    Per-scenario flow-fate analysis (survive / reroute / lose), the
    degraded-routing deadlock audit, and :class:`ResilienceObjective`
    for the unified objective registry.

See ``docs/resilience.md`` for the full semantics and the
coverage-vs-overhead numbers pinned in
``benchmarks/bench_resilience.py``.
"""

from .coverage import (
    ENDPOINT_LOST,
    LOST,
    REROUTED,
    UNAFFECTED,
    CoverageReport,
    FlowImpact,
    ResilienceObjective,
    ScenarioCoverage,
    analyze_coverage,
    analyze_model,
    degraded_routes,
)
from .faults import (
    FAULT_MODEL_NAMES,
    FaultEvent,
    FaultScenario,
    FitRates,
    double_link_failures,
    endpoint_failed,
    enumerate_scenarios,
    island_failures,
    route_affected,
    route_survives,
    single_link_failures,
    switch_failures,
)
from .spare_paths import (
    ProtectionResult,
    SparePathConfig,
    SparePlan,
    allocate_spare_paths,
    protect_design_point,
)

__all__ = [
    "CoverageReport",
    "ENDPOINT_LOST",
    "FAULT_MODEL_NAMES",
    "FaultEvent",
    "FaultScenario",
    "FitRates",
    "FlowImpact",
    "LOST",
    "ProtectionResult",
    "REROUTED",
    "ResilienceObjective",
    "ScenarioCoverage",
    "SparePathConfig",
    "SparePlan",
    "UNAFFECTED",
    "allocate_spare_paths",
    "analyze_coverage",
    "analyze_model",
    "degraded_routes",
    "double_link_failures",
    "endpoint_failed",
    "enumerate_scenarios",
    "island_failures",
    "protect_design_point",
    "route_affected",
    "route_survives",
    "single_link_failures",
    "switch_failures",
]
