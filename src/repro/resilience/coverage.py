"""Per-scenario flow-coverage analysis and the resilience objective.

Given a (possibly spare-protected) topology and a set of fault
scenarios, classify every routed flow per scenario:

``unaffected``
    The primary route uses no failed component.
``rerouted``
    The primary is hit, but one of the flow's backup routes
    (:class:`~repro.resilience.spare_paths.SparePlan`) survives; the
    analysis records which backup and the added zero-load latency of
    the failover.
``lost``
    Primary and every backup are hit — the flow is down until repair.
``endpoint_lost``
    The flow's source or destination attachment itself failed; no
    routing can save it, so it is excluded from the scenario's
    eligible set (coverage measures what *routing* can recover).

Coverage numbers aggregate over (flow, scenario) pairs;
``worst_scenario_coverage`` is the sound bite ("100% of flows survive
every single link failure").  :func:`degraded_routes` materializes the
post-failure routing of a scenario so the channel-dependency deadlock
check (:func:`repro.arch.routing.is_deadlock_free` with ``routes=``)
and any downstream analysis can audit it.

:class:`ResilienceObjective` plugs the whole pipeline into the PR-4
objective registry: points whose protected coverage misses the target
are vetoed, surviving points are ranked by the base objective first
and the spare-capacity overhead (power, wire, extra links)
lexicographically after it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..arch.topology import FlowKey, Route, Topology
from ..core.objective import Objective, ObjectiveResult, StaticPowerObjective
from ..exceptions import SpecError
from .faults import (
    FAULT_MODEL_NAMES,
    FaultScenario,
    FitRates,
    endpoint_failed,
    enumerate_scenarios,
    route_affected,
)
from .spare_paths import (
    SparePathConfig,
    SparePlan,
    protect_design_point,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.design_point import DesignPoint

#: Flow fates, in severity order.
UNAFFECTED = "unaffected"
REROUTED = "rerouted"
LOST = "lost"
ENDPOINT_LOST = "endpoint_lost"


@dataclass(frozen=True)
class FlowImpact:
    """One flow's fate under one fault scenario."""

    flow: FlowKey
    fate: str
    #: Index into the flow's backup tuple when ``fate == REROUTED``.
    backup_index: int = -1
    primary_cycles: int = 0
    degraded_cycles: int = 0

    @property
    def covered(self) -> bool:
        return self.fate in (UNAFFECTED, REROUTED)

    @property
    def added_cycles(self) -> int:
        """Extra zero-load latency the failover costs (0 if unaffected)."""
        if self.fate != REROUTED:
            return 0
        return self.degraded_cycles - self.primary_cycles


@dataclass(frozen=True)
class ScenarioCoverage:
    """All flow fates under one scenario."""

    scenario: FaultScenario
    impacts: Tuple[FlowImpact, ...]

    @property
    def eligible(self) -> int:
        """Flows a routing answer could save (endpoint losses excluded)."""
        return sum(1 for i in self.impacts if i.fate != ENDPOINT_LOST)

    @property
    def covered(self) -> int:
        return sum(1 for i in self.impacts if i.covered)

    @property
    def coverage(self) -> float:
        """Covered fraction of eligible flows (1.0 when none eligible)."""
        n = self.eligible
        return self.covered / n if n else 1.0

    @property
    def rerouted(self) -> int:
        return sum(1 for i in self.impacts if i.fate == REROUTED)

    @property
    def lost_flows(self) -> Tuple[FlowKey, ...]:
        return tuple(i.flow for i in self.impacts if i.fate == LOST)

    @property
    def max_added_cycles(self) -> int:
        return max((i.added_cycles for i in self.impacts), default=0)

    @property
    def down_fraction(self) -> float:
        """Fraction of *all* routed flows down while this fault is live.

        Unlike :attr:`coverage`, endpoint losses count as down: the
        availability metric measures delivered service, and a flow whose
        endpoint died is just as unreachable as an unroutable one.
        """
        if not self.impacts:
            return 0.0
        down = sum(
            1 for i in self.impacts if i.fate in (LOST, ENDPOINT_LOST)
        )
        return down / len(self.impacts)


@dataclass(frozen=True)
class CoverageReport:
    """Coverage of one topology (+ spare plan) over a scenario set."""

    fault_model: str
    scenarios: Tuple[ScenarioCoverage, ...]

    @property
    def num_scenarios(self) -> int:
        return len(self.scenarios)

    @property
    def coverage(self) -> float:
        """Covered fraction over all eligible (flow, scenario) pairs."""
        eligible = sum(s.eligible for s in self.scenarios)
        covered = sum(s.covered for s in self.scenarios)
        return covered / eligible if eligible else 1.0

    @property
    def worst_scenario_coverage(self) -> float:
        return min((s.coverage for s in self.scenarios), default=1.0)

    @property
    def full_coverage(self) -> bool:
        """True when every eligible flow survives every scenario."""
        return all(s.coverage >= 1.0 for s in self.scenarios)

    @property
    def uncovered_flows(self) -> Tuple[FlowKey, ...]:
        """Flows lost in at least one scenario, sorted."""
        out = set()
        for s in self.scenarios:
            out.update(s.lost_flows)
        return tuple(sorted(out))

    @property
    def max_added_cycles(self) -> int:
        """Worst failover latency penalty over every scenario."""
        return max((s.max_added_cycles for s in self.scenarios), default=0)

    @property
    def has_fit(self) -> bool:
        """True when the scenarios carry FIT annotations (``rates=``)."""
        return any(s.scenario.fit > 0.0 for s in self.scenarios)

    def expected_availability(self, repair_hours: float = 8.0) -> float:
        """Steady-state expected flow availability under the FIT model.

        Each scenario is unavailable for ``fit x 1e-9 x repair_hours``
        of the time (rate x MTTR, the standard steady-state
        approximation for FIT-scale rates) and takes
        :attr:`ScenarioCoverage.down_fraction` of the flows with it
        while live.  Availability is 1 minus the rate-weighted sum —
        scenarios the spare plan fully covers contribute nothing, which
        is exactly the availability argument for paying the spare
        overhead.  Requires FIT-annotated scenarios (see
        :class:`~repro.resilience.faults.FitRates`); returns 1.0 when
        none are annotated.
        """
        if repair_hours <= 0:
            raise SpecError(
                "repair_hours must be > 0, got %r" % repair_hours
            )
        loss = sum(
            s.scenario.fit * 1e-9 * repair_hours * s.down_fraction
            for s in self.scenarios
        )
        return max(0.0, 1.0 - loss)

    def downtime_minutes_per_year(self, repair_hours: float = 8.0) -> float:
        """Expected flow-weighted downtime, in minutes per year."""
        return (1.0 - self.expected_availability(repair_hours)) * 525600.0

    def rows(self) -> List[Dict[str, object]]:
        """Per-scenario table rows for :func:`repro.io.report.format_table`."""
        return [
            {
                "scenario": s.scenario.name,
                "eligible": s.eligible,
                "covered": s.covered,
                "rerouted": s.rerouted,
                "lost": len(s.lost_flows),
                "coverage": "%.1f%%" % (100.0 * s.coverage),
                "max_added_cycles": s.max_added_cycles,
            }
            for s in self.scenarios
        ]

    def summary(self) -> Dict[str, object]:
        """One-row rollup (the bench/CLI headline).

        Availability fields appear only when the scenarios carry FIT
        annotations, so un-annotated runs serialize exactly as before.
        """
        out: Dict[str, object] = {
            "fault_model": self.fault_model,
            "scenarios": self.num_scenarios,
            "coverage": round(self.coverage, 6),
            "worst_scenario_coverage": round(self.worst_scenario_coverage, 6),
            "uncovered_flows": len(self.uncovered_flows),
            "max_added_cycles": self.max_added_cycles,
        }
        if self.has_fit:
            out["expected_availability"] = round(
                self.expected_availability(), 9
            )
            out["downtime_min_year"] = round(
                self.downtime_minutes_per_year(), 6
            )
        return out


def _classify(
    scenario: FaultScenario,
    topology: Topology,
    key: FlowKey,
    route: Route,
    plan: Optional[SparePlan],
) -> FlowImpact:
    if endpoint_failed(scenario, topology, key):
        return FlowImpact(flow=key, fate=ENDPOINT_LOST)
    if not route_affected(scenario, topology, route):
        return FlowImpact(flow=key, fate=UNAFFECTED)
    if plan is not None:
        for idx, backup in enumerate(plan.backups_for(key)):
            if not route_affected(scenario, topology, backup):
                return FlowImpact(
                    flow=key,
                    fate=REROUTED,
                    backup_index=idx,
                    primary_cycles=plan.primary_cycles.get(key, 0),
                    degraded_cycles=plan.backup_cycles[key][idx],
                )
    return FlowImpact(flow=key, fate=LOST)


def analyze_coverage(
    topology: Topology,
    scenarios: Sequence[FaultScenario],
    plan: Optional[SparePlan] = None,
    fault_model: str = "custom",
) -> CoverageReport:
    """Classify every routed flow under every scenario.

    ``plan=None`` analyzes the unprotected topology (no backups — every
    affected flow is lost), the baseline the protected analysis is
    compared against.  Deterministic: flows are visited in sorted key
    order, scenarios in input order.
    """
    out: List[ScenarioCoverage] = []
    routes = sorted(topology.routes.items())
    for scenario in scenarios:
        impacts = tuple(
            _classify(scenario, topology, key, route, plan)
            for key, route in routes
        )
        out.append(ScenarioCoverage(scenario=scenario, impacts=impacts))
    return CoverageReport(fault_model=fault_model, scenarios=tuple(out))


def analyze_model(
    topology: Topology,
    fault_model: str = "single_link",
    plan: Optional[SparePlan] = None,
    rates: Optional[FitRates] = None,
) -> CoverageReport:
    """Coverage under every scenario of one named fault model.

    ``rates`` annotates the scenarios with FIT occurrence rates,
    enabling :meth:`CoverageReport.expected_availability`.
    """
    return analyze_coverage(
        topology,
        enumerate_scenarios(topology, fault_model, rates=rates),
        plan=plan,
        fault_model=fault_model,
    )


def degraded_routes(
    topology: Topology,
    plan: Optional[SparePlan],
    scenario: FaultScenario,
) -> Dict[FlowKey, Route]:
    """The post-failure routing of one scenario.

    Unaffected flows keep their primaries, rerouted flows activate
    their first surviving backup, lost flows (and endpoint losses)
    drop out.  This is the route set the degraded-mode deadlock check
    audits: ``is_deadlock_free(topology, routes=degraded_routes(...))``.
    """
    out: Dict[FlowKey, Route] = {}
    for key, route in sorted(topology.routes.items()):
        impact = _classify(scenario, topology, key, route, plan)
        if impact.fate == UNAFFECTED:
            out[key] = route
        elif impact.fate == REROUTED:
            out[key] = plan.backups[key][impact.backup_index]
    return out


# ----------------------------------------------------------------------
# Objective integration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ResilienceObjective(Objective):
    """Veto under-covered points; cost spare overhead after the base.

    ``evaluate`` protects the candidate's topology with ``k`` disjoint
    backups (:func:`~repro.resilience.spare_paths.protect_design_point`
    — the shared point is never mutated), measures coverage under the
    ``fault_model`` scenarios enumerated on the *protected* topology,
    and:

    * rejects the point when coverage falls below ``min_coverage``
      (like a routing failure under co-synthesis);
    * otherwise scores it as the base objective's full cost vector
      followed lexicographically by the protection overhead — extra
      Figure-2 power (mW), extra wire (mm), spare links opened — so
      among base-equivalent points the cheapest-to-protect one wins.
    """

    name = "resilience"

    fault_model: str = "single_link"
    k: int = 1
    min_coverage: float = 1.0
    base: Optional[Objective] = None
    spare_config: Optional[SparePathConfig] = None

    def __post_init__(self) -> None:
        if self.fault_model not in FAULT_MODEL_NAMES:
            raise SpecError(
                "unknown fault model %r (choose from %s)"
                % (self.fault_model, ", ".join(FAULT_MODEL_NAMES))
            )
        if self.k < 0:
            raise SpecError("spare-path k must be >= 0, got %r" % self.k)
        if not (0.0 <= self.min_coverage <= 1.0):
            raise SpecError(
                "min_coverage must be in [0, 1], got %r" % self.min_coverage
            )

    def _base(self) -> Objective:
        return self.base if self.base is not None else StaticPowerObjective()

    def evaluate(self, point: "DesignPoint") -> ObjectiveResult:
        base_result = self._base().evaluate(point)
        if not base_result.feasible:
            return ObjectiveResult(
                cost=(math.inf,),
                feasible=False,
                reason="%s: %s"
                % (self._base().name, base_result.reason or "rejected"),
                metrics=dict(base_result.metrics),
            )
        prot = protect_design_point(point, k=self.k, config=self.spare_config)
        report = analyze_model(
            prot.topology, self.fault_model, plan=prot.plan
        )
        metrics = dict(base_result.metrics)
        metrics.update(
            {
                "coverage": report.coverage,
                "worst_scenario_coverage": report.worst_scenario_coverage,
                "spare_links": float(prot.plan.links_opened),
                "spare_overhead_mw": prot.power_overhead_mw,
                "spare_wire_mm": prot.wire_overhead_mm,
                "spare_area_mm2": prot.area_overhead_mm2,
            }
        )
        if report.coverage < self.min_coverage - 1e-12:
            return ObjectiveResult(
                cost=(math.inf,),
                feasible=False,
                reason="resilience: coverage %.3f below target %.3f "
                "(%d uncovered flows under %s)"
                % (
                    report.coverage,
                    self.min_coverage,
                    len(report.uncovered_flows),
                    self.fault_model,
                ),
                metrics=metrics,
            )
        cost = base_result.cost + (
            prot.power_overhead_mw,
            prot.wire_overhead_mm,
            float(prot.plan.links_opened),
        )
        return ObjectiveResult(cost=cost, metrics=metrics)

    def partial_cost(self, point: "DesignPoint") -> Optional[Tuple[float, ...]]:
        """The base's exact cost prefix — protection only appends cost.

        Lets the pruned sweep skip the expensive protect-and-cover work
        for candidates the base objective already rules out (the
        resilience cost vector starts with the base's components).
        """
        return self._base().partial_cost(point)

    def column_names(self) -> Tuple[str, ...]:
        return self._base().column_names() + ("coverage", "spare_links")

    def columns(self, point: "DesignPoint") -> Dict[str, object]:
        out = self._base().columns(point)
        result = self.evaluate(point)
        out["coverage"] = round(result.metrics.get("coverage", 0.0), 4)
        out["spare_links"] = int(result.metrics.get("spare_links", 0))
        return out

    def describe(self) -> str:
        return "%s(%s, k=%d, min=%.2f, base=%s)" % (
            self.name,
            self.fault_model,
            self.k,
            self.min_coverage,
            self._base().describe(),
        )
