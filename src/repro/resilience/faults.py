"""Fault-model library: deterministic failure scenarios for a topology.

The paper's shutdown-safety rule makes a *planned* island gating
survivable; an *unplanned* component failure is the same routing
problem without the planning.  This module enumerates the failure
scenarios a resilience analysis protects against, as plain frozen data
derived from a synthesized :class:`~repro.arch.topology.Topology`:

* **single / double inter-switch link failure** — one (or any pair of)
  ``sw2sw`` physical links goes dark; NI attachment links are not
  enumerated separately because an NI link can only die with its
  switch (they share the port macro);
* **switch failure** — a switch dies with every link touching it;
  flows whose endpoint cores attach to it are structurally lost;
* **whole-island hard failure** — every switch (and NI) of one
  voltage island fails at once, the unplanned analogue of a shutdown.

Scenario enumeration is deterministic: scenarios come out sorted by
their failed component ids, so two runs on the same topology produce
byte-identical scenario lists (the resilience benches pin this).

The classification helpers at the bottom (`route_affected`,
`route_survives`, `endpoint_failed`) are the single shared definition
of "does this routing live through that fault" used by both the
static coverage analysis (:mod:`repro.resilience.coverage`) and the
runtime fault injection (:func:`repro.runtime.simulate.simulate_trace`
with ``fault_events``).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..arch.topology import INTERMEDIATE_ISLAND, FlowKey, Route, Topology
from ..exceptions import SpecError

#: Canonical fault-model names, in presentation order (CLI choices).
FAULT_MODEL_NAMES: Tuple[str, ...] = (
    "single_link",
    "double_link",
    "switch",
    "island",
)


@dataclass(frozen=True)
class FitRates:
    """Per-component failure rates in FIT (failures per 10^9 hours).

    The deterministic scenario enumeration answers "what happens *if*
    this component dies"; FIT rates add "how often".  Rates attach to
    scenarios via :meth:`scenario_fit` (see ``rates=`` on the
    enumerators), and :meth:`CoverageReport.expected_availability
    <repro.resilience.coverage.CoverageReport.expected_availability>`
    folds them into a steady-state service-availability number.

    ``repair_hours`` is the mean time to repair a failed component; it
    sets the coincidence window for double faults and the unavailability
    window (rate x MTTR) of every scenario.
    """

    link_fit: float = 10.0
    switch_fit: float = 25.0
    island_fit: float = 5.0
    repair_hours: float = 8.0

    def __post_init__(self) -> None:
        for name in ("link_fit", "switch_fit", "island_fit"):
            if getattr(self, name) < 0:
                raise SpecError(
                    "%s must be >= 0 FIT, got %r" % (name, getattr(self, name))
                )
        if self.repair_hours <= 0:
            raise SpecError(
                "repair_hours must be > 0, got %r" % self.repair_hours
            )

    def scenario_fit(self, scenario: "FaultScenario") -> float:
        """Occurrence rate of one scenario, in FIT.

        Single faults carry their component's rate (a switch or island
        failure subsumes its attached links — they share the fault, not
        add to it).  A double-link scenario is a *coincidence*: both
        links must be down at once, so its rate is the standard
        2 x lambda^2 x MTTR product, vanishingly small for sane inputs.
        Unknown kinds fall back to an additive per-component bound.
        """
        if scenario.kind == "single_link":
            return self.link_fit
        if scenario.kind == "double_link":
            lam = self.link_fit
            return 2.0 * lam * lam * self.repair_hours / 1e9
        if scenario.kind == "switch":
            return self.switch_fit
        if scenario.kind == "island":
            return self.island_fit
        return (
            self.link_fit * len(scenario.failed_links)
            + self.switch_fit * len(scenario.failed_switches)
            + self.island_fit * len(scenario.failed_islands)
        )


@dataclass(frozen=True)
class FaultScenario:
    """One deterministic failure scenario.

    ``failed_links`` are physical link ids, ``failed_switches`` switch
    component ids, ``failed_islands`` island ids; a scenario may
    combine all three (a switch failure carries its links, an island
    failure carries its switches and their links).  The tuples are
    sorted so equal scenarios compare and serialize identically.

    ``fit`` is the scenario's occurrence rate in FIT (failures per
    10^9 hours); 0.0 means "not annotated" — the default, so the
    deterministic analyses stay byte-identical unless the caller opts
    into the probabilistic model via ``rates=`` on the enumerators.
    """

    name: str
    kind: str
    failed_links: Tuple[int, ...] = ()
    failed_switches: Tuple[str, ...] = ()
    failed_islands: Tuple[int, ...] = ()
    fit: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("fault scenario needs a name")
        if not (self.failed_links or self.failed_switches or self.failed_islands):
            raise SpecError("fault scenario %r fails nothing" % self.name)
        if self.fit < 0:
            raise SpecError(
                "fault scenario %r has negative FIT rate %r"
                % (self.name, self.fit)
            )
        object.__setattr__(self, "failed_links", tuple(sorted(self.failed_links)))
        object.__setattr__(
            self, "failed_switches", tuple(sorted(self.failed_switches))
        )
        object.__setattr__(
            self, "failed_islands", tuple(sorted(self.failed_islands))
        )

    def describe(self) -> str:
        parts: List[str] = []
        if self.failed_links:
            parts.append("links %s" % ",".join(map(str, self.failed_links)))
        if self.failed_switches:
            parts.append("switches %s" % ",".join(self.failed_switches))
        if self.failed_islands:
            parts.append("islands %s" % ",".join(map(str, self.failed_islands)))
        return "%s[%s]" % (self.name, "; ".join(parts))


@dataclass(frozen=True)
class FaultEvent:
    """A fault scenario injected into a runtime trace.

    The scenario is active on ``[start_ms, end_ms)``; ``end_ms``
    defaults to "never repaired".  ``reroute_stall_ms`` is the one-time
    detection-plus-switchover stall a flow pays when it fails over to a
    backup route (charged once per flow per event by the runtime
    simulator, and folded into the per-flow wake-stall accounting the
    QoS objective reads).
    """

    scenario: FaultScenario
    start_ms: float = 0.0
    end_ms: float = math.inf
    reroute_stall_ms: float = 0.05

    def __post_init__(self) -> None:
        if self.start_ms < 0:
            raise SpecError(
                "fault event start must be >= 0 ms, got %r" % self.start_ms
            )
        if self.end_ms <= self.start_ms:
            raise SpecError(
                "fault event window [%r, %r) is empty" % (self.start_ms, self.end_ms)
            )
        if self.reroute_stall_ms < 0:
            raise SpecError(
                "reroute stall must be >= 0 ms, got %r" % self.reroute_stall_ms
            )

    def overlap_ms(self, start_ms: float, end_ms: float) -> float:
        """Overlap of the fault window with ``[start_ms, end_ms)``."""
        lo = max(self.start_ms, start_ms)
        hi = min(self.end_ms, end_ms)
        return max(0.0, hi - lo)


# ----------------------------------------------------------------------
# Enumerators
# ----------------------------------------------------------------------


def _sw_link_ids(topology: Topology) -> List[int]:
    """Inter-switch link ids in id order (the enumeration axis)."""
    return sorted(l.id for l in topology.links.values() if l.kind == "sw2sw")


def _rated(
    scenarios: List[FaultScenario], rates: Optional[FitRates]
) -> List[FaultScenario]:
    """Annotate scenarios with their FIT rate (no-op when rates is None)."""
    if rates is None:
        return scenarios
    return [
        dataclasses.replace(sc, fit=rates.scenario_fit(sc))
        for sc in scenarios
    ]


def single_link_failures(
    topology: Topology, rates: Optional[FitRates] = None
) -> List[FaultScenario]:
    """One scenario per inter-switch link."""
    return _rated(
        [
            FaultScenario(
                name="link%d" % lid, kind="single_link", failed_links=(lid,)
            )
            for lid in _sw_link_ids(topology)
        ],
        rates,
    )


def double_link_failures(
    topology: Topology, rates: Optional[FitRates] = None
) -> List[FaultScenario]:
    """One scenario per unordered pair of distinct inter-switch links."""
    ids = _sw_link_ids(topology)
    out: List[FaultScenario] = []
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            out.append(
                FaultScenario(
                    name="link%d+link%d" % (a, b),
                    kind="double_link",
                    failed_links=(a, b),
                )
            )
    return _rated(out, rates)


def switch_failures(
    topology: Topology, rates: Optional[FitRates] = None
) -> List[FaultScenario]:
    """One scenario per switch; the switch takes every touching link."""
    out: List[FaultScenario] = []
    for sid in sorted(topology.switches):
        links = tuple(
            l.id
            for l in topology.links.values()
            if l.src == sid or l.dst == sid
        )
        out.append(
            FaultScenario(
                name="switch:%s" % sid,
                kind="switch",
                failed_links=links,
                failed_switches=(sid,),
            )
        )
    return _rated(out, rates)


def island_failures(
    topology: Topology, rates: Optional[FitRates] = None
) -> List[FaultScenario]:
    """One scenario per gateable island (hard failure of the whole VI).

    The intermediate NoC island is excluded: it sits on the always-on
    supply, and its hard failure would take every cross-island flow
    with it by construction — there is no routing answer to analyze.
    """
    out: List[FaultScenario] = []
    islands = sorted(
        isl for isl in topology.island_freqs if isl != INTERMEDIATE_ISLAND
    )
    for isl in islands:
        switches = tuple(s.id for s in topology.island_switches(isl))
        dead = set(switches)
        links = tuple(
            l.id
            for l in topology.links.values()
            if l.src in dead or l.dst in dead
        )
        out.append(
            FaultScenario(
                name="island:%d" % isl,
                kind="island",
                failed_links=links,
                failed_switches=switches,
                failed_islands=(isl,),
            )
        )
    return _rated(out, rates)


def enumerate_scenarios(
    topology: Topology, model: str, rates: Optional[FitRates] = None
) -> List[FaultScenario]:
    """All scenarios of one fault model, by canonical name."""
    key = model.strip().lower().replace("-", "_")
    if key == "single_link":
        return single_link_failures(topology, rates)
    if key == "double_link":
        return double_link_failures(topology, rates)
    if key == "switch":
        return switch_failures(topology, rates)
    if key == "island":
        return island_failures(topology, rates)
    raise SpecError(
        "unknown fault model %r (choose from %s)"
        % (model, ", ".join(FAULT_MODEL_NAMES))
    )


# ----------------------------------------------------------------------
# Classification (shared by coverage analysis and runtime injection)
# ----------------------------------------------------------------------


def endpoint_failed(
    scenario: FaultScenario, topology: Topology, flow: FlowKey
) -> bool:
    """True when a flow's source or destination attachment is dead.

    A flow whose endpoint core sits in a failed island, or attaches to
    a failed switch, cannot be saved by any rerouting — the coverage
    analysis excludes such flows from a scenario's eligible set.
    """
    spec = topology.spec
    if scenario.failed_islands:
        dead = set(scenario.failed_islands)
        if spec.island_of(flow[0]) in dead or spec.island_of(flow[1]) in dead:
            return True
    if scenario.failed_switches:
        dead_sw = set(scenario.failed_switches)
        if (
            topology.switch_of_core(flow[0]).id in dead_sw
            or topology.switch_of_core(flow[1]).id in dead_sw
        ):
            return True
    return False


def route_affected(
    scenario: FaultScenario, topology: Topology, route: Route
) -> bool:
    """True when the scenario kills any component the route uses."""
    if scenario.failed_links:
        dead = set(scenario.failed_links)
        for lid in route.links:
            if lid in dead:
                return True
    if scenario.failed_switches:
        dead_sw = set(scenario.failed_switches)
        for comp in route.components[1:-1]:
            if comp in dead_sw:
                return True
    if scenario.failed_islands:
        dead_isl = set(scenario.failed_islands)
        for comp in route.components[1:-1]:
            sw = topology.switches.get(comp)
            if sw is not None and sw.island in dead_isl:
                return True
    return False


def route_survives(
    scenario: FaultScenario, topology: Topology, route: Route
) -> bool:
    """True when the route uses no failed component."""
    return not route_affected(scenario, topology, route)
