"""k-disjoint spare-path allocation on top of a routed topology.

For every routed flow, allocate up to ``k`` backup routes that are
pairwise edge-disjoint (on physical inter-switch links) from the
primary route and from each other, so that any failure killing the
primary leaves at least one live alternative.  The Ogras/Marculescu
observation — long-range spare channels can be grafted onto an
existing topology cheaply — meets the paper's VI constraint here:
backup routes obey the *same* shutdown-safety transition rule as
primaries (only source, destination and intermediate islands), so the
protected design stays island-gateable.

Mechanics
---------

* Flows are processed in the primary allocator's deterministic order
  (decreasing bandwidth, latency, key), so two allocations on equal
  topologies are byte-identical.
* Each backup search runs the PR-2 int-indexed Dijkstra
  (:meth:`repro.core.paths.PathAllocator.route_backup`) with the
  flow's primary links — and its earlier backups — forbidden; the
  search may reuse existing links with headroom or open new ones
  (including parallel links: a parallel physical link is a valid
  single-link-failure backup because only one physical link fails at
  a time), charged against the same cost model as primary routing.
* Backups are **cold standby**: they carry no traffic until a fault
  activates them, so their bandwidth is *reserved*
  (:attr:`SparePlan.reserved_mbps`) rather than charged to the links.
  Reservations are mutually exclusive across all flows' backups, so in
  any single-fault scenario every rerouted flow finds its reserved
  headroom next to all surviving primaries.
* Flows whose endpoints share one switch have no inter-switch links to
  lose — they are recorded as trivially safe and get no backups.

``allocate_spare_paths`` mutates the given topology (it opens links);
callers protecting a shared design point go through
:func:`protect_design_point`, which works on a clone and re-runs
floorplanning and power so the overhead of protection is measured,
not guessed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Set, Tuple

from ..arch.topology import FlowKey, Link, Route, Switch, Topology, ni_id
from ..core.paths import PathAllocator, PathCostConfig, _OPEN
from ..exceptions import SynthesisError
from ..floorplan.placer import Floorplan, FloorplanConfig, place
from ..floorplan.wires import WireReport, assign_wire_lengths
from ..perf.instrument import active_recorder
from ..power.noc_power import NocPower, compute_noc_power
from ..power.soc_power import SocPower, compute_soc_power
from ..sim.zero_load import LatencyReport, evaluate_latency, route_latency_cycles

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.design_point import DesignPoint


@dataclass(frozen=True)
class SparePathConfig:
    """Knobs of backup-route allocation."""

    #: Backup routes per flow; k backups survive any k link failures
    #: that each kill at most one of the flow's k+1 disjoint routes.
    k: int = 1
    #: Also forbid the primary's intermediate *switches* (not just its
    #: links) so backups survive switch failures of transit switches.
    node_disjoint: bool = False
    #: Reserve backup bandwidth exclusively across the whole plan
    #: (guaranteed degraded-mode capacity); ``False`` shares headroom
    #: optimistically between backups.
    reserve_bandwidth: bool = True
    #: Allow opening new links for backups; ``False`` restricts spares
    #: to the hardware the primary allocation already built.
    allow_new_links: bool = True
    #: Degraded-mode latency slack: a backup route must meet
    #: ``flow.latency_cycles * latency_stretch`` or the flow stays
    #: unprotected (the default enforces the same hard budget primary
    #: routing does; ``math.inf`` accepts any detour).
    latency_stretch: float = 1.0
    #: Cost knobs for the backup searches (default: primary's).
    cost_config: Optional[PathCostConfig] = None
    #: Raise instead of recording unprotected flows.
    require_full_protection: bool = False


@dataclass(frozen=True)
class SparePlan:
    """The backup routes of one protected topology."""

    k: int
    node_disjoint: bool
    #: Per flow, up to ``k`` backup routes in allocation order.
    backups: Mapping[FlowKey, Tuple[Route, ...]]
    #: Zero-load latency (cycles) of each backup route, aligned with
    #: :attr:`backups`.
    backup_cycles: Mapping[FlowKey, Tuple[int, ...]]
    #: Zero-load latency of each protected flow's primary route.
    primary_cycles: Mapping[FlowKey, int]
    #: Flows with no inter-switch links (nothing to protect).
    trivially_safe: Tuple[FlowKey, ...]
    #: Flows that received fewer than ``k`` backups.
    unprotected: Tuple[FlowKey, ...]
    #: Links opened for spares, in opening order.
    opened_links: Tuple[int, ...]
    #: Cold-standby bandwidth reserved per link id.
    reserved_mbps: Mapping[int, float]

    @property
    def links_opened(self) -> int:
        return len(self.opened_links)

    @property
    def protected_flows(self) -> int:
        return len(self.backups)

    @property
    def fully_protected(self) -> bool:
        """True when every multi-switch flow got all ``k`` backups."""
        return not self.unprotected

    @property
    def total_reserved_mbps(self) -> float:
        return sum(self.reserved_mbps.values())

    def backups_for(self, flow: FlowKey) -> Tuple[Route, ...]:
        """The backup routes of one flow (empty for trivially safe)."""
        return self.backups.get(flow, ())


def _sw2sw_links(route: Route, topology: Topology) -> List[int]:
    return [
        lid for lid in route.links if topology.links[lid].kind == "sw2sw"
    ]


def allocate_spare_paths(
    topology: Topology,
    k: Optional[int] = None,
    config: Optional[SparePathConfig] = None,
    allocator: Optional[PathAllocator] = None,
) -> SparePlan:
    """Allocate up to ``k`` disjoint backup routes per routed flow.

    ``k`` overrides ``config.k`` when given (``None`` defers to the
    config, default 1).  Mutates ``topology`` (new links may open); the
    routes themselves live only in the returned :class:`SparePlan` —
    ``topology.routes`` keeps the primaries, so power/validation of the
    protected design sees the spare hardware as idle capacity, which is
    exactly what cold standby is.
    """
    cfg = config or SparePathConfig()
    if k is not None and k != cfg.k:
        cfg = replace(cfg, k=k)
    if cfg.k < 0:
        raise SynthesisError("spare-path k must be >= 0, got %r" % cfg.k)
    alloc = allocator or PathAllocator.for_topology(topology, cfg.cost_config)

    sw_list: List[Switch] = list(topology.switches.values())
    n = len(sw_list)
    idx_of = {sw.id: i for i, sw in enumerate(sw_list)}
    # Existing sw2sw links per directed pair, in link-id order —
    # prepopulated from the routed topology (primary allocation starts
    # from an empty map; spares start from the finished design).
    pair_links: Dict[int, List[Link]] = {}
    for link in topology.links.values():
        if link.kind != "sw2sw":
            continue
        key = idx_of[link.src] * n + idx_of[link.dst]
        pair_links.setdefault(key, []).append(link)
    for links in pair_links.values():
        links.sort(key=lambda l: l.id)

    backups: Dict[FlowKey, Tuple[Route, ...]] = {}
    backup_cycles: Dict[FlowKey, Tuple[int, ...]] = {}
    primary_cycles: Dict[FlowKey, int] = {}
    trivially_safe: List[FlowKey] = []
    unprotected: List[FlowKey] = []
    opened: List[int] = []
    reserved: Dict[int, float] = {}

    for flow in alloc._ordered_flows:
        key = flow.key
        route = topology.routes.get(key)
        if route is None:
            continue  # unrouted flows are a validation problem, not ours
        primary_sw_links = _sw2sw_links(route, topology)
        if not primary_sw_links:
            trivially_safe.append(key)
            continue
        src_i = idx_of[topology.switch_of_core(flow.src).id]
        dst_i = idx_of[topology.switch_of_core(flow.dst).id]
        ni_src_lid = route.links[0]
        ni_dst_lid = route.links[-1]
        forbidden: Set[int] = set(primary_sw_links)
        blocked: Optional[Set[int]] = None
        if cfg.node_disjoint:
            blocked = {
                idx_of[comp]
                for comp in route.components[1:-1]
                if comp in idx_of
            } - {src_i, dst_i}
        flow_routes: List[Route] = []
        flow_cycles: List[int] = []
        lat_budget = flow.latency_cycles * cfg.latency_stretch
        for _ in range(cfg.k):
            found = alloc.route_backup(
                topology,
                sw_list,
                pair_links,
                flow,
                src_i,
                dst_i,
                forbidden,
                blocked_switches=blocked,
                reserved=reserved if cfg.reserve_bandwidth else None,
                allow_open=cfg.allow_new_links,
            )
            if found is not None and found[1] > lat_budget + 1e-9:
                # Cheapest disjoint detour misses the degraded-mode
                # latency budget — retry latency-greedy, exactly like
                # primary routing's fallback.
                retry = alloc.route_backup(
                    topology,
                    sw_list,
                    pair_links,
                    flow,
                    src_i,
                    dst_i,
                    forbidden,
                    blocked_switches=blocked,
                    reserved=reserved if cfg.reserve_bandwidth else None,
                    allow_open=cfg.allow_new_links,
                    latency_only=True,
                )
                if retry is not None and retry[1] < found[1]:
                    found = retry
                if found[1] > lat_budget + 1e-9:
                    found = None  # a budget-violating spare is no spare
            if found is None:
                break
            hops, cycles = found
            link_ids: List[int] = [ni_src_lid]
            for ui, vi, action, link in hops:
                if action == _OPEN:
                    link = topology.open_link(sw_list[ui].id, sw_list[vi].id)
                    opened.append(link.id)
                    pkey = ui * n + vi
                    lst = pair_links.get(pkey)
                    if lst is None:
                        pair_links[pkey] = [link]
                    else:
                        lst.append(link)
                link_ids.append(link.id)
                forbidden.add(link.id)
                if cfg.reserve_bandwidth:
                    reserved[link.id] = (
                        reserved.get(link.id, 0.0) + flow.bandwidth_mbps
                    )
            link_ids.append(ni_dst_lid)
            comps = [ni_id(flow.src)]
            for lid in link_ids:
                comps.append(topology.links[lid].dst)
            flow_routes.append(
                Route(flow=key, components=tuple(comps), links=tuple(link_ids))
            )
            flow_cycles.append(cycles)
        if flow_routes:
            backups[key] = tuple(flow_routes)
            backup_cycles[key] = tuple(flow_cycles)
            primary_cycles[key] = route_latency_cycles(topology, key)
        if len(flow_routes) < cfg.k:
            unprotected.append(key)
            if cfg.require_full_protection:
                raise SynthesisError(
                    "flow %s->%s: only %d of %d disjoint backups found"
                    % (key[0], key[1], len(flow_routes), cfg.k)
                )

    recorder = active_recorder()
    if recorder is not None:
        recorder.count("spare_links_opened", len(opened))
        recorder.count("spare_backups", sum(len(b) for b in backups.values()))
    return SparePlan(
        k=cfg.k,
        node_disjoint=cfg.node_disjoint,
        backups=backups,
        backup_cycles=backup_cycles,
        primary_cycles=primary_cycles,
        trivially_safe=tuple(sorted(trivially_safe)),
        unprotected=tuple(sorted(unprotected)),
        opened_links=tuple(opened),
        reserved_mbps=reserved,
    )


@dataclass(frozen=True)
class ProtectionResult:
    """A protected clone of one design point, fully re-evaluated.

    The overhead properties compare against a *baseline* evaluated
    through the identical placement/wires/power pipeline on the
    unprotected topology — not against the point's stored metrics —
    so they isolate the cost of the spare hardware even when the
    point was synthesized with different evaluation settings (custom
    floorplan knobs, annealed placement, ``use_lengths=False``).  For
    points built with the default pipeline the baseline reproduces
    the stored metrics exactly.
    """

    topology: Topology
    plan: SparePlan
    floorplan: Floorplan
    wires: WireReport
    noc_power: NocPower
    soc_power: SocPower
    latency: LatencyReport
    baseline_wires: WireReport
    baseline_noc_power: NocPower
    baseline_soc_power: SocPower

    @property
    def power_overhead_mw(self) -> float:
        """Extra Figure-2 dynamic power the spare hardware costs."""
        return self.noc_power.fig2_dynamic_mw - self.baseline_noc_power.fig2_dynamic_mw

    @property
    def wire_overhead_mm(self) -> float:
        """Extra total wire length of the protected floorplan."""
        return self.wires.total_length_mm - self.baseline_wires.total_length_mm

    @property
    def area_overhead_mm2(self) -> float:
        """Extra NoC silicon area (bigger crossbars on spare ports)."""
        return self.soc_power.noc_area_mm2 - self.baseline_soc_power.noc_area_mm2


def _evaluate_protected(topo: Topology, floorplan_config: FloorplanConfig):
    """One placement/wires/power evaluation (shared with the baseline)."""
    floorplan = place(topo, floorplan_config)
    wires = assign_wire_lengths(topo, floorplan)
    noc_power = compute_noc_power(topo, use_lengths=True)
    soc_power = compute_soc_power(topo, noc_power)
    return floorplan, wires, noc_power, soc_power


def protect_design_point(
    point: "DesignPoint",
    k: Optional[int] = None,
    config: Optional[SparePathConfig] = None,
    floorplan_config: Optional[FloorplanConfig] = None,
) -> ProtectionResult:
    """Protect a design point's topology without mutating it.

    Clones the topology, allocates spare paths on the clone, then
    re-runs placement, wire assignment and the power rollup — once on
    the protected clone and once on an unprotected clone — so the
    protection overhead (links, wire, power, area) is measured under
    one consistent pipeline, whatever settings built the point.
    """
    fp_cfg = floorplan_config or FloorplanConfig()
    baseline = point.topology.clone_scaffold()
    _, base_wires, base_noc, base_soc = _evaluate_protected(baseline, fp_cfg)
    topo = point.topology.clone_scaffold()
    plan = allocate_spare_paths(topo, k=k, config=config)
    floorplan, wires, noc_power, soc_power = _evaluate_protected(topo, fp_cfg)
    return ProtectionResult(
        topology=topo,
        plan=plan,
        floorplan=floorplan,
        wires=wires,
        noc_power=noc_power,
        soc_power=soc_power,
        latency=evaluate_latency(topo),
        baseline_wires=base_wires,
        baseline_noc_power=base_noc,
        baseline_soc_power=base_soc,
    )
