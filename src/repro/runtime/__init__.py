"""Runtime shutdown simulation: trace-driven island power-state machines.

The static analyses (:mod:`repro.power.leakage`,
:mod:`repro.power.gating`) answer "which islands *can* be gated and
what would that save on average"; this package answers "what does a
device actually save over a real mode sequence" — including wake-up
energy, wake latency stalls, and a dynamic verification of the paper's
core guarantee that no active flow ever crosses a gated island.

Modules
-------

``trace``
    :class:`UseCaseTrace` and the scripted / day-in-the-life / seeded
    Markov trace generators.
``states``
    Per-island ON/OFF/WAKING :class:`IslandStateMachine`.
``policies``
    Gating policies (``never``, ``always_off``, ``idle_timeout``,
    ``break_even``) and per-island :class:`IslandEconomics`.
``simulate``
    The trace replay engine: :func:`simulate_trace`,
    :func:`compare_policies`.
``report``
    :class:`RuntimeReport`, :class:`RoutabilityViolation` and table
    helpers.
"""

from .policies import (
    AlwaysOff,
    BreakEvenOracle,
    EwmaIdlePredictor,
    GatingPolicy,
    IdleTimeout,
    IslandEconomics,
    NeverGate,
    POLICY_NAMES,
    default_policies,
    make_policy,
)
from .report import (
    FaultImpact,
    IslandRuntime,
    RoutabilityViolation,
    RuntimeReport,
    policy_comparison_rows,
)
from .simulate import (
    always_on_static_mw,
    canonical_fault_events,
    certified_policy_comparison,
    compare_policies,
    island_economics,
    simulate_trace,
)
from .states import IslandState, IslandStateMachine, StateInterval
from .trace import (
    TraceSegment,
    UseCaseTrace,
    day_in_the_life_trace,
    markov_trace,
    scripted_trace,
)

__all__ = [
    "AlwaysOff",
    "FaultImpact",
    "BreakEvenOracle",
    "EwmaIdlePredictor",
    "GatingPolicy",
    "IdleTimeout",
    "IslandEconomics",
    "IslandRuntime",
    "IslandState",
    "IslandStateMachine",
    "NeverGate",
    "POLICY_NAMES",
    "RoutabilityViolation",
    "RuntimeReport",
    "StateInterval",
    "TraceSegment",
    "UseCaseTrace",
    "always_on_static_mw",
    "canonical_fault_events",
    "certified_policy_comparison",
    "compare_policies",
    "day_in_the_life_trace",
    "default_policies",
    "island_economics",
    "make_policy",
    "markov_trace",
    "policy_comparison_rows",
    "scripted_trace",
    "simulate_trace",
]
