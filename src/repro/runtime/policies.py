"""Gating policies: *when* an idle island is actually powered off.

The synthesized topology guarantees idle islands *can* be gated; the
power controller still has to decide whether each idle interval is
worth the off/on cycle cost.  A policy maps one idle interval of one
island to a gate time (or ``None`` to stay powered):

* :class:`NeverGate` — keep everything on (the no-shutdown baseline);
* :class:`AlwaysOff` — gate the moment the island goes idle, however
  short the pause (the naive controller);
* :class:`IdleTimeout` — gate after the island has been idle for a
  fixed hold-off (the classic causal heuristic: short pauses never
  gate, long ones pay one timeout of leakage first);
* :class:`EwmaIdlePredictor` — gate immediately iff an EWMA of the
  island's *past* idle-interval lengths predicts the coming one beats
  break-even (causal: history only, no clairvoyance);
* :class:`BreakEvenOracle` — gate immediately, but only when the
  *coming* idle interval exceeds the island's break-even time
  (clairvoyant; the upper bound a causal policy can approach).

Policies see the island's :class:`IslandEconomics` — the same on/off
power split and event cost the simulator integrates — so the oracle's
decisions are optimal *for the simulator's own accounting*, which is
what makes the ``break_even <= min(never, always_off)`` invariant exact
rather than approximate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..exceptions import SpecError

#: Canonical policy names, in presentation order.
POLICY_NAMES: Tuple[str, ...] = (
    "never",
    "always_off",
    "idle_timeout",
    "ewma_predictor",
    "break_even",
)


@dataclass(frozen=True)
class IslandEconomics:
    """Per-island power economics the runtime simulator integrates.

    All figures describe the island as a whole — cores plus its share
    of the NoC (switches, NIs, converters) — per the decomposition in
    :func:`repro.runtime.simulate.island_economics`.
    """

    island: int
    #: Static power while powered: leakage + idle (clock) power, mW.
    on_static_mw: float
    #: Residual power while gated (sleep-transistor leakage), mW.
    off_static_mw: float
    #: Energy of one complete off/on cycle, nJ.
    event_energy_nj: float
    #: Wake-up latency (rail ramp + re-sync), ms.
    wakeup_latency_ms: float

    def __post_init__(self) -> None:
        if self.on_static_mw < 0 or self.off_static_mw < 0:
            raise SpecError("island %d: static power must be >= 0" % self.island)
        if self.off_static_mw > self.on_static_mw + 1e-12:
            raise SpecError(
                "island %d: gated power exceeds powered power" % self.island
            )
        if self.event_energy_nj < 0:
            raise SpecError("island %d: event energy must be >= 0" % self.island)
        if self.wakeup_latency_ms < 0:
            raise SpecError("island %d: wake latency must be >= 0" % self.island)

    @property
    def saved_mw(self) -> float:
        """Power saved while the island is gated."""
        return self.on_static_mw - self.off_static_mw

    @property
    def break_even_ms(self) -> float:
        """Idle duration above which gating saves net energy.

        ``E_event = saved_mw * t``  =>  ``t = E/P``; nJ / mW = µs.
        """
        if self.saved_mw <= 0:
            return math.inf
        return self.event_energy_nj / self.saved_mw / 1000.0

    def gating_pays_off(self, idle_ms: float) -> bool:
        """True when gating an ``idle_ms`` interval saves net energy.

        The single economics comparison every scoring layer shares:
        the oracle applies it to the true interval, causal predictors
        to their estimate, and the objective layer's trace-energy
        accounting integrates exactly the same terms.
        """
        return idle_ms > self.break_even_ms

    def gate_net_gain_uj(self, idle_ms: float) -> float:
        """Net energy saved (µJ) by gating an ``idle_ms`` interval.

        Positive exactly when :meth:`gating_pays_off`; useful when a
        cost model wants the magnitude, not just the verdict.
        """
        return self.saved_mw * idle_ms - self.event_energy_nj * 1e-3


class GatingPolicy:
    """Decides, per idle interval, when (if ever) to gate an island."""

    #: Canonical policy name; subclasses override.
    name = "abstract"

    def gate_time(
        self, idle_start_ms: float, idle_end_ms: float, econ: IslandEconomics
    ) -> Optional[float]:
        """Gate time within ``[idle_start_ms, idle_end_ms)``, or ``None``.

        ``idle_end_ms`` is when the island is next needed (trace end
        for trailing intervals).  Causal policies must not read it for
        the *decision* — only the oracle may; history-learning policies
        may record it afterwards (the interval is past by the time the
        next decision is made).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any per-trace state (called at each trace replay start).

        Stateless policies inherit the no-op; history-based predictors
        override so one instance can replay many traces/topologies
        without leaking history across runs.
        """

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return self.name


class NeverGate(GatingPolicy):
    """Keep every island powered for the whole trace."""

    name = "never"

    def gate_time(self, idle_start_ms, idle_end_ms, econ):
        return None


class AlwaysOff(GatingPolicy):
    """Gate every idle island immediately, whatever the pause costs."""

    name = "always_off"

    def gate_time(self, idle_start_ms, idle_end_ms, econ):
        return idle_start_ms


class IdleTimeout(GatingPolicy):
    """Gate after a fixed idle hold-off (causal heuristic).

    The timeout trades leakage during the hold-off against event energy
    wasted on short pauses; setting it near the fleet-average
    break-even time is the usual tuning.
    """

    name = "idle_timeout"

    def __init__(self, timeout_ms: float = 20.0) -> None:
        if timeout_ms < 0:
            raise SpecError("idle timeout must be >= 0, got %r" % timeout_ms)
        self.timeout_ms = timeout_ms

    def gate_time(self, idle_start_ms, idle_end_ms, econ):
        t = idle_start_ms + self.timeout_ms
        return t if t < idle_end_ms else None

    def describe(self) -> str:
        return "%s(%.1fms)" % (self.name, self.timeout_ms)


class EwmaIdlePredictor(GatingPolicy):
    """Causal predictor: gate iff the EWMA of past idles beats break-even.

    Keeps, per island, an exponentially weighted moving average of the
    idle-interval lengths seen *so far* and gates at idle start when
    that prediction passes :meth:`IslandEconomics.gating_pays_off`.
    The first interval of each island never gates (no history yet); the
    observed length of every interval updates the average after the
    decision, so the policy stays strictly causal while adapting to
    mode-residency shifts.  The gap between this policy and the
    clairvoyant :class:`BreakEvenOracle` is the price of causality
    (tracked in ``benchmarks/bench_runtime_shutdown.py``).
    """

    name = "ewma_predictor"

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise SpecError("EWMA alpha must be in (0, 1], got %r" % alpha)
        self.alpha = alpha
        self._ewma: Dict[int, float] = {}

    def reset(self) -> None:
        self._ewma.clear()

    def gate_time(self, idle_start_ms, idle_end_ms, econ):
        predicted = self._ewma.get(econ.island)
        decision = None
        if predicted is not None and econ.gating_pays_off(predicted):
            decision = idle_start_ms
        observed = idle_end_ms - idle_start_ms
        if predicted is None:
            self._ewma[econ.island] = observed
        else:
            self._ewma[econ.island] = (
                self.alpha * observed + (1.0 - self.alpha) * predicted
            )
        return decision

    def describe(self) -> str:
        return "%s(a=%.2f)" % (self.name, self.alpha)


class BreakEvenOracle(GatingPolicy):
    """Gate immediately iff the coming idle interval beats break-even.

    Clairvoyant in the idle-interval length only; given the simulator's
    per-island economics this is the per-interval optimum, so its trace
    energy is a lower bound over {never, always_off, idle_timeout,
    ewma_predictor}.
    """

    name = "break_even"

    def gate_time(self, idle_start_ms, idle_end_ms, econ):
        if econ.gating_pays_off(idle_end_ms - idle_start_ms):
            return idle_start_ms
        return None


def make_policy(name: str, **kwargs) -> GatingPolicy:
    """Instantiate a policy by canonical name.

    Hyphens are accepted as underscores (``"break-even"``); keyword
    arguments reach the policy constructor (e.g. ``timeout_ms``).
    """
    key = name.strip().lower().replace("-", "_")
    classes: Dict[str, type] = {
        "never": NeverGate,
        "always_off": AlwaysOff,
        "idle_timeout": IdleTimeout,
        "ewma_predictor": EwmaIdlePredictor,
        "break_even": BreakEvenOracle,
    }
    if key not in classes:
        raise SpecError(
            "unknown gating policy %r (choose from %s)"
            % (name, ", ".join(POLICY_NAMES))
        )
    return classes[key](**kwargs)


def default_policies(timeout_ms: float = 20.0) -> Tuple[GatingPolicy, ...]:
    """The five standard policies, in presentation order."""
    return (
        NeverGate(),
        AlwaysOff(),
        IdleTimeout(timeout_ms=timeout_ms),
        EwmaIdlePredictor(),
        BreakEvenOracle(),
    )
