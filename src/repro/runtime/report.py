"""Runtime simulation results: energy over a trace, per policy.

A :class:`RuntimeReport` is the trace-driven analogue of the static
:class:`~repro.power.leakage.ShutdownReport`: instead of a weighted
average over ``time_fraction`` s it integrates actual mW over actual
milliseconds, charges every off/on cycle its event energy, and records
the dynamic safety evidence — wake stalls and routability violations —
that the static analysis cannot see.

Units: powers are mW, times ms, energies mJ (mW x ms = µJ; fields are
stored in mJ so a 1 s trace of a 1 W SoC reads as 1000 mJ).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence, Tuple

from ..arch.topology import FlowKey
from .states import StateInterval

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..control.telemetry import FaultRecovery, TelemetryEvent


@dataclass(frozen=True)
class RoutabilityViolation:
    """An active flow whose path crossed a gated (or waking) island.

    The paper's synthesis guarantee — no flow routes through a third
    island — exists precisely so this never happens; the runtime
    simulator verifies it dynamically.  ``island`` is the third-party
    island the route crosses while the policy holds it OFF/WAKING.
    """

    segment_index: int
    use_case: str
    flow: FlowKey
    island: int

    def describe(self) -> str:
        return "segment %d (%s): flow %s->%s crosses gated island %d" % (
            self.segment_index,
            self.use_case,
            self.flow[0],
            self.flow[1],
            self.island,
        )


@dataclass(frozen=True)
class FaultImpact:
    """One flow's fate under one injected fault event.

    Recorded once per (event, flow) at the first trace segment where
    the flow is active inside the fault window: either the flow failed
    over to a spare route (``fate == "rerouted"``, with the zero-load
    latency penalty and the one-time switchover stall), or no backup
    survived and the flow is down for the rest of the window
    (``fate == "lost"``).
    """

    event_index: int
    scenario: str
    segment_index: int
    use_case: str
    flow: FlowKey
    fate: str  # "rerouted" | "lost"
    backup_index: int = -1
    added_cycles: int = 0
    stall_ms: float = 0.0

    def describe(self) -> str:
        if self.fate == "rerouted":
            return (
                "fault %s: flow %s->%s failed over to backup %d "
                "(+%d cycles, %.3f ms stall)"
                % (
                    self.scenario,
                    self.flow[0],
                    self.flow[1],
                    self.backup_index,
                    self.added_cycles,
                    self.stall_ms,
                )
            )
        return "fault %s: flow %s->%s lost (no surviving backup)" % (
            self.scenario,
            self.flow[0],
            self.flow[1],
        )


@dataclass(frozen=True)
class IslandRuntime:
    """One island's runtime statistics over a trace."""

    island: int
    on_ms: float
    off_ms: float
    waking_ms: float
    gate_events: int
    wake_events: int
    #: The island's break-even idle time under the simulator economics.
    break_even_ms: float
    #: Static power saved per ms while gated.
    saved_mw: float
    #: Longest single wake stall the island imposed on a needed segment.
    max_stall_ms: float = 0.0
    #: Full ON/OFF/WAKING state timeline over the trace — the island's
    #: Gantt row in the observability dashboard.  Empty on reports
    #: built before the timeline was recorded.
    timeline: Tuple[StateInterval, ...] = ()

    @property
    def off_fraction(self) -> float:
        total = self.on_ms + self.off_ms + self.waking_ms
        return self.off_ms / total if total > 0 else 0.0


@dataclass(frozen=True)
class RuntimeReport:
    """Energy-over-time accounting of one policy on one trace."""

    trace_name: str
    policy: str
    total_ms: float
    num_segments: int
    #: Active-core dynamic energy (policy-independent).
    core_dynamic_mj: float
    #: NoC traffic energy of the active flows (policy-independent).
    noc_traffic_mj: float
    #: Static energy of gateable islands while ON or WAKING.
    islands_on_mj: float
    #: Residual static energy of gateable islands while OFF.
    islands_off_mj: float
    #: Static energy of never-gated parts (the intermediate NoC island).
    always_on_mj: float
    #: Off/on cycle energy over all gating events.
    wake_energy_mj: float
    gate_events: int
    wake_events: int
    #: Island-milliseconds spent waiting for wake-ups in needed intervals.
    stalled_ms: float
    #: Active flows that had to wait on a waking (src/dst) island.
    stalled_flows: int
    violations: Tuple[RoutabilityViolation, ...]
    per_island: Mapping[int, IslandRuntime]
    #: Worst-case wake stall each active flow ever saw (ms); the wake
    #: latency the QoS objective checks against per-flow deadlines.
    #: Populated by the routability pass (empty when it is skipped).
    flow_stall_ms: Mapping[FlowKey, float] = field(default_factory=dict)
    #: Per-flow fates under injected fault events (see
    #: :class:`FaultImpact`); empty when no faults were injected.
    fault_impacts: Tuple[FaultImpact, ...] = ()
    #: Traffic-energy delta of degraded-mode operation: rerouted flows
    #: pay their (usually longer) backup path, lost flows stop paying
    #: at all — so the delta can be negative while service is down.
    fault_delta_mj: float = 0.0
    #: Total one-time failover (detect + switchover) stall time.
    fault_stall_ms: float = 0.0
    #: Per-fault recovery timelines when a reconfiguration controller
    #: drove the replay (see
    #: :class:`repro.control.telemetry.FaultRecovery`); empty under
    #: the legacy omniscient fault model.
    recoveries: Tuple["FaultRecovery", ...] = ()
    #: The controller's telemetry stream, in canonical order.
    telemetry: Tuple["TelemetryEvent", ...] = ()

    @property
    def total_mj(self) -> float:
        """Total trace energy (including degraded-mode traffic delta)."""
        return (
            self.core_dynamic_mj
            + self.noc_traffic_mj
            + self.islands_on_mj
            + self.islands_off_mj
            + self.always_on_mj
            + self.wake_energy_mj
            + self.fault_delta_mj
        )

    @property
    def rerouted_flow_events(self) -> int:
        """(event, flow) pairs that failed over to a spare route."""
        return sum(1 for i in self.fault_impacts if i.fate == "rerouted")

    @property
    def lost_flow_events(self) -> int:
        """(event, flow) pairs with no surviving backup."""
        return sum(1 for i in self.fault_impacts if i.fate == "lost")

    @property
    def degraded(self) -> bool:
        """True when any injected fault touched an active flow."""
        return bool(self.fault_impacts)

    @property
    def controlled(self) -> bool:
        """True when a reconfiguration controller drove the faults."""
        return bool(self.recoveries)

    @property
    def worst_recovery_ms(self) -> float:
        """Largest fault-to-installed window over all recoveries."""
        return max((r.failover_ms for r in self.recoveries), default=0.0)

    @property
    def recoveries_deadlock_free(self) -> bool:
        """True when every installed routing passed its CDG audit."""
        return all(
            r.deadlock_free and r.restore_deadlock_free
            for r in self.recoveries
        )

    @property
    def lost_traffic_mbits(self) -> float:
        """Undelivered traffic over every fault's outage window."""
        return sum(r.lost_traffic_mbits for r in self.recoveries)

    @property
    def static_mj(self) -> float:
        """Static (leakage + idle clock) energy, the gating-sensitive part."""
        return self.islands_on_mj + self.islands_off_mj + self.always_on_mj

    @property
    def average_power_mw(self) -> float:
        """Trace-average power draw (mJ / ms = W; reported in mW)."""
        if self.total_ms <= 0:
            return 0.0
        return self.total_mj / self.total_ms * 1000.0

    @property
    def routable(self) -> bool:
        """True when no active flow ever crossed a gated island."""
        return not self.violations

    @property
    def worst_flow_stall_ms(self) -> float:
        """Largest per-flow wake stall over the whole trace."""
        return max(self.flow_stall_ms.values(), default=0.0)

    def savings_vs(self, other: "RuntimeReport") -> float:
        """Fractional energy saved relative to another report."""
        if other.total_mj <= 0:
            return 0.0
        return (other.total_mj - self.total_mj) / other.total_mj

    def island_rows(self) -> List[Dict[str, object]]:
        """Per-island table rows for :func:`repro.io.report.format_table`."""
        rows = []
        for isl in sorted(self.per_island):
            r = self.per_island[isl]
            rows.append(
                {
                    "island": r.island,
                    "on_ms": round(r.on_ms, 2),
                    "off_ms": round(r.off_ms, 2),
                    "waking_ms": round(r.waking_ms, 3),
                    "off_time": "%.1f%%" % (100.0 * r.off_fraction),
                    "gate_events": r.gate_events,
                    "wake_events": r.wake_events,
                    "break_even_us": round(r.break_even_ms * 1000.0, 2)
                    if r.break_even_ms != float("inf")
                    else "inf",
                }
            )
        return rows


def policy_comparison_rows(
    reports: Sequence[RuntimeReport],
) -> List[Dict[str, object]]:
    """One table row per policy; savings are relative to ``never``.

    Feasible only when all reports come from the same trace; rows keep
    the input order.
    """
    baseline = next((r for r in reports if r.policy == "never"), None)
    rows = []
    for r in reports:
        row: Dict[str, object] = {
            "policy": r.policy,
            "energy_mj": round(r.total_mj, 4),
            "avg_power_mw": round(r.average_power_mw, 2),
            "static_mj": round(r.static_mj, 4),
            "wake_mj": round(r.wake_energy_mj, 5),
            "gate_events": r.gate_events,
            "stalled_ms": round(r.stalled_ms, 3),
            "violations": len(r.violations),
        }
        if baseline is not None and baseline.total_mj > 0:
            row["savings"] = "%.1f%%" % (100.0 * r.savings_vs(baseline))
        rows.append(row)
    return rows
