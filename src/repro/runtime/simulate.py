"""Trace-driven runtime shutdown simulation.

Replays a :class:`~repro.runtime.trace.UseCaseTrace` against a
synthesized topology under a gating policy:

1. derive each gateable island's :class:`IslandEconomics` — static
   power while on (leakage + idle clock) vs. gated (residual leakage),
   plus the off/on cycle energy and wake latency from
   :func:`repro.power.gating.island_gating_cost`;
2. drive one :class:`IslandStateMachine` per island through the trace:
   islands hosting active cores of the current segment are needed (and
   woken when gated); idle intervals are handed to the policy;
3. integrate energy over the state timelines — active-core dynamic and
   NoC traffic power per segment, per-island static power per state,
   one event charge per gating cycle;
4. check routability: any active flow whose route crosses a
   still-OFF/WAKING *third-party* island (one the power controller has
   no reason to wake) is recorded as a
   :class:`~repro.runtime.report.RoutabilityViolation`.  VI-aware
   topologies produce none, by the paper's construction; the
   VI-oblivious baseline does — the same contrast as the static
   checker, now verified against an actual mode sequence.

The per-island decomposition charges each island its own leakage and
idle power (converter idle power goes to the receiving island), so the
model is separable: policy choices on one island never change another
island's bill.  That separability is what makes the break-even oracle
exactly optimal per idle interval — and the bench invariant
``break_even <= min(never, always_off)`` a theorem, not a tendency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..arch.topology import INTERMEDIATE_ISLAND, FlowKey, Topology
from ..exceptions import SpecError
from ..obs.spans import span
from ..power.gating import GatingModel, island_gating_cost
from ..power.leakage import statically_pinned_islands
from ..power.noc_power import compute_noc_power, route_traffic_power_mw
from ..sim.scenarios import UseCase
from .policies import GatingPolicy, IslandEconomics, default_policies
from .report import FaultImpact, IslandRuntime, RoutabilityViolation, RuntimeReport
from .states import IslandState, IslandStateMachine
from .trace import UseCaseTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..control.controller import ReconfigurationController
    from ..resilience.faults import FaultEvent
    from ..resilience.spare_paths import SparePlan

#: mW * ms -> mJ.
UJ_TO_MJ = 1e-3
#: nJ -> mJ.
NJ_TO_MJ = 1e-6


def island_economics(
    topology: Topology, model: Optional[GatingModel] = None
) -> Dict[int, IslandEconomics]:
    """Per-island on/off power split and gating event cost.

    Static-on power = core leakage + the island's NoC leakage + the
    island's NoC idle (clock) power, taken from one zero-traffic
    :func:`~repro.power.noc_power.compute_noc_power` evaluation so the
    split is consistent with the rest of the power stack.  Gated power
    retains the residual-leakage fraction of the leakage part only (the
    clock tree is off).  The intermediate NoC island is excluded: it is
    never gated, by construction.
    """
    idle = compute_noc_power(topology, active_flows=[], use_lengths=True)
    return _economics_from_idle(topology, idle, model)


def _economics_from_idle(
    topology: Topology, idle, model: Optional[GatingModel]
) -> Dict[int, IslandEconomics]:
    """:func:`island_economics` from a precomputed zero-traffic rollup."""
    m = model or GatingModel()
    spec = topology.spec
    out: Dict[int, IslandEconomics] = {}
    for island in spec.islands:
        core_leak = sum(
            spec.core(c).leakage_power_mw for c in spec.cores_in_island(island)
        )
        noc_leak = idle.leakage_by_island.get(island, 0.0)
        noc_idle = idle.dynamic_by_island.get(island, 0.0)
        cost = island_gating_cost(topology, island, m)
        leak = core_leak + noc_leak
        out[island] = IslandEconomics(
            island=island,
            on_static_mw=leak + noc_idle,
            off_static_mw=leak * m.residual_leakage_fraction,
            event_energy_nj=cost.event_energy_nj,
            wakeup_latency_ms=cost.wakeup_latency_us * 1e-3,
        )
    return out


def always_on_static_mw(topology: Topology) -> float:
    """Static power of the never-gated parts (intermediate NoC island)."""
    idle = compute_noc_power(topology, active_flows=[], use_lengths=True)
    return _always_on_from_idle(idle)


def _always_on_from_idle(idle) -> float:
    return idle.dynamic_by_island.get(
        INTERMEDIATE_ISLAND, 0.0
    ) + idle.leakage_by_island.get(INTERMEDIATE_ISLAND, 0.0)


@dataclass(frozen=True)
class _CaseProfile:
    """Per-use-case quantities the segment loop keeps re-reading."""

    needed_islands: frozenset
    core_dynamic_mw: float
    traffic_mw: float
    #: Routed active flows with their touched islands (minus the
    #: intermediate island, which is never gated).
    flow_islands: Tuple[Tuple[FlowKey, Tuple[int, ...]], ...]


def _profile_case(topology: Topology, case: UseCase) -> _CaseProfile:
    spec = topology.spec
    case.validate_against(spec)
    needed = frozenset(spec.island_of(c) for c in case.active_cores)
    core_dyn = sum(spec.core(c).dynamic_power_mw for c in case.active_cores)
    keys = [f.key for f in case.active_flows(spec)]
    power = compute_noc_power(topology, active_flows=keys, use_lengths=True)
    traffic = (
        power.switch_traffic_mw
        + power.ni_traffic_mw
        + power.link_traffic_mw
        + power.fifo_traffic_mw
    )
    flow_islands = tuple(
        (
            key,
            tuple(
                sorted(
                    isl
                    for isl in topology.islands_touched(key)
                    if isl != INTERMEDIATE_ISLAND
                )
            ),
        )
        for key in keys
        if key in topology.routes
    )
    return _CaseProfile(
        needed_islands=needed,
        core_dynamic_mw=core_dyn,
        traffic_mw=traffic,
        flow_islands=flow_islands,
    )


@dataclass(frozen=True)
class _TraceContext:
    """Policy-independent state shared across a policy comparison.

    Everything here depends only on (topology, trace, model) — one
    zero-traffic power rollup plus one profile per use case — so a
    multi-policy comparison derives it once instead of once per policy.
    """

    economics: Dict[int, IslandEconomics]
    always_on_mw: float
    profiles: Dict[str, _CaseProfile]
    boundaries: List[Tuple[float, float, object]]
    total_ms: float


def _build_context(
    topology: Topology, trace: UseCaseTrace, model: Optional[GatingModel]
) -> _TraceContext:
    trace.validate_against(topology.spec)
    idle = compute_noc_power(topology, active_flows=[], use_lengths=True)
    economics = _economics_from_idle(topology, idle, model)
    profiles = {u.name: _profile_case(topology, u) for u in trace.use_cases}
    for prof in profiles.values():
        unknown = prof.needed_islands - set(economics)
        if unknown:
            raise SpecError(
                "trace %r: active cores in unknown islands %s"
                % (trace.name, sorted(unknown))
            )
    return _TraceContext(
        economics=economics,
        always_on_mw=_always_on_from_idle(idle),
        profiles=profiles,
        boundaries=trace.boundaries(),
        total_ms=trace.total_ms,
    )


def _island_spans(
    boundaries: Sequence[Tuple[float, float, object]],
    profiles: Mapping[str, _CaseProfile],
    island: int,
) -> List[Tuple[float, float, bool]]:
    """Merged ``(start, end, needed)`` spans of one island over a trace."""
    spans: List[Tuple[float, float, bool]] = []
    for start, end, seg in boundaries:
        needed = island in profiles[seg.use_case].needed_islands
        if spans and spans[-1][2] == needed:
            spans[-1] = (spans[-1][0], end, needed)
        else:
            spans.append((start, end, needed))
    return spans


def canonical_fault_events(
    events: Sequence["FaultEvent"],
) -> List["FaultEvent"]:
    """Deterministic, deduplicated form of a fault-event list.

    Events sort by ``(start, end, scenario name, stall)`` — so the
    caller's list order never leaks into the accounting — and
    same-scenario windows that overlap (or touch) merge into one
    event spanning their union, keeping the larger switchover stall.
    Exact duplicates collapse to one event.  A component cannot fail
    *again* while it is already failed: without the merge, duplicate
    or overlapping injections double-charged the energy delta and
    recorded two impacts for one physical fault.  ``event_index`` on
    :class:`~repro.runtime.report.FaultImpact` refers to this
    canonical list.
    """
    from ..resilience.faults import FaultEvent  # deferred: layering

    ordered = sorted(
        events,
        key=lambda e: (e.start_ms, e.end_ms, e.scenario.name, e.reroute_stall_ms),
    )
    out: List[FaultEvent] = []
    last_of: Dict[object, int] = {}
    for ev in ordered:
        j = last_of.get(ev.scenario)
        if j is not None and ev.start_ms <= out[j].end_ms + 1e-12:
            prev = out[j]
            if (
                ev.end_ms > prev.end_ms
                or ev.reroute_stall_ms > prev.reroute_stall_ms
            ):
                out[j] = FaultEvent(
                    scenario=prev.scenario,
                    start_ms=prev.start_ms,
                    end_ms=max(prev.end_ms, ev.end_ms),
                    reroute_stall_ms=max(
                        prev.reroute_stall_ms, ev.reroute_stall_ms
                    ),
                )
        else:
            last_of[ev.scenario] = len(out)
            out.append(ev)
    return out


def simulate_trace(
    topology: Topology,
    trace: UseCaseTrace,
    policy: GatingPolicy,
    model: Optional[GatingModel] = None,
    check_routability: bool = True,
    pinned_islands: Optional[Iterable[int]] = None,
    fault_events: Optional[Sequence["FaultEvent"]] = None,
    spare_plan: Optional["SparePlan"] = None,
    controller: Optional["ReconfigurationController"] = None,
    _context: Optional[_TraceContext] = None,
) -> RuntimeReport:
    """Integrate energy (and verify routability) of a trace under a policy.

    ``pinned_islands`` are held ON for the whole trace regardless of
    the policy — pass
    :func:`repro.power.leakage.statically_pinned_islands` to model a
    *certifiable* controller on a VI-oblivious topology (islands whose
    switches carry third-party traffic can never be signed off for
    gating); VI-aware topologies pin nothing.  The
    :func:`certified_policy_comparison` helper wires this up.
    ``_context`` lets :func:`compare_policies` share the
    policy-independent preprocessing across policies.

    ``fault_events`` injects component failures
    (:class:`repro.resilience.faults.FaultEvent`) into the replay:
    while an event's window overlaps a segment, each active flow whose
    primary route uses a failed component either fails over to its
    first surviving backup from ``spare_plan`` (paying the backup
    path's traffic energy and a one-time switchover stall folded into
    the per-flow wake-stall accounting) or — with no surviving backup —
    is lost for the window (its traffic energy stops, recorded as a
    ``lost`` :class:`~repro.runtime.report.FaultImpact`).  The
    topology must be the *protected* one the plan's backup routes
    reference.  Events are canonicalized first
    (:func:`canonical_fault_events`): order-independent, duplicates
    collapsed, overlapping same-scenario windows merged.  Failover
    stalls run concurrent with any wake ramp the flow is already
    waiting out, so only the increment beyond the wake stall adds to
    ``fault_stall_ms``.

    ``controller`` replaces the omniscient same-tick fault model with
    the closed-loop control plane
    (:class:`repro.control.controller.ReconfigurationController`,
    built for this same topology): faults walk the staged repair
    pipeline (detected after a modeled latency, alternates installed
    after an install latency, primaries restored after repair), the
    report gains per-fault :attr:`~RuntimeReport.recoveries` timelines
    and the :attr:`~RuntimeReport.telemetry` stream, and every
    installed routing is audited for deadlock freedom.  When the
    controller carries its own spare plan, ``spare_plan`` may be
    omitted.
    """
    with span(
        "runtime.simulate",
        trace=trace.name,
        policy=policy.name,
        controlled=controller is not None,
    ) as s:
        report = _simulate_trace(
            topology,
            trace,
            policy,
            model=model,
            check_routability=check_routability,
            pinned_islands=pinned_islands,
            fault_events=fault_events,
            spare_plan=spare_plan,
            controller=controller,
            _context=_context,
        )
        if s is not None:
            s.set(violations=len(report.violations), recoveries=len(report.recoveries))
        return report


def _simulate_trace(
    topology: Topology,
    trace: UseCaseTrace,
    policy: GatingPolicy,
    model: Optional[GatingModel] = None,
    check_routability: bool = True,
    pinned_islands: Optional[Iterable[int]] = None,
    fault_events: Optional[Sequence["FaultEvent"]] = None,
    spare_plan: Optional["SparePlan"] = None,
    controller: Optional["ReconfigurationController"] = None,
    _context: Optional[_TraceContext] = None,
) -> RuntimeReport:
    """:func:`simulate_trace` body (root span opened by the wrapper)."""
    pinned = frozenset(pinned_islands or ())
    ctx = _context or _build_context(topology, trace, model)
    economics = ctx.economics
    boundaries = ctx.boundaries
    profiles = ctx.profiles
    total_ms = ctx.total_ms

    # --- drive one state machine per gateable island -------------------
    policy.reset()
    machines: Dict[int, IslandStateMachine] = {}
    stalled_ms = 0.0
    island_stall_ms: Dict[int, float] = {}
    for island, econ in economics.items():
        machine = IslandStateMachine(island, econ.wakeup_latency_ms)
        ready = 0.0
        for start, end, needed in _island_spans(boundaries, profiles, island):
            if needed:
                if machine.state is IslandState.OFF:
                    ready = machine.request_wake(start)
                if ready > start:
                    stall = min(ready, end) - start
                    stalled_ms += stall
                    island_stall_ms[island] = max(
                        island_stall_ms.get(island, 0.0), stall
                    )
            elif island not in pinned:
                # A wake still ramping cannot be interrupted, so the
                # interval handed to the policy starts when gating
                # becomes possible — the oracle must judge the *owned*
                # OFF window, or a wake spilling into the interval
                # would shrink the realized savings behind its back.
                effective_start = max(start, ready)
                if effective_start >= end - 1e-12:
                    continue
                gate = policy.gate_time(effective_start, end, econ)
                if gate is not None and gate < end - 1e-12:
                    machine.gate_off(max(gate, effective_start))
        machine.finalize(total_ms)
        machines[island] = machine

    # --- energy integration -------------------------------------------
    core_dyn_uj = traffic_uj = 0.0
    for start, end, seg in boundaries:
        prof = profiles[seg.use_case]
        dwell = end - start
        core_dyn_uj += prof.core_dynamic_mw * dwell
        traffic_uj += prof.traffic_mw * dwell

    on_uj = off_uj = wake_uj = 0.0
    gate_events = wake_events = 0
    per_island: Dict[int, IslandRuntime] = {}
    for island, machine in machines.items():
        econ = economics[island]
        times = machine.time_in()
        on_ms = times[IslandState.ON]
        off_ms = times[IslandState.OFF]
        waking_ms = times[IslandState.WAKING]
        on_uj += (on_ms + waking_ms) * econ.on_static_mw
        off_uj += off_ms * econ.off_static_mw
        wake_uj += machine.gate_events * econ.event_energy_nj * 1e-3
        gate_events += machine.gate_events
        wake_events += machine.wake_events
        per_island[island] = IslandRuntime(
            island=island,
            on_ms=on_ms,
            off_ms=off_ms,
            waking_ms=waking_ms,
            gate_events=machine.gate_events,
            wake_events=machine.wake_events,
            break_even_ms=econ.break_even_ms,
            saved_mw=econ.saved_mw,
            max_stall_ms=island_stall_ms.get(island, 0.0),
            timeline=tuple(machine.timeline),
        )
    always_on_uj = ctx.always_on_mw * total_ms

    # --- dynamic routability and per-flow wake-stall check ------------
    violations: List[RoutabilityViolation] = []
    flow_stall_ms: Dict[FlowKey, float] = {}
    #: Wake stall per (segment, flow) — kept only when faults are
    #: injected, so failover stalls can be charged *concurrent* with
    #: the wake ramp the flow is already waiting out.
    seg_wake: Dict[Tuple[int, FlowKey], float] = {}
    stalled_flows = 0
    if check_routability:
        for idx, (start, end, seg) in enumerate(boundaries):
            prof = profiles[seg.use_case]
            for key, touched in prof.flow_islands:
                seg_stall = 0.0
                for island in touched:
                    machine = machines[island]
                    if island in prof.needed_islands:
                        # Source/destination island still ramping: the
                        # flow waits out the wake — a latency penalty,
                        # not a safety violation.  The waking overlap
                        # *is* the wait (wakes are requested at segment
                        # start), and the flow's wait is the slowest of
                        # its islands' concurrent ramps.
                        seg_stall = max(
                            seg_stall, machine.waking_overlap_ms(start, end)
                        )
                        continue
                    if (
                        machine.off_overlap_ms(start, end) > 1e-12
                        or machine.waking_overlap_ms(start, end) > 1e-12
                    ):
                        violations.append(
                            RoutabilityViolation(
                                segment_index=idx,
                                use_case=seg.use_case,
                                flow=key,
                                island=island,
                            )
                        )
                if seg_stall > 1e-12:
                    stalled_flows += 1
                    if fault_events:
                        seg_wake[(idx, key)] = seg_stall
                flow_stall_ms[key] = max(flow_stall_ms.get(key, 0.0), seg_stall)

    # --- injected fault events: degraded-mode energy and stalls -------
    fault_impacts: List[FaultImpact] = []
    fault_delta_uj = 0.0
    fault_stall_total = 0.0
    recoveries: tuple = ()
    telemetry: tuple = ()
    if fault_events and controller is not None:
        if controller.topology is not topology:
            raise SpecError(
                "controller was built for a different topology than the "
                "one being simulated"
            )
        events = canonical_fault_events(fault_events)
        outcome = controller.run(
            events, boundaries, profiles, seg_wake, total_ms
        )
        fault_impacts = list(outcome.impacts)
        fault_delta_uj = outcome.delta_uj
        fault_stall_total = outcome.stall_ms
        for key, stall in outcome.flow_stall_ms.items():
            flow_stall_ms[key] = max(flow_stall_ms.get(key, 0.0), stall)
        recoveries = outcome.recoveries
        telemetry = outcome.telemetry
    elif fault_events:
        # Deferred import: the resilience package sits above runtime in
        # the layering (its coverage module pulls in the objective
        # layer, which imports this module).
        from ..resilience.faults import endpoint_failed, route_affected

        events = canonical_fault_events(fault_events)

        # (event index, use case) -> affected active flows with their
        # fate, power delta and failover latency; classification is
        # pure in those two inputs.
        fate_memo: Dict[Tuple[int, str], List[tuple]] = {}

        def classify(ev_idx: int, use_case: str) -> List[tuple]:
            entries = fate_memo.get((ev_idx, use_case))
            if entries is not None:
                return entries
            scenario = events[ev_idx].scenario
            entries = []
            for key, _islands in profiles[use_case].flow_islands:
                route = topology.routes[key]
                affected = route_affected(scenario, topology, route)
                dead_end = endpoint_failed(scenario, topology, key)
                if not affected and not dead_end:
                    continue
                bw = topology.spec.flow(*key).bandwidth_mbps
                backup_idx = -1
                if not dead_end and spare_plan is not None:
                    for idx2, backup in enumerate(spare_plan.backups_for(key)):
                        if not route_affected(scenario, topology, backup):
                            backup_idx = idx2
                            break
                if backup_idx >= 0:
                    backup = spare_plan.backups[key][backup_idx]
                    delta_mw = route_traffic_power_mw(
                        topology, bw, backup.links
                    ) - route_traffic_power_mw(topology, bw, route.links)
                    added = (
                        spare_plan.backup_cycles[key][backup_idx]
                        - spare_plan.primary_cycles.get(key, 0)
                    )
                    entries.append((key, "rerouted", backup_idx, delta_mw, added))
                else:
                    # Service down: the flow's traffic energy stops
                    # (NI endpoints included) for the fault window.
                    delta_mw = -route_traffic_power_mw(
                        topology, bw, route.links, include_ni=True
                    )
                    entries.append((key, "lost", -1, delta_mw, 0))
            fate_memo[(ev_idx, use_case)] = entries
            return entries

        seen: Set[Tuple[int, FlowKey]] = set()
        for idx, (start, end, seg) in enumerate(boundaries):
            for ev_idx, event in enumerate(events):
                overlap = event.overlap_ms(start, end)
                if overlap <= 1e-12:
                    continue
                for key, fate, backup_idx, delta_mw, added in classify(
                    ev_idx, seg.use_case
                ):
                    fault_delta_uj += delta_mw * overlap
                    if (ev_idx, key) in seen:
                        continue
                    seen.add((ev_idx, key))
                    stall = (
                        event.reroute_stall_ms if fate == "rerouted" else 0.0
                    )
                    if stall > 0.0:
                        # The failover switchover runs concurrent with
                        # any wake ramp the flow is already waiting
                        # out in this segment: the flow's wait is the
                        # max of the two, so only the increment beyond
                        # the wake stall is charged to the fault.
                        fault_stall_total += max(
                            0.0, stall - seg_wake.get((idx, key), 0.0)
                        )
                        flow_stall_ms[key] = max(
                            flow_stall_ms.get(key, 0.0), stall
                        )
                    fault_impacts.append(
                        FaultImpact(
                            event_index=ev_idx,
                            scenario=event.scenario.name,
                            segment_index=idx,
                            use_case=seg.use_case,
                            flow=key,
                            fate=fate,
                            backup_index=backup_idx,
                            added_cycles=added,
                            stall_ms=stall,
                        )
                    )

    return RuntimeReport(
        trace_name=trace.name,
        policy=policy.describe(),
        total_ms=total_ms,
        num_segments=len(trace.segments),
        core_dynamic_mj=core_dyn_uj * UJ_TO_MJ,
        noc_traffic_mj=traffic_uj * UJ_TO_MJ,
        islands_on_mj=on_uj * UJ_TO_MJ,
        islands_off_mj=off_uj * UJ_TO_MJ,
        always_on_mj=always_on_uj * UJ_TO_MJ,
        wake_energy_mj=wake_uj * UJ_TO_MJ,
        gate_events=gate_events,
        wake_events=wake_events,
        stalled_ms=stalled_ms,
        stalled_flows=stalled_flows,
        violations=tuple(violations),
        per_island=per_island,
        flow_stall_ms=flow_stall_ms,
        fault_impacts=tuple(fault_impacts),
        fault_delta_mj=fault_delta_uj * UJ_TO_MJ,
        fault_stall_ms=fault_stall_total,
        recoveries=recoveries,
        telemetry=telemetry,
    )


def compare_policies(
    topology: Topology,
    trace: UseCaseTrace,
    policies: Optional[Sequence[GatingPolicy]] = None,
    model: Optional[GatingModel] = None,
    check_routability: bool = True,
    pinned_islands: Optional[Iterable[int]] = None,
) -> Dict[str, RuntimeReport]:
    """Simulate the same trace under several policies.

    Returns reports keyed by policy name in input order (insertion
    order is preserved); defaults to the four standard policies.  The
    policy-independent preprocessing (power rollups, use-case profiles)
    is computed once and shared across the policies.
    """
    pinned = frozenset(pinned_islands or ())
    context = _build_context(topology, trace, model)
    reports: Dict[str, RuntimeReport] = {}
    for policy in policies if policies is not None else default_policies():
        if policy.name in reports:
            raise SpecError("duplicate policy %r in comparison" % policy.name)
        reports[policy.name] = simulate_trace(
            topology,
            trace,
            policy,
            model=model,
            check_routability=check_routability,
            pinned_islands=pinned,
            _context=context,
        )
    return reports


def certified_policy_comparison(
    topology: Topology,
    trace: UseCaseTrace,
    policies: Optional[Sequence[GatingPolicy]] = None,
    model: Optional[GatingModel] = None,
) -> Dict[str, RuntimeReport]:
    """Policy comparison under a sign-off-certifiable controller.

    Islands whose switches carry third-party traffic
    (:func:`~repro.power.leakage.statically_pinned_islands`) are held
    ON for the whole trace: without route analysis of the momentary
    traffic, no sign-off flow can guarantee their shutdown is safe
    (Section 2 of the paper).  On a VI-aware topology the pinned set is
    empty and this is identical to :func:`compare_policies`; on the
    VI-oblivious baseline it quantifies exactly how much runtime
    savings the topology forfeits.
    """
    return compare_policies(
        topology,
        trace,
        policies=policies,
        model=model,
        pinned_islands=statically_pinned_islands(topology),
    )
