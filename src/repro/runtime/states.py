"""Per-island power-state machines.

Each gateable voltage island is modelled as a three-state machine:

* ``ON`` — powered, clocked, usable;
* ``OFF`` — power-gated: only residual leakage through the sleep
  transistors, no clock tree, not usable;
* ``WAKING`` — rail ramp and re-synchronization after a wake request
  (:attr:`~repro.power.gating.GatingCost.wakeup_latency_us`); the
  island draws full static power but is not yet usable.

The machine records its full state timeline so the simulator can
integrate energy over it and the routability check can ask "what state
was island *i* in during segment *s*".  Transitions are validated: an
island cannot gate while waking, and wake requests on a powered island
are no-ops.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..exceptions import SpecError


class IslandState(enum.Enum):
    """Power state of one voltage island."""

    ON = "on"
    OFF = "off"
    WAKING = "waking"

    def __str__(self) -> str:  # compact in tables and logs
        return self.value


@dataclass(frozen=True)
class StateInterval:
    """One contiguous stretch of a single power state."""

    state: IslandState
    start_ms: float
    end_ms: float

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


class IslandStateMachine:
    """Replayable ON/OFF/WAKING state machine of one island.

    Time is monotone milliseconds from trace start; the machine starts
    ``ON`` at t=0 (the device boots fully powered) and must be
    :meth:`finalize` d at the trace end before the timeline is read.
    """

    def __init__(self, island: int, wakeup_latency_ms: float) -> None:
        if wakeup_latency_ms < 0:
            raise SpecError("wake-up latency must be >= 0")
        self.island = island
        self.wakeup_latency_ms = wakeup_latency_ms
        self.state = IslandState.ON
        self.gate_events = 0
        self.wake_events = 0
        self._t = 0.0
        self._intervals: List[StateInterval] = []
        self._state_since = 0.0
        self._finalized = False

    # -- transitions ----------------------------------------------------

    def _advance(self, t_ms: float, new_state: IslandState) -> None:
        if t_ms < self._t - 1e-9:
            raise SpecError(
                "island %d: time moved backwards (%.6f < %.6f)"
                % (self.island, t_ms, self._t)
            )
        if t_ms > self._state_since:
            self._intervals.append(
                StateInterval(self.state, self._state_since, t_ms)
            )
        self.state = new_state
        self._state_since = t_ms
        self._t = max(self._t, t_ms)

    def gate_off(self, t_ms: float) -> None:
        """Power-gate the island at ``t_ms`` (must currently be ON)."""
        if self.state is not IslandState.ON:
            raise SpecError(
                "island %d: cannot gate from state %s" % (self.island, self.state)
            )
        self._advance(t_ms, IslandState.OFF)
        self.gate_events += 1

    def request_wake(self, t_ms: float) -> float:
        """Wake the island at ``t_ms``; returns the time it is usable.

        A powered island is usable immediately; a gated island ramps
        through ``WAKING`` for the wake-up latency.
        """
        if self.state is IslandState.ON:
            return t_ms
        if self.state is IslandState.WAKING:
            raise SpecError(
                "island %d: overlapping wake requests" % self.island
            )
        ready = t_ms + self.wakeup_latency_ms
        self._advance(t_ms, IslandState.WAKING)
        self._advance(ready, IslandState.ON)
        self.wake_events += 1
        return ready

    def finalize(self, t_end_ms: float) -> None:
        """Close the timeline at the trace end.

        A wake requested near the trace end may have recorded its ON
        transition *past* ``t_end_ms`` (the rail ramp does not care
        that the trace is over); the timeline is clipped back to the
        trace window rather than rejected.
        """
        if self._finalized:
            raise SpecError("island %d: timeline already finalized" % self.island)
        if t_end_ms >= self._t:
            self._advance(t_end_ms, self.state)
        else:
            kept = [iv for iv in self._intervals if iv.start_ms < t_end_ms]
            if kept and kept[-1].end_ms > t_end_ms:
                last = kept[-1]
                kept[-1] = StateInterval(last.state, last.start_ms, t_end_ms)
            if self._state_since < t_end_ms:
                kept.append(StateInterval(self.state, self._state_since, t_end_ms))
            self._intervals = kept
        self._finalized = True

    # -- queries --------------------------------------------------------

    @property
    def timeline(self) -> List[StateInterval]:
        """The full state timeline (finalized machines only)."""
        if not self._finalized:
            raise SpecError("island %d: timeline not finalized" % self.island)
        return list(self._intervals)

    def state_at(self, t_ms: float) -> IslandState:
        """State at time ``t_ms`` (intervals are [start, end))."""
        if not self._finalized:
            raise SpecError("island %d: timeline not finalized" % self.island)
        starts = [iv.start_ms for iv in self._intervals]
        i = bisect_right(starts, t_ms) - 1
        if i < 0:
            return self._intervals[0].state
        return self._intervals[min(i, len(self._intervals) - 1)].state

    def time_in(self) -> Dict[IslandState, float]:
        """Milliseconds spent in each state over the whole timeline."""
        out = {s: 0.0 for s in IslandState}
        for iv in self.timeline:
            out[iv.state] += iv.duration_ms
        return out

    def off_overlap_ms(self, start_ms: float, end_ms: float) -> float:
        """OFF time overlapping ``[start_ms, end_ms)``."""
        return self._overlap_ms(start_ms, end_ms, IslandState.OFF)

    def waking_overlap_ms(self, start_ms: float, end_ms: float) -> float:
        """WAKING time overlapping ``[start_ms, end_ms)``."""
        return self._overlap_ms(start_ms, end_ms, IslandState.WAKING)

    def _overlap_ms(
        self, start_ms: float, end_ms: float, state: IslandState
    ) -> float:
        total = 0.0
        for iv in self.timeline:
            if iv.state is not state:
                continue
            lo = max(iv.start_ms, start_ms)
            hi = min(iv.end_ms, end_ms)
            if hi > lo:
                total += hi - lo
        return total
