"""Use-case traces: *when* the SoC is in which operating mode.

The static shutdown analysis (:mod:`repro.power.leakage`) weighs use
cases by ``time_fraction`` and implicitly assumes each residency is long
enough that gating always pays off.  Real devices switch modes every few
tens of milliseconds, and each off/on cycle of an island costs energy
and wake-up time (:mod:`repro.power.gating`) — so the *sequence* of
modes matters, not just the mix.  A :class:`UseCaseTrace` captures that
sequence: an ordered list of :class:`TraceSegment` s, each naming one
:class:`~repro.sim.scenarios.UseCase` and how long the device dwells in
it.

Two generators are provided:

* :func:`scripted_trace` / :func:`day_in_the_life_trace` — deterministic
  hand-written or residency-derived sequences (regression-friendly);
* :func:`markov_trace` — a seeded Markov chain over the use-case set
  with exponentially jittered dwell times, for statistical sweeps.

Traces are plain frozen data, picklable, and independent of any
topology; the runtime simulator (:mod:`repro.runtime.simulate`) replays
them against a synthesized design.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.spec import SoCSpec
from ..exceptions import SpecError
from ..sim.scenarios import UseCase


@dataclass(frozen=True)
class TraceSegment:
    """One contiguous dwell in a single operating mode."""

    #: Name of the active :class:`UseCase` during this segment.
    use_case: str
    #: Dwell time in milliseconds.
    dwell_ms: float

    def __post_init__(self) -> None:
        if not self.use_case:
            raise SpecError("trace segment needs a use-case name")
        if self.dwell_ms <= 0:
            raise SpecError(
                "trace segment %r: dwell must be positive, got %r"
                % (self.use_case, self.dwell_ms)
            )


@dataclass(frozen=True)
class UseCaseTrace:
    """An ordered mode sequence over a fixed use-case set.

    ``use_cases`` carries the full scenario set (so the simulator can
    resolve segment names to active cores and flows); ``segments`` is
    the timeline.  Time starts at 0 ms and runs to :attr:`total_ms`.
    """

    name: str
    use_cases: Tuple[UseCase, ...]
    segments: Tuple[TraceSegment, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("trace needs a name")
        if not self.use_cases:
            raise SpecError("trace %r: needs a use-case set" % self.name)
        if not self.segments:
            raise SpecError("trace %r: needs at least one segment" % self.name)
        names = [u.name for u in self.use_cases]
        if len(set(names)) != len(names):
            raise SpecError("trace %r: duplicate use-case names" % self.name)
        known = set(names)
        for seg in self.segments:
            if seg.use_case not in known:
                raise SpecError(
                    "trace %r: segment references unknown use case %r"
                    % (self.name, seg.use_case)
                )

    @property
    def total_ms(self) -> float:
        """Trace length in milliseconds."""
        return sum(s.dwell_ms for s in self.segments)

    @property
    def num_transitions(self) -> int:
        """Mode switches (boundaries where the use case changes)."""
        return sum(
            1
            for a, b in zip(self.segments, self.segments[1:])
            if a.use_case != b.use_case
        )

    def case(self, name: str) -> UseCase:
        """Look up a use case of the trace's scenario set by name."""
        for u in self.use_cases:
            if u.name == name:
                return u
        raise SpecError("trace %r: unknown use case %r" % (self.name, name))

    def validate_against(self, spec: SoCSpec) -> None:
        """Check every use case of the set against a spec."""
        for u in self.use_cases:
            u.validate_against(spec)

    def boundaries(self) -> List[Tuple[float, float, TraceSegment]]:
        """``(start_ms, end_ms, segment)`` triples in timeline order."""
        out: List[Tuple[float, float, TraceSegment]] = []
        t = 0.0
        for seg in self.segments:
            out.append((t, t + seg.dwell_ms, seg))
            t += seg.dwell_ms
        return out

    def residency_ms(self) -> Dict[str, float]:
        """Total dwell per use case over the whole trace."""
        out: Dict[str, float] = {u.name: 0.0 for u in self.use_cases}
        for seg in self.segments:
            out[seg.use_case] += seg.dwell_ms
        return out


def scripted_trace(
    use_cases: Sequence[UseCase],
    script: Iterable[Tuple[str, float]],
    name: str = "scripted",
) -> UseCaseTrace:
    """Build a trace from explicit ``(use_case_name, dwell_ms)`` steps."""
    segments = tuple(TraceSegment(uc, dwell) for uc, dwell in script)
    return UseCaseTrace(name=name, use_cases=tuple(use_cases), segments=segments)


def day_in_the_life_trace(
    use_cases: Sequence[UseCase],
    total_ms: float = 1000.0,
    rounds: int = 4,
    name: str = "day_in_the_life",
) -> UseCaseTrace:
    """Deterministic residency-faithful trace.

    Spreads each use case's ``time_fraction`` over ``rounds``
    interleaved passes (a device does not run one contiguous block of
    standby), so the per-mode residency matches the scenario set's
    fractions exactly while still exercising mode transitions.
    """
    if total_ms <= 0:
        raise SpecError("trace length must be positive, got %r" % total_ms)
    if rounds < 1:
        raise SpecError("rounds must be >= 1, got %r" % rounds)
    total_fraction = sum(u.time_fraction for u in use_cases)
    if total_fraction <= 0:
        raise SpecError("use-case set has no positive time fractions")
    script: List[Tuple[str, float]] = []
    for _ in range(rounds):
        for u in use_cases:
            dwell = total_ms * (u.time_fraction / total_fraction) / rounds
            script.append((u.name, dwell))
    return scripted_trace(use_cases, script, name=name)


def markov_trace(
    use_cases: Sequence[UseCase],
    n_segments: int = 64,
    seed: int = 0,
    mean_dwell_ms: float = 50.0,
    min_dwell_ms: float = 1.0,
    name: Optional[str] = None,
) -> UseCaseTrace:
    """Seeded-Markov mode sequence with exponential dwell jitter.

    The next mode is drawn with probability proportional to its
    ``time_fraction`` among all *other* modes (no self-loops — a
    self-transition is indistinguishable from a longer dwell), so the
    long-run residency approximates the scenario set's fractions.
    Dwell times are exponential with mean ``mean_dwell_ms``, clamped
    below at ``min_dwell_ms``.  Identical inputs produce identical
    traces (one private :class:`random.Random` per call).
    """
    if n_segments < 1:
        raise SpecError("n_segments must be >= 1, got %r" % n_segments)
    if mean_dwell_ms <= 0:
        raise SpecError("mean dwell must be positive, got %r" % mean_dwell_ms)
    if min_dwell_ms <= 0 or min_dwell_ms > mean_dwell_ms:
        raise SpecError(
            "min dwell must be in (0, mean], got %r" % min_dwell_ms
        )
    cases = list(use_cases)
    if not cases:
        raise SpecError("markov trace needs a non-empty use-case set")
    rng = random.Random(seed)
    weights = [max(u.time_fraction, 1e-9) for u in cases]

    def pick(exclude: Optional[int]) -> int:
        idxs = [i for i in range(len(cases)) if i != exclude]
        if not idxs:  # single-mode set: only a dwell sequence remains
            return 0
        ws = [weights[i] for i in idxs]
        return rng.choices(idxs, weights=ws, k=1)[0]

    script: List[Tuple[str, float]] = []
    current = pick(None)
    for _ in range(n_segments):
        dwell = max(min_dwell_ms, rng.expovariate(1.0 / mean_dwell_ms))
        script.append((cases[current].name, dwell))
        current = pick(current)
    return scripted_trace(
        cases, script, name=name or ("markov_seed%d" % seed)
    )
