"""Latency and energy simulation.

Modules: the analytic zero-load model (`zero_load`), a discrete-event
packet simulator (`flit_sim`) on the event kernel (`events`), use-case
scenarios (`scenarios`) and device-level energy profiles (`profile`).
"""
