"""Discrete-event simulation kernel.

A minimal, deterministic event queue used by the flit-level NoC
simulator.  Events are ``(time_ns, sequence, payload)`` triples; the
monotonically increasing sequence number makes simultaneous events fire
in schedule order, which keeps multi-clock (GALS) simulations exactly
reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class EventQueue:
    """Priority queue of timestamped events."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time_ns: float, payload: Any) -> None:
        """Schedule ``payload`` at ``time_ns``."""
        if time_ns < 0:
            raise ValueError("event time must be >= 0, got %r" % time_ns)
        heapq.heappush(self._heap, (time_ns, self._seq, payload))
        self._seq += 1

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest ``(time_ns, payload)``."""
        if not self._heap:
            raise IndexError("pop from empty event queue")
        time_ns, _, payload = heapq.heappop(self._heap)
        return time_ns, payload

    def peek_time(self) -> Optional[float]:
        """Time of the next event, or None when empty."""
        return self._heap[0][0] if self._heap else None


def run_until(
    queue: EventQueue,
    handler: Callable[[float, Any], None],
    end_time_ns: float,
) -> int:
    """Drain the queue through ``handler`` until ``end_time_ns``.

    Returns the number of events processed.  Events scheduled at or
    after the horizon stay in the queue.
    """
    processed = 0
    while len(queue):
        t = queue.peek_time()
        if t is None or t >= end_time_ns:
            break
        t, payload = queue.pop()
        handler(t, payload)
        processed += 1
    return processed
