"""Packet-level NoC simulator for latency validation.

The paper quotes *zero-load* latencies computed analytically; this
simulator exists to (a) validate that analytical model against an
independent dynamic execution and (b) go beyond the paper by measuring
contention at non-zero load (an extension hook for the benches).

Model (virtual cut-through approximation of wormhole):

* every flow injects fixed-size packets at its specified bandwidth,
  either CBR (deterministic spacing) or Poisson;
* NI attachment links are port connections (zero latency, no
  serialization), matching the zero-load accounting in
  :mod:`repro.sim.zero_load`;
* each switch delays the packet head by one cycle of its clock domain;
* each switch-to-switch link is a FIFO server: the packet occupies it
  for ``flits x cycle`` (serialization) and the head needs the link's
  latency cycles on top — 1 cycle intra-island, 4 cycles through a
  bi-synchronous converter (the link clock is the slower of the two
  domains, as in the hardware);
* buffers are not modelled (infinite-buffer assumption), so results
  are optimistic under saturation — fine for validation, documented
  for the contention study.

Clock domains follow the GALS structure: delays are computed in each
element's own clock and accumulated in nanoseconds, so islands at
different frequencies interact exactly as they would in silicon.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..arch.topology import FlowKey, Topology
from ..exceptions import ValidationError
from .events import EventQueue, run_until


@dataclass(frozen=True)
class FlitSimConfig:
    """Simulation parameters."""

    #: Payload flits per packet (a flit is one link-width word).
    packet_size_flits: int = 8
    #: Multiplier on every flow's bandwidth (1.0 = spec rates).
    load_factor: float = 1.0
    #: Simulated time horizon.
    sim_time_ns: float = 40_000.0
    #: Statistics ignore packets injected before this time.
    warmup_ns: float = 4_000.0
    #: ``"cbr"`` (deterministic) or ``"poisson"`` arrivals.
    arrival_process: str = "cbr"
    #: Inject exactly one packet per flow, widely spaced: a true
    #: zero-load run whose latencies must equal the analytic model.
    single_packet: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.packet_size_flits < 1:
            raise ValueError("packet size must be >= 1 flit")
        if self.load_factor <= 0:
            raise ValueError("load factor must be positive")
        if self.sim_time_ns <= self.warmup_ns:
            raise ValueError("sim time must exceed warmup")
        if self.arrival_process not in ("cbr", "poisson"):
            raise ValueError("arrival process must be 'cbr' or 'poisson'")


@dataclass(frozen=True)
class FlowStats:
    """Per-flow latency statistics (ns and cycles-equivalent)."""

    flow: FlowKey
    packets: int
    mean_latency_ns: float
    max_latency_ns: float
    #: Analytic zero-load latency in ns for comparison.
    zero_load_ns: float


@dataclass(frozen=True)
class SimReport:
    """Whole-run results."""

    per_flow: Mapping[FlowKey, FlowStats]
    packets_delivered: int
    mean_latency_ns: float

    def worst_relative_error(self) -> float:
        """Max over flows of |sim - analytic| / analytic.

        At ``load_factor`` low enough to avoid contention this should be
        ~0: the simulator and the zero-load model must agree.
        """
        worst = 0.0
        for st in self.per_flow.values():
            if st.zero_load_ns <= 0 or st.packets == 0:
                continue
            err = abs(st.mean_latency_ns - st.zero_load_ns) / st.zero_load_ns
            worst = max(worst, err)
        return worst


@dataclass
class _Packet:
    flow: FlowKey
    inject_ns: float
    hop: int = 0  # index into the route's link list


def _cycle_ns(freq_mhz: float) -> float:
    return 1000.0 / freq_mhz


def zero_load_latency_ns(topology: Topology, flow_key: FlowKey) -> float:
    """Analytic zero-load header latency in nanoseconds.

    Per-domain version of :func:`repro.sim.zero_load.route_latency_cycles`:
    each element's cycles are weighted by its own clock period.
    """
    lib = topology.library
    route = topology.routes[flow_key]
    total = 0.0
    for comp in route.components[1:-1]:
        sw = topology.switches[comp]
        total += lib.switch_traversal_cycles * _cycle_ns(sw.freq_mhz)
    for lid in route.links:
        link = topology.links[lid]
        if link.kind in ("ni2sw", "sw2ni"):
            continue
        cycles = (
            lib.fifo_crossing_cycles if link.converter else lib.link_traversal_cycles
        )
        total += cycles * _cycle_ns(link.freq_mhz)
    return total


def simulate(topology: Topology, config: Optional[FlitSimConfig] = None) -> SimReport:
    """Run the packet simulation over every routed flow."""
    cfg = config or FlitSimConfig()
    lib = topology.library
    spec = topology.spec
    rng = random.Random(cfg.seed)

    flit_bytes = lib.data_width_bits // 8
    packet_bytes = cfg.packet_size_flits * flit_bytes

    # Pre-compute per-flow interarrival and per-link service metadata.
    interarrival: Dict[FlowKey, float] = {}
    for flow in spec.flows:
        if flow.key not in topology.routes:
            raise ValidationError("flow %s->%s not routed; cannot simulate" % flow.key)
        bytes_per_ns = flow.bandwidth_mbps * cfg.load_factor / 1000.0
        interarrival[flow.key] = packet_bytes / bytes_per_ns

    link_free: Dict[int, float] = {lid: 0.0 for lid in topology.links}
    queue = EventQueue()
    # Per flow: (inject_ns, latency_ns) samples; inject time drives the
    # warmup filter.
    samples: Dict[FlowKey, List[Tuple[float, float]]] = {f.key: [] for f in spec.flows}

    def schedule_injection(key: FlowKey, t: float) -> None:
        queue.push(t, ("inject", key))

    def next_gap(key: FlowKey) -> float:
        gap = interarrival[key]
        if cfg.arrival_process == "poisson":
            return rng.expovariate(1.0 / gap)
        return gap

    if cfg.single_packet:
        # One packet per flow, serialized in time: no two packets are
        # ever in flight together, so measured latency IS zero-load.
        spacing = 5_000.0
        for i, flow in enumerate(sorted(spec.flows, key=lambda f: f.key)):
            schedule_injection(flow.key, cfg.warmup_ns + i * spacing)
    else:
        # Random initial phase within one interarrival: CBR flows with
        # rationally related periods would otherwise collide in
        # persistent phase lock and bias low-load latencies upward.
        for flow in sorted(spec.flows, key=lambda f: f.key):
            phase = rng.uniform(0.0, interarrival[flow.key])
            schedule_injection(flow.key, phase)

    def handler(t: float, payload: Tuple) -> None:
        kind = payload[0]
        if kind == "inject":
            key = payload[1]
            pkt = _Packet(flow=key, inject_ns=t)
            queue.push(t, ("hop", pkt, t))
            if not cfg.single_packet:
                schedule_injection(key, t + next_gap(key))
            return
        # ("hop", packet, head_time): the head is ready to take the
        # next link of its route at head_time.
        _, pkt, head_time = payload
        route = topology.routes[pkt.flow]
        if pkt.hop >= len(route.links):
            samples[pkt.flow].append((pkt.inject_ns, head_time - pkt.inject_ns))
            return
        lid = route.links[pkt.hop]
        link = topology.links[lid]
        pkt.hop += 1
        if link.kind in ("ni2sw", "sw2ni"):
            # Port connection: no delay; but entering a switch costs its
            # traversal cycle (for ni2sw); leaving to the NI costs none.
            if link.kind == "ni2sw":
                sw = topology.switches[link.dst]
                delay = lib.switch_traversal_cycles * _cycle_ns(sw.freq_mhz)
            else:
                delay = 0.0
            queue.push(head_time + delay, ("hop", pkt, head_time + delay))
            return
        # sw2sw link: wait for the server, serialize, traverse, then pay
        # the downstream switch's traversal cycle.
        cyc = _cycle_ns(link.freq_mhz)
        start = max(head_time, link_free[lid])
        occupancy = cfg.packet_size_flits * cyc
        link_free[lid] = start + occupancy
        lat_cycles = (
            lib.fifo_crossing_cycles if link.converter else lib.link_traversal_cycles
        )
        arrive = start + lat_cycles * cyc
        sw = topology.switches[link.dst]
        arrive += lib.switch_traversal_cycles * _cycle_ns(sw.freq_mhz)
        queue.push(arrive, ("hop", pkt, arrive))

    horizon = cfg.sim_time_ns
    if cfg.single_packet:
        # Ensure the horizon covers every spaced injection plus slack
        # for the slowest route.
        horizon = max(horizon, cfg.warmup_ns + (len(spec.flows) + 2) * 5_000.0)
    run_until(queue, handler, horizon)

    per_flow: Dict[FlowKey, FlowStats] = {}
    delivered = 0
    lat_sum = 0.0
    for key, flow_samples in samples.items():
        kept = [lat for inj, lat in flow_samples if inj >= cfg.warmup_ns]
        analytic = zero_load_latency_ns(topology, key)
        if kept:
            mean = sum(kept) / len(kept)
            mx = max(kept)
        else:
            mean = mx = 0.0
        per_flow[key] = FlowStats(
            flow=key,
            packets=len(kept),
            mean_latency_ns=mean,
            max_latency_ns=mx,
            zero_load_ns=analytic,
        )
        delivered += len(kept)
        lat_sum += sum(kept)
    return SimReport(
        per_flow=per_flow,
        packets_delivered=delivered,
        mean_latency_ns=lat_sum / delivered if delivered else 0.0,
    )
