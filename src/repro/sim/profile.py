"""Device-level energy profiles: a day in the life of the SoC.

Ties the whole power stack together: given a timeline of operating
modes (use cases with durations), compute the energy the SoC draws with
and without island shutdown, including the gating-event overheads from
:mod:`repro.power.gating`.  This is the number a phone architect
actually cares about — battery hours, not mW snapshots — and it is how
the paper's "25% or more reduction in overall system power" becomes a
battery-life claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..arch.topology import Topology
from ..exceptions import SpecError
from ..power.gating import GatingModel, island_gating_cost
from ..power.leakage import ShutdownReport, analyze_shutdown
from ..sim.scenarios import UseCase


@dataclass(frozen=True)
class TimelineSegment:
    """One contiguous stretch of a single operating mode."""

    use_case: UseCase
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise SpecError("segment duration must be positive")


@dataclass(frozen=True)
class EnergyProfile:
    """Energy accounting over a timeline, in joules."""

    total_duration_s: float
    energy_no_gating_j: float
    energy_gated_j: float
    gating_event_energy_j: float
    num_gating_events: int

    @property
    def energy_saved_j(self) -> float:
        return self.energy_no_gating_j - self.energy_gated_j

    @property
    def savings_fraction(self) -> float:
        """Fraction of total energy recovered by island shutdown."""
        if self.energy_no_gating_j <= 0:
            return 0.0
        return self.energy_saved_j / self.energy_no_gating_j

    @property
    def battery_life_extension(self) -> float:
        """Runtime multiplier at fixed battery capacity.

        A 25% energy saving stretches the same battery 1.33x.
        """
        if self.energy_gated_j <= 0:
            return 1.0
        return self.energy_no_gating_j / self.energy_gated_j


def profile_timeline(
    topology: Topology,
    timeline: Sequence[TimelineSegment],
    gating_model: Optional[GatingModel] = None,
    policy: str = "static",
    use_lengths: bool = True,
) -> EnergyProfile:
    """Energy of a mode timeline with and without island shutdown.

    Gating events are charged at every segment boundary for each island
    whose gated/powered state changes between the adjacent segments
    (plus initial gating at the first segment).
    """
    if not timeline:
        raise SpecError("timeline must contain at least one segment")
    model = gating_model or GatingModel()
    reports: Dict[str, ShutdownReport] = {}
    for seg in timeline:
        if seg.use_case.name not in reports:
            seg.use_case.validate_against(topology.spec)
            reports[seg.use_case.name] = analyze_shutdown(
                topology, seg.use_case, use_lengths=use_lengths, policy=policy
            )

    total_s = sum(seg.duration_s for seg in timeline)
    energy_no_gating = 0.0
    energy_gated = 0.0
    event_energy_j = 0.0
    events = 0
    prev_gated: Tuple[int, ...] = ()
    for seg in timeline:
        rep = reports[seg.use_case.name]
        # mW * s = mJ -> J
        energy_no_gating += rep.power_no_gating_mw * seg.duration_s * 1e-3
        energy_gated += rep.power_gated_mw * seg.duration_s * 1e-3
        changed = set(prev_gated) ^ set(rep.gated_islands)
        for isl in sorted(changed):
            cost = island_gating_cost(topology, isl, model)
            event_energy_j += cost.event_energy_nj * 1e-9
            events += 1
        prev_gated = rep.gated_islands
    energy_gated += event_energy_j
    return EnergyProfile(
        total_duration_s=total_s,
        energy_no_gating_j=energy_no_gating,
        energy_gated_j=min(energy_gated, energy_no_gating),
        gating_event_energy_j=event_energy_j,
        num_gating_events=events,
    )


def daily_mobile_timeline(use_cases: Sequence[UseCase], hours: float = 24.0) -> List[TimelineSegment]:
    """A repeating daily timeline from a use-case residency mix.

    Spreads each use case's ``time_fraction`` over the day in four
    interleaved rounds, which yields a realistic number of mode
    transitions (phones do not run one contiguous block of standby).
    """
    if hours <= 0:
        raise SpecError("timeline length must be positive")
    rounds = 4
    segments: List[TimelineSegment] = []
    total_fraction = sum(u.time_fraction for u in use_cases)
    for _ in range(rounds):
        for case in use_cases:
            share = case.time_fraction / total_fraction
            segments.append(
                TimelineSegment(case, duration_s=hours * 3600.0 * share / rounds)
            )
    return segments
