"""Use-case scenarios: which cores are active when.

The leakage argument of the paper (Sections 1 and 5) rests on real SoCs
spending much of their time in use cases that exercise only a subset of
the cores — audio playback does not need the video pipeline, standby
needs almost nothing.  A :class:`UseCase` names such a mode; the
shutdown analysis (:mod:`repro.power.leakage`) computes which islands
can be gated during it and what that saves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from ..core.spec import SoCSpec, TrafficFlow
from ..exceptions import SpecError


@dataclass(frozen=True)
class UseCase:
    """One operating mode of the SoC.

    Attributes
    ----------
    name:
        Mode identifier, e.g. ``"audio_playback"``.
    active_cores:
        Cores that must stay powered in this mode.
    time_fraction:
        Share of device-on time spent in this mode; a scenario set's
        fractions should sum to (at most) 1.0 for weighted averages.
    """

    name: str
    active_cores: FrozenSet[str]
    time_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("use case needs a name")
        if not self.active_cores:
            raise SpecError("use case %r: needs at least one active core" % self.name)
        if not 0.0 < self.time_fraction <= 1.0:
            raise SpecError(
                "use case %r: time fraction must be in (0, 1]" % self.name
            )

    def validate_against(self, spec: SoCSpec) -> None:
        """Check that every active core exists in the spec."""
        unknown = self.active_cores - set(spec.core_names)
        if unknown:
            raise SpecError(
                "use case %r: unknown cores %s" % (self.name, sorted(unknown))
            )

    def active_flows(self, spec: SoCSpec) -> List[TrafficFlow]:
        """Flows whose both endpoints are active in this mode."""
        return [
            f
            for f in spec.flows
            if f.src in self.active_cores and f.dst in self.active_cores
        ]

    def idle_islands(self, spec: SoCSpec) -> List[int]:
        """Islands with no active core — the shutdown candidates."""
        out = []
        for isl in spec.islands:
            if not any(c in self.active_cores for c in spec.cores_in_island(isl)):
                out.append(isl)
        return out


def make_use_case(
    name: str, active_cores: Iterable[str], time_fraction: float = 1.0
) -> UseCase:
    """Convenience constructor from any iterable of core names."""
    return UseCase(
        name=name,
        active_cores=frozenset(active_cores),
        time_fraction=time_fraction,
    )


def validate_scenario_set(use_cases: Sequence[UseCase]) -> None:
    """Check a *set* of use cases is a valid residency mix.

    Individual :class:`UseCase` validation cannot see the set, so the
    two set-level invariants live here: names must be unique (they key
    report dictionaries), and the ``time_fraction`` s must sum to at
    most 1.0 — they are shares of device-on time, and every weighted
    average in :mod:`repro.power.leakage` and every trace generator in
    :mod:`repro.runtime.trace` assumes that.  A small float tolerance
    absorbs sets authored as ``1/3 + 1/3 + 1/3``.
    """
    if not use_cases:
        raise SpecError("scenario set must contain at least one use case")
    names = [u.name for u in use_cases]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise SpecError("scenario set has duplicate use-case names %s" % dupes)
    total = sum(u.time_fraction for u in use_cases)
    if total > 1.0 + 1e-9:
        raise SpecError(
            "scenario set time fractions sum to %.4f > 1.0 (%s)"
            % (total, ", ".join("%s=%.3f" % (u.name, u.time_fraction) for u in use_cases))
        )
