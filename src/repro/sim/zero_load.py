"""Zero-load latency evaluation (the paper's latency metric).

Section 5: "The latency quoted is the number of cycles needed to
transfer a single chunk of the packet from the output of the source NI
until the input of the destination NI under zero-load conditions.  When
packets cross the islands, a 4 cycle delay is incurred on the
voltage-frequency converters."

Accounting used here (and calibrated to reproduce Figure 3's shape):

* NI-to-switch attachment links are port connections — 0 cycles;
* each switch traversal costs ``library.switch_traversal_cycles`` (1);
* each intra-island switch-to-switch link costs
  ``library.link_traversal_cycles`` (1), or more after floorplanning if
  the placed wire exceeds one clock of reach;
* each island-crossing link costs ``library.fifo_crossing_cycles`` (4),
  which covers the bi-synchronous FIFO plus the over-the-cell wire.

So the minimum is 1 cycle (two cores on one switch) and a direct
cross-island flow costs ``1 + 4 + 1 = 6`` cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..arch.topology import FlowKey, Link, Topology
from ..exceptions import ValidationError


def link_latency_cycles(topology: Topology, link: Link, use_lengths: bool = False) -> int:
    """Latency contribution of one link on a route.

    ``use_lengths`` switches to post-floorplan accounting where an
    intra-island link longer than one cycle of wire reach costs extra
    (pipelined) cycles.  Cross-island links always cost the fixed
    converter crossing penalty.
    """
    lib = topology.library
    if link.kind in ("ni2sw", "sw2ni"):
        return 0
    if link.converter:
        return lib.fifo_crossing_cycles
    if use_lengths and link.length_mm > 0.0:
        return lib.link_cycles(link.length_mm, link.freq_mhz)
    return lib.link_traversal_cycles


def route_latency_cycles(
    topology: Topology, flow_key: FlowKey, use_lengths: bool = False
) -> int:
    """Zero-load latency of one routed flow, in cycles."""
    if flow_key not in topology.routes:
        raise ValidationError("flow %s->%s has no route" % flow_key)
    route = topology.routes[flow_key]
    lib = topology.library
    cycles = route.num_switches * lib.switch_traversal_cycles
    for lid in route.links:
        cycles += link_latency_cycles(topology, topology.links[lid], use_lengths)
    return cycles


@dataclass(frozen=True)
class LatencyReport:
    """Zero-load latency statistics over all routed flows."""

    per_flow: Mapping[FlowKey, int]
    average_cycles: float
    bw_weighted_average_cycles: float
    max_cycles: int
    violations: Tuple[FlowKey, ...]

    @property
    def num_flows(self) -> int:
        return len(self.per_flow)

    @property
    def meets_constraints(self) -> bool:
        """True when every flow meets its latency budget."""
        return not self.violations


def evaluate_latency(topology: Topology, use_lengths: bool = False) -> LatencyReport:
    """Zero-load latency report for every routed flow of a topology.

    ``average_cycles`` is the plain mean over flows — the quantity
    Figure 3 plots; the bandwidth-weighted variant is also reported for
    analysis.
    """
    spec = topology.spec
    per_flow: Dict[FlowKey, int] = {}
    violations: List[FlowKey] = []
    total_bw = 0.0
    weighted = 0.0
    for flow in spec.flows:
        cycles = route_latency_cycles(topology, flow.key, use_lengths)
        per_flow[flow.key] = cycles
        if cycles > flow.latency_cycles + 1e-9:
            violations.append(flow.key)
        total_bw += flow.bandwidth_mbps
        weighted += cycles * flow.bandwidth_mbps
    if not per_flow:
        return LatencyReport(
            per_flow={},
            average_cycles=0.0,
            bw_weighted_average_cycles=0.0,
            max_cycles=0,
            violations=(),
        )
    avg = sum(per_flow.values()) / float(len(per_flow))
    return LatencyReport(
        per_flow=per_flow,
        average_cycles=avg,
        bw_weighted_average_cycles=weighted / total_bw if total_bw > 0 else 0.0,
        max_cycles=max(per_flow.values()),
        violations=tuple(violations),
    )
