"""SoC benchmark substrate.

Modules: the built-in benchmark suite (`benchmarks`), the parametric
generator incl. the hub-and-spoke stress design (`generator`), island
assignment strategies (`partitioning`) and scenario sets (`usecases`).
"""
